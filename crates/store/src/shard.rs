//! Per-shard key-space naming and recovery scans.
//!
//! The sharded navigator hash-buckets process instances into N shards and
//! gives each shard its own *journal prefix* inside [`Space::Instance`]:
//! every record a shard writes lives under `s{shard:04}/…`, so
//!
//! * shard batches touch disjoint key ranges — N steppers can group-commit
//!   concurrently through the shared engine without their logical
//!   histories interleaving (the WAL serialises the *physical* appends,
//!   but replay order between disjoint key sets is immaterial), and
//! * recovery is a per-shard prefix scan: shard `k` rebuilds from exactly
//!   `scan_shard(Space::Instance, k)` and never observes another shard's
//!   in-flight writes.
//!
//! The prefix is zero-padded to four digits so shard 10 never interleaves
//! with shard 1 in sorted scans, mirroring the instance-id padding of the
//! serial engine's `inst/{id:012}/` keys.

use crate::engine::{Space, Store};
use crate::error::StoreResult;
use crate::Disk;
use bytes::Bytes;

/// Prefix of every record shard `shard` owns.
pub fn shard_prefix(shard: usize) -> String {
    format!("s{shard:04}/")
}

/// A key inside shard `shard`'s journal.
pub fn shard_key(shard: usize, rest: &str) -> String {
    format!("s{shard:04}/{rest}")
}

/// Split a shard-journal key into `(shard, rest)`; `None` when the key is
/// not shard-prefixed (e.g. a serial-engine `inst/…` record).
pub fn parse_shard_key(key: &str) -> Option<(usize, &str)> {
    let rest = key.strip_prefix('s')?;
    let (digits, tail) = rest.split_at_checked(4)?;
    let tail = tail.strip_prefix('/')?;
    let shard = digits.parse().ok()?;
    Some((shard, tail))
}

impl<D: Disk> Store<D> {
    /// Recovery scan of one shard's journal: every `(key, value)` under
    /// the shard prefix, with the prefix stripped, in key order.
    pub fn scan_shard(&self, space: Space, shard: usize) -> StoreResult<Vec<(String, Bytes)>> {
        let prefix = shard_prefix(shard);
        Ok(self
            .scan_prefix(space, &prefix)?
            .into_iter()
            .map(|(k, v)| (k[prefix.len()..].to_string(), v))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    #[test]
    fn shard_keys_roundtrip_and_sort_disjoint() {
        assert_eq!(
            shard_key(3, "inst/000000000007/header"),
            "s0003/inst/000000000007/header"
        );
        assert_eq!(
            parse_shard_key("s0003/inst/000000000007/header"),
            Some((3, "inst/000000000007/header"))
        );
        assert_eq!(parse_shard_key("inst/000000000007/header"), None);
        assert_eq!(parse_shard_key("s12/x"), None);
        // Padding keeps shard 10 out of shard 1's range.
        assert!(!shard_key(10, "a").starts_with(&shard_prefix(1)));
    }

    #[test]
    fn scan_shard_sees_only_its_prefix() {
        let store = Store::open(MemDisk::new()).unwrap();
        store
            .put(Space::Instance, shard_key(0, "inst/a"), b"0".to_vec())
            .unwrap();
        store
            .put(Space::Instance, shard_key(1, "inst/a"), b"1".to_vec())
            .unwrap();
        store
            .put(Space::Instance, "inst/a", b"serial".to_vec())
            .unwrap();
        let s0 = store.scan_shard(Space::Instance, 0).unwrap();
        assert_eq!(s0.len(), 1);
        assert_eq!(s0[0].0, "inst/a");
        assert_eq!(s0[0].1.as_ref(), b"0");
        let s1 = store.scan_shard(Space::Instance, 1).unwrap();
        assert_eq!(s1[0].1.as_ref(), b"1");
    }
}
