//! Disk abstraction for the store.
//!
//! Two backends are provided:
//!
//! * [`FileDisk`] — a directory on the real filesystem, with `fsync` on the
//!   paths that matter for durability.
//! * [`MemDisk`] — an in-memory filesystem with **fault injection**: a
//!   [`FaultPlan`] makes the disk "crash" either after a configured number of
//!   appended bytes or at an exact disk-mutation index, with a configurable
//!   [`CrashEffect`] (drop the interrupted write, persist an arbitrary byte
//!   prefix of it, or complete it and crash immediately after).  Persisted
//!   bytes can additionally be bit-flipped in place to model media
//!   corruption.  This is how the test suite, the recovery experiments and
//!   the crash-point torture harness create genuine crash states instead of
//!   pretending.

use crate::error::{StoreError, StoreResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Abstract flat-namespace disk: named files supporting atomic whole-file
/// writes (snapshots, manifests) and append-only writes (the WAL).
pub trait Disk: Send + Sync {
    /// Read the full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>>;
    /// Atomically replace the contents of `name` (write-temp + rename).
    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()>;
    /// Append `data` to `name`, creating it if missing, and make it durable.
    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()>;
    /// List file names, sorted.
    fn list(&self) -> StoreResult<Vec<String>>;
    /// Delete `name` if it exists.
    fn delete(&self, name: &str) -> StoreResult<()>;
    /// Read `len` bytes of `name` starting at `offset` (clamped to the
    /// file's end), or `None` if the file does not exist.  Backends
    /// should override the whole-file default with a real ranged read —
    /// this is what keeps sorted-run block lookups O(block), not
    /// O(file).
    fn read_range(&self, name: &str, offset: u64, len: usize) -> StoreResult<Option<Vec<u8>>> {
        Ok(self.read(name)?.map(|data| {
            let start = (offset as usize).min(data.len());
            let end = start.saturating_add(len).min(data.len());
            data[start..end].to_vec()
        }))
    }
    /// Size of `name` in bytes, or `None` if it does not exist.
    fn file_size(&self, name: &str) -> StoreResult<Option<u64>> {
        Ok(self.read(name)?.map(|d| d.len() as u64))
    }
}

// ---------------------------------------------------------------------------
// FileDisk
// ---------------------------------------------------------------------------

/// Filesystem-backed disk rooted at a directory.
pub struct FileDisk {
    root: PathBuf,
}

impl FileDisk {
    /// Open (creating if necessary) a disk rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StoreResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FileDisk { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Disk for FileDisk {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))?;
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        f.sync_data()?;
        Ok(())
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn read_range(&self, name: &str, offset: u64, len: usize) -> StoreResult<Option<Vec<u8>>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = match std::fs::File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let size = f.metadata()?.len();
        let start = offset.min(size);
        let take = (len as u64).min(size - start);
        f.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; take as usize];
        f.read_exact(&mut buf)?;
        Ok(Some(buf))
    }

    fn file_size(&self, name: &str) -> StoreResult<Option<u64>> {
        match std::fs::metadata(self.path(name)) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------------
// MemDisk with fault injection
// ---------------------------------------------------------------------------

/// When an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire once this many further bytes have been appended.  Only
    /// `append` consumes the budget; `write_atomic`/`delete` never trigger
    /// (the legacy "crash after N appended bytes" model).
    AfterBytes(u64),
    /// Fire on the N-th disk **mutation** — `append`, `write_atomic` or
    /// `delete` — counted from fault-plan installation, 0-based.  This is
    /// what lets a harness enumerate *every* crash point of a workload.
    AtMutation(u64),
}

/// What the crash leaves behind of the mutation it interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashEffect {
    /// The interrupted mutation is lost entirely.
    Drop,
    /// A torn write: an `append` persists only a byte prefix of the
    /// attempted data; a `write_atomic` leaves a torn `<name>.tmp` beside
    /// the intact old contents (mirroring [`FileDisk`]'s
    /// write-temp-then-rename); a `delete` is simply lost.  `keep` bounds
    /// the persisted prefix (clamped to the attempted length, and — under
    /// [`FaultTrigger::AfterBytes`] — to the remaining byte budget).
    Torn {
        /// Upper bound on the persisted prefix length.
        keep: u64,
    },
    /// The mutation completes in full, *then* the crash fires: models
    /// power loss immediately after a durable write was acknowledged.
    AfterApply,
}

/// Plan describing when the in-memory disk should simulate a crash and
/// what state the interrupted mutation leaves behind.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What survives of the interrupted mutation.
    pub effect: CrashEffect,
}

impl FaultPlan {
    /// The legacy byte-budget plan: crash once `crash_after_bytes` further
    /// bytes have been appended; with `tear_final_write` the interrupted
    /// append keeps the remaining budget as a torn prefix.
    pub fn after_bytes(crash_after_bytes: u64, tear_final_write: bool) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AfterBytes(crash_after_bytes),
            effect: if tear_final_write {
                CrashEffect::Torn { keep: u64::MAX }
            } else {
                CrashEffect::Drop
            },
        }
    }

    /// Crash on the `index`-th disk mutation with the given effect.
    pub fn at_mutation(index: u64, effect: CrashEffect) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AtMutation(index),
            effect,
        }
    }
}

#[derive(Default)]
struct MemDiskState {
    files: BTreeMap<String, Vec<u8>>,
    appended: u64,
    mutations: u64,
    read_ops: u64,
    read_bytes: u64,
    plan: Option<FaultPlan>,
}

/// In-memory disk.  Cloning shares the underlying storage, which lets a test
/// "re-open" the disk after a crash exactly as recovery would re-open a real
/// device.
#[derive(Clone, Default)]
pub struct MemDisk {
    state: Arc<Mutex<MemDiskState>>,
    crashed: Arc<AtomicBool>,
}

impl MemDisk {
    /// A fresh, empty, fault-free disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the fault plan. Byte and mutation accounting
    /// restart at zero.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let mut st = self.state.lock();
        st.appended = 0;
        st.mutations = 0;
        st.plan = plan;
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Has the simulated crash fired?
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Clear the crashed flag, as if the machine rebooted. The (possibly
    /// torn) file contents survive, mirroring non-volatile storage.
    pub fn reboot(&self) {
        self.crashed.store(false, Ordering::SeqCst);
        self.state.lock().plan = None;
    }

    /// Total bytes appended since the last fault-plan installation.
    pub fn bytes_appended(&self) -> u64 {
        self.state.lock().appended
    }

    /// Disk mutations (`append` + `write_atomic` + `delete`) attempted
    /// since the last fault-plan installation, including the mutation a
    /// crash interrupted.  A crash-free probe run of a workload therefore
    /// yields the exact number of enumerable crash points.
    pub fn mutation_count(&self) -> u64 {
        self.state.lock().mutations
    }

    /// XOR `mask` into byte `offset` of the persisted image of `name`,
    /// modelling media corruption of at-rest bytes.  Returns `false` when
    /// the file does not exist or `offset` is out of range.  Works even
    /// while the disk is "crashed" — corruption does not need a live disk.
    pub fn corrupt_byte(&self, name: &str, offset: usize, mask: u8) -> bool {
        let mut st = self.state.lock();
        match st.files.get_mut(name) {
            Some(data) if offset < data.len() && mask != 0 => {
                data[offset] ^= mask;
                true
            }
            _ => false,
        }
    }

    /// Length of the persisted image of `name`, bypassing crash state
    /// (harness introspection; `None` when the file does not exist).
    pub fn file_len(&self, name: &str) -> Option<usize> {
        self.state.lock().files.get(name).map(Vec::len)
    }

    /// Bytes handed out by `read`/`read_range` since creation.  Together
    /// with [`MemDisk::read_op_count`] this lets a test prove an open
    /// path is O(tail): the reopen's read-byte delta must stay far below
    /// the total on-disk footprint.
    pub fn bytes_read(&self) -> u64 {
        self.state.lock().read_bytes
    }

    /// Read operations (`read` + `read_range` + `file_size`) since
    /// creation.
    pub fn read_op_count(&self) -> u64 {
        self.state.lock().read_ops
    }

    /// Total bytes currently persisted across all files.
    pub fn total_file_bytes(&self) -> u64 {
        self.state
            .lock()
            .files
            .values()
            .map(|f| f.len() as u64)
            .sum()
    }

    fn check_alive(&self) -> StoreResult<()> {
        if self.has_crashed() {
            Err(StoreError::SimulatedCrash)
        } else {
            Ok(())
        }
    }

    fn crash(&self) -> StoreError {
        self.crashed.store(true, Ordering::SeqCst);
        StoreError::SimulatedCrash
    }
}

/// Whether the installed plan fires for this mutation, and with which
/// effect.  Assumes `st.mutations` has already been incremented for the
/// current mutation (so the 0-based index of the current mutation is
/// `st.mutations - 1`).
fn fault_fires(st: &MemDiskState, append_len: Option<u64>) -> Option<CrashEffect> {
    let plan = st.plan.as_ref()?;
    match plan.trigger {
        FaultTrigger::AfterBytes(budget) => {
            let len = append_len?; // only appends consume the byte budget
            (len > budget.saturating_sub(st.appended)).then_some(plan.effect)
        }
        FaultTrigger::AtMutation(idx) => (st.mutations - 1 == idx).then_some(plan.effect),
    }
}

impl Disk for MemDisk {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        self.check_alive()?;
        let mut st = self.state.lock();
        let data = st.files.get(name).cloned();
        st.read_ops += 1;
        st.read_bytes += data.as_ref().map_or(0, |d| d.len() as u64);
        Ok(data)
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        self.check_alive()?;
        let mut st = self.state.lock();
        st.mutations += 1;
        if let Some(effect) = fault_fires(&st, None) {
            match effect {
                // Atomic replace never tears the target: the old version
                // survives a crash before the rename commits.
                CrashEffect::Drop => {}
                // ... but the temp file the backend was writing can be
                // left behind, torn, exactly as FileDisk would.
                CrashEffect::Torn { keep } => {
                    let kept = (keep as usize).min(data.len());
                    st.files
                        .insert(format!("{name}.tmp"), data[..kept].to_vec());
                }
                CrashEffect::AfterApply => {
                    st.files.insert(name.to_string(), data.to_vec());
                }
            }
            drop(st);
            return Err(self.crash());
        }
        st.files.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        self.check_alive()?;
        let mut st = self.state.lock();
        st.mutations += 1;
        if let Some(effect) = fault_fires(&st, Some(data.len() as u64)) {
            let kept = match effect {
                CrashEffect::Drop => 0,
                CrashEffect::Torn { keep } => {
                    let mut kept = (keep as usize).min(data.len());
                    if let Some(FaultTrigger::AfterBytes(budget)) =
                        st.plan.as_ref().map(|p| p.trigger)
                    {
                        kept = kept.min(budget.saturating_sub(st.appended) as usize);
                    }
                    kept
                }
                CrashEffect::AfterApply => data.len(),
            };
            let file = st.files.entry(name.to_string()).or_default();
            file.extend_from_slice(&data[..kept]);
            st.appended += kept as u64;
            drop(st);
            return Err(self.crash());
        }
        st.appended += data.len() as u64;
        st.files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        self.check_alive()?;
        Ok(self.state.lock().files.keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        self.check_alive()?;
        let mut st = self.state.lock();
        st.mutations += 1;
        if let Some(effect) = fault_fires(&st, None) {
            if effect == CrashEffect::AfterApply {
                st.files.remove(name);
            }
            drop(st);
            return Err(self.crash());
        }
        st.files.remove(name);
        Ok(())
    }

    fn read_range(&self, name: &str, offset: u64, len: usize) -> StoreResult<Option<Vec<u8>>> {
        self.check_alive()?;
        let mut st = self.state.lock();
        st.read_ops += 1;
        let out = {
            let Some(data) = st.files.get(name) else {
                return Ok(None);
            };
            let start = (offset as usize).min(data.len());
            let end = start.saturating_add(len).min(data.len());
            data[start..end].to_vec()
        };
        st.read_bytes += out.len() as u64;
        Ok(Some(out))
    }

    fn file_size(&self, name: &str) -> StoreResult<Option<u64>> {
        self.check_alive()?;
        let mut st = self.state.lock();
        st.read_ops += 1;
        Ok(st.files.get(name).map(|d| d.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bioopera-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = FileDisk::open(&dir).unwrap();
        assert_eq!(disk.read("a").unwrap(), None);
        disk.write_atomic("a", b"hello").unwrap();
        assert_eq!(disk.read("a").unwrap().unwrap(), b"hello");
        disk.append("a", b" world").unwrap();
        assert_eq!(disk.read("a").unwrap().unwrap(), b"hello world");
        assert_eq!(disk.list().unwrap(), vec!["a".to_string()]);
        disk.delete("a").unwrap();
        assert_eq!(disk.read("a").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_disk_shares_state_across_clones() {
        let disk = MemDisk::new();
        disk.append("wal", b"abc").unwrap();
        let reopened = disk.clone();
        assert_eq!(reopened.read("wal").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn fault_plan_tears_final_write() {
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(5, true)));
        disk.append("wal", b"abc").unwrap();
        let err = disk.append("wal", b"defgh").unwrap_err();
        assert!(matches!(err, StoreError::SimulatedCrash));
        assert!(disk.has_crashed());
        // Everything fails until reboot.
        assert!(disk.read("wal").is_err());
        disk.reboot();
        // 5-byte budget: "abc" (3) + 2 bytes of the torn write survive.
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"abcde");
    }

    #[test]
    fn fault_plan_drop_final_write() {
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(4, false)));
        disk.append("wal", b"abcd").unwrap();
        assert!(disk.append("wal", b"e").is_err());
        disk.reboot();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"abcd");
    }

    #[test]
    fn mutation_trigger_counts_every_mutation_kind() {
        let disk = MemDisk::new();
        disk.append("wal", b"a").unwrap();
        disk.write_atomic("snap", b"s").unwrap();
        disk.delete("snap").unwrap();
        assert_eq!(disk.mutation_count(), 3);
        // Reads do not count.
        disk.read("wal").unwrap();
        disk.list().unwrap();
        assert_eq!(disk.mutation_count(), 3);

        // Crash exactly on mutation index 1 (the write_atomic).
        disk.set_fault_plan(Some(FaultPlan::at_mutation(1, CrashEffect::Drop)));
        assert_eq!(disk.mutation_count(), 0);
        disk.append("wal", b"b").unwrap();
        assert!(disk.write_atomic("snap", b"new").is_err());
        assert!(disk.has_crashed());
        disk.reboot();
        // The atomic write was dropped whole: no "snap", no tmp.
        assert_eq!(disk.read("snap").unwrap(), None);
        assert_eq!(disk.read("snap.tmp").unwrap(), None);
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"ab");
    }

    #[test]
    fn torn_write_atomic_leaves_partial_tmp_file() {
        let disk = MemDisk::new();
        disk.write_atomic("snap", b"old").unwrap();
        disk.set_fault_plan(Some(FaultPlan::at_mutation(
            0,
            CrashEffect::Torn { keep: 4 },
        )));
        assert!(disk.write_atomic("snap", b"new-contents").is_err());
        disk.reboot();
        // Old contents intact, torn temp file left behind.
        assert_eq!(disk.read("snap").unwrap().unwrap(), b"old");
        assert_eq!(disk.read("snap.tmp").unwrap().unwrap(), b"new-");
    }

    #[test]
    fn after_apply_persists_then_crashes() {
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan::at_mutation(0, CrashEffect::AfterApply)));
        assert!(disk.append("wal", b"abc").is_err());
        disk.reboot();
        // The write the caller saw fail is nonetheless fully durable.
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn after_apply_delete_takes_effect() {
        let disk = MemDisk::new();
        disk.write_atomic("f", b"x").unwrap();
        disk.set_fault_plan(Some(FaultPlan::at_mutation(0, CrashEffect::AfterApply)));
        assert!(disk.delete("f").is_err());
        disk.reboot();
        assert_eq!(disk.read("f").unwrap(), None);
    }

    #[test]
    fn torn_append_keeps_bounded_prefix() {
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan::at_mutation(
            0,
            CrashEffect::Torn { keep: 2 },
        )));
        assert!(disk.append("wal", b"abcdef").is_err());
        disk.reboot();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"ab");
    }

    #[test]
    fn corrupt_byte_flips_persisted_bits() {
        let disk = MemDisk::new();
        disk.append("wal", b"abc").unwrap();
        assert!(disk.corrupt_byte("wal", 1, 0x01));
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"acc"); // 'b' ^ 0x01 == 'c'
        assert!(!disk.corrupt_byte("wal", 99, 0x01));
        assert!(!disk.corrupt_byte("missing", 0, 0x01));
        assert_eq!(disk.file_len("wal"), Some(3));
        assert_eq!(disk.file_len("missing"), None);
    }
}
