//! Disk abstraction for the store.
//!
//! Two backends are provided:
//!
//! * [`FileDisk`] — a directory on the real filesystem, with `fsync` on the
//!   paths that matter for durability.
//! * [`MemDisk`] — an in-memory filesystem with **fault injection**: a
//!   [`FaultPlan`] makes the disk "crash" after a configured number of bytes
//!   have been appended, optionally leaving a *torn* (partial) final write
//!   behind.  This is how the test suite and the recovery experiments create
//!   genuine crash states instead of pretending.

use crate::error::{StoreError, StoreResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Abstract flat-namespace disk: named files supporting atomic whole-file
/// writes (snapshots, manifests) and append-only writes (the WAL).
pub trait Disk: Send + Sync {
    /// Read the full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>>;
    /// Atomically replace the contents of `name` (write-temp + rename).
    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()>;
    /// Append `data` to `name`, creating it if missing, and make it durable.
    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()>;
    /// List file names, sorted.
    fn list(&self) -> StoreResult<Vec<String>>;
    /// Delete `name` if it exists.
    fn delete(&self, name: &str) -> StoreResult<()>;
}

// ---------------------------------------------------------------------------
// FileDisk
// ---------------------------------------------------------------------------

/// Filesystem-backed disk rooted at a directory.
pub struct FileDisk {
    root: PathBuf,
}

impl FileDisk {
    /// Open (creating if necessary) a disk rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StoreResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FileDisk { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Disk for FileDisk {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))?;
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        f.sync_data()?;
        Ok(())
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------------
// MemDisk with fault injection
// ---------------------------------------------------------------------------

/// Plan describing when the in-memory disk should simulate a crash.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Crash once this many further bytes have been appended.
    pub crash_after_bytes: u64,
    /// If true, the append during which the budget runs out leaves a torn
    /// (partial) suffix of the attempted write behind; otherwise the final
    /// append is dropped entirely.
    pub tear_final_write: bool,
}

#[derive(Default)]
struct MemDiskState {
    files: BTreeMap<String, Vec<u8>>,
    appended: u64,
    plan: Option<FaultPlan>,
}

/// In-memory disk.  Cloning shares the underlying storage, which lets a test
/// "re-open" the disk after a crash exactly as recovery would re-open a real
/// device.
#[derive(Clone, Default)]
pub struct MemDisk {
    state: Arc<Mutex<MemDiskState>>,
    crashed: Arc<AtomicBool>,
}

impl MemDisk {
    /// A fresh, empty, fault-free disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the fault plan. Byte accounting restarts at zero.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let mut st = self.state.lock();
        st.appended = 0;
        st.plan = plan;
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Has the simulated crash fired?
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Clear the crashed flag, as if the machine rebooted. The (possibly
    /// torn) file contents survive, mirroring non-volatile storage.
    pub fn reboot(&self) {
        self.crashed.store(false, Ordering::SeqCst);
        self.state.lock().plan = None;
    }

    /// Total bytes appended since the last fault-plan installation.
    pub fn bytes_appended(&self) -> u64 {
        self.state.lock().appended
    }

    fn check_alive(&self) -> StoreResult<()> {
        if self.has_crashed() {
            Err(StoreError::SimulatedCrash)
        } else {
            Ok(())
        }
    }
}

impl Disk for MemDisk {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        self.check_alive()?;
        Ok(self.state.lock().files.get(name).cloned())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        self.check_alive()?;
        // Atomic replace never tears: either the old or the new version
        // survives. We model the successful case; crash-before counts as the
        // whole write being lost, which the caller sees as the old version.
        self.state
            .lock()
            .files
            .insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> StoreResult<()> {
        self.check_alive()?;
        let mut st = self.state.lock();
        if let Some(plan) = st.plan.clone() {
            let budget = plan.crash_after_bytes.saturating_sub(st.appended);
            if (data.len() as u64) > budget {
                // The crash fires during this append.
                let kept = if plan.tear_final_write {
                    budget as usize
                } else {
                    0
                };
                let file = st.files.entry(name.to_string()).or_default();
                file.extend_from_slice(&data[..kept]);
                st.appended += kept as u64;
                drop(st);
                self.crashed.store(true, Ordering::SeqCst);
                return Err(StoreError::SimulatedCrash);
            }
        }
        st.appended += data.len() as u64;
        st.files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        self.check_alive()?;
        Ok(self.state.lock().files.keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        self.check_alive()?;
        self.state.lock().files.remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bioopera-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = FileDisk::open(&dir).unwrap();
        assert_eq!(disk.read("a").unwrap(), None);
        disk.write_atomic("a", b"hello").unwrap();
        assert_eq!(disk.read("a").unwrap().unwrap(), b"hello");
        disk.append("a", b" world").unwrap();
        assert_eq!(disk.read("a").unwrap().unwrap(), b"hello world");
        assert_eq!(disk.list().unwrap(), vec!["a".to_string()]);
        disk.delete("a").unwrap();
        assert_eq!(disk.read("a").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_disk_shares_state_across_clones() {
        let disk = MemDisk::new();
        disk.append("wal", b"abc").unwrap();
        let reopened = disk.clone();
        assert_eq!(reopened.read("wal").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn fault_plan_tears_final_write() {
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan {
            crash_after_bytes: 5,
            tear_final_write: true,
        }));
        disk.append("wal", b"abc").unwrap();
        let err = disk.append("wal", b"defgh").unwrap_err();
        assert!(matches!(err, StoreError::SimulatedCrash));
        assert!(disk.has_crashed());
        // Everything fails until reboot.
        assert!(disk.read("wal").is_err());
        disk.reboot();
        // 5-byte budget: "abc" (3) + 2 bytes of the torn write survive.
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"abcde");
    }

    #[test]
    fn fault_plan_drop_final_write() {
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan {
            crash_after_bytes: 4,
            tear_final_write: false,
        }));
        disk.append("wal", b"abcd").unwrap();
        assert!(disk.append("wal", b"e").is_err());
        disk.reboot();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"abcd");
    }
}
