//! **Immutable sorted-run files** — the on-disk tier beneath the
//! memtables.
//!
//! When a memtable exceeds its budget the engine spills it to a run
//! file; reads consult the memtable first and then the runs newest to
//! oldest.  A run is written once with `write_atomic` and never
//! modified, so every byte is covered by a CRC at write time and any
//! later mismatch is disk corruption, not a torn write.
//!
//! ## File layout
//!
//! ```text
//! +--------------------------------------------------------------+
//! | data blocks: ordinary WAL frames (magic, len, crc, payload)  |
//! |   each block holds one space's ops, sorted by key;           |
//! |   Delete ops are tombstones                                  |
//! +--------------------------------------------------------------+
//! | meta section: [len u32 LE][crc32 u32 LE][meta payload]       |
//! +--------------------------------------------------------------+
//! | footer: [meta_off u64 LE][meta_len u64 LE][b"BOR1"]          |
//! +--------------------------------------------------------------+
//! ```
//!
//! Data blocks reuse the WAL frame format verbatim, so block decoding
//! is [`wal::replay_shared`] — the same zero-copy path recovery uses:
//! values are `Bytes` slices of the block read, never copied.
//!
//! The meta payload carries the entry/tombstone counts, the per-run
//! [`Bloom`] filter, and a sparse block index (space, offset, length,
//! first/last key per block).  Opening a run reads only the footer and
//! meta section — O(index), not O(data) — which is what makes store
//! reopen O(tail) instead of O(history).

use crate::bloom::Bloom;
use crate::crc::crc32;
use crate::disk::Disk;
use crate::error::{StoreError, StoreResult};
use crate::wal::{self, WalOp, WalOpRef};
use bytes::Bytes;

/// Footer magic: "BioOpera Run v1".
pub const RUN_MAGIC: [u8; 4] = *b"BOR1";
/// Footer size: meta_off (8) + meta_len (8) + magic (4).
pub const FOOTER_LEN: usize = 20;
/// Meta section header: payload len (4) + crc32 (4).
const META_HEADER_LEN: usize = 8;
/// Target uncompressed payload size of one data block.
pub const BLOCK_TARGET_BYTES: usize = 4 * 1024;
/// Meta payload format version.
const META_VERSION: u8 = 1;

/// `run-{id:06}` — the on-disk name of run `id`.
pub fn run_name(id: u64) -> String {
    format!("run-{id:06}")
}

/// Parse a `run-{id:06}` name back to its id.
pub fn parse_run_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("run-")?;
    if digits.len() != 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One entry handed to [`build_run`]: `value: None` is a tombstone.
#[derive(Debug, Clone, Copy)]
pub struct RunEntry<'a> {
    pub space: u8,
    pub key: &'a str,
    pub value: Option<&'a [u8]>,
}

/// Sparse index entry for one data block.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockMeta {
    space: u8,
    offset: u64,
    len: u32,
    /// Ops in the block (entries + tombstones).
    count: u32,
    first_key: String,
    last_key: String,
}

/// An opened run: index + bloom resident, data blocks on disk.
#[derive(Debug, Clone)]
pub struct Run {
    name: String,
    /// Numeric id parsed from the name — the block cache keys cached
    /// blocks by `(run id, block offset)` so a purge after GC is exact.
    id: u64,
    blocks: Vec<BlockMeta>,
    bloom: Bloom,
    /// Live (non-tombstone) ops across all blocks.
    pub entries: u64,
    /// Tombstone ops across all blocks.
    pub tombstones: u64,
    /// Total data-region bytes (== meta section offset).
    pub data_bytes: u64,
}

fn corrupt(name: &str, what: &str) -> StoreError {
    StoreError::Corruption(format!("run {name}: {what}"))
}

/// Serialize `entries` — which must be sorted by `(space, key)` with no
/// duplicate pairs — into a complete run-file image.
pub fn build_run(entries: &[RunEntry<'_>]) -> Vec<u8> {
    let mut bloom = Bloom::with_capacity(entries.len());
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let mut blocks: Vec<BlockMeta> = Vec::new();
    let mut tombstones = 0u64;

    let mut pending: Vec<WalOpRef<'_>> = Vec::new();
    let mut pending_bytes = 0usize;
    let mut first_key = "";
    let mut last_key = "";
    let mut cur_space = 0u8;

    let mut flush =
        |out: &mut Vec<u8>, pending: &mut Vec<WalOpRef<'_>>, space: u8, first: &str, last: &str| {
            if pending.is_empty() {
                return;
            }
            let offset = out.len() as u64;
            wal::encode_frame_into(out, &mut scratch, pending);
            blocks.push(BlockMeta {
                space,
                offset,
                len: (out.len() as u64 - offset) as u32,
                count: pending.len() as u32,
                first_key: first.to_string(),
                last_key: last.to_string(),
            });
            pending.clear();
        };

    for e in entries {
        bloom.insert(e.space, e.key);
        let cost = e.key.len() + e.value.map_or(0, <[u8]>::len) + 16;
        if !pending.is_empty()
            && (e.space != cur_space || pending_bytes + cost > BLOCK_TARGET_BYTES)
        {
            flush(&mut out, &mut pending, cur_space, first_key, last_key);
            pending_bytes = 0;
        }
        if pending.is_empty() {
            cur_space = e.space;
            first_key = e.key;
        }
        last_key = e.key;
        pending_bytes += cost;
        match e.value {
            Some(value) => pending.push(WalOpRef::Put {
                space: e.space,
                key: e.key,
                value,
            }),
            None => {
                tombstones += 1;
                pending.push(WalOpRef::Delete {
                    space: e.space,
                    key: e.key,
                });
            }
        }
    }
    flush(&mut out, &mut pending, cur_space, first_key, last_key);

    // ---- meta section ----------------------------------------------
    let meta_off = out.len() as u64;
    let mut meta = Vec::new();
    meta.push(META_VERSION);
    meta.extend_from_slice(&(entries.len() as u64 - tombstones).to_le_bytes());
    meta.extend_from_slice(&tombstones.to_le_bytes());
    bloom.encode_into(&mut meta);
    meta.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in &blocks {
        meta.push(b.space);
        meta.extend_from_slice(&b.offset.to_le_bytes());
        meta.extend_from_slice(&b.len.to_le_bytes());
        meta.extend_from_slice(&b.count.to_le_bytes());
        meta.extend_from_slice(&(b.first_key.len() as u32).to_le_bytes());
        meta.extend_from_slice(b.first_key.as_bytes());
        meta.extend_from_slice(&(b.last_key.len() as u32).to_le_bytes());
        meta.extend_from_slice(b.last_key.as_bytes());
    }
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&meta).to_le_bytes());
    out.extend_from_slice(&meta);

    // ---- footer -----------------------------------------------------
    let meta_len = (META_HEADER_LEN + meta.len()) as u64;
    out.extend_from_slice(&meta_off.to_le_bytes());
    out.extend_from_slice(&meta_len.to_le_bytes());
    out.extend_from_slice(&RUN_MAGIC);
    out
}

/// Little-endian readers over a byte cursor; all return `None` on
/// truncation so the caller can surface one typed corruption error.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

impl Run {
    /// Open a run by reading its footer and meta section only.
    pub fn open<D: Disk>(disk: &D, name: &str) -> StoreResult<Run> {
        let size = disk
            .file_size(name)?
            .ok_or_else(|| corrupt(name, "listed in MANIFEST but missing on disk"))?;
        if (size as usize) < FOOTER_LEN {
            return Err(corrupt(name, "shorter than the footer"));
        }
        let footer = disk
            .read_range(name, size - FOOTER_LEN as u64, FOOTER_LEN)?
            .ok_or_else(|| corrupt(name, "footer vanished"))?;
        if footer.len() != FOOTER_LEN || footer[16..20] != RUN_MAGIC {
            return Err(corrupt(name, "bad footer magic"));
        }
        let meta_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let meta_len = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        if meta_off
            .checked_add(meta_len)
            .is_none_or(|end| end != size - FOOTER_LEN as u64)
            || (meta_len as usize) < META_HEADER_LEN
        {
            return Err(corrupt(name, "meta section out of bounds"));
        }
        let section = disk
            .read_range(name, meta_off, meta_len as usize)?
            .ok_or_else(|| corrupt(name, "meta section vanished"))?;
        if section.len() != meta_len as usize {
            return Err(corrupt(name, "meta section truncated"));
        }
        let payload_len = u32::from_le_bytes(section[0..4].try_into().unwrap()) as usize;
        let expect_crc = u32::from_le_bytes(section[4..8].try_into().unwrap());
        if payload_len != section.len() - META_HEADER_LEN {
            return Err(corrupt(name, "meta length mismatch"));
        }
        let payload = &section[META_HEADER_LEN..];
        if crc32(payload) != expect_crc {
            return Err(corrupt(name, "meta checksum mismatch"));
        }

        let mut c = Cursor(payload);
        let mut parse = || -> Option<Run> {
            if c.u8()? != META_VERSION {
                return None;
            }
            let entries = c.u64()?;
            let tombstones = c.u64()?;
            let (bloom, consumed) = Bloom::decode(c.0)?;
            c.take(consumed)?;
            let nblocks = c.u32()? as usize;
            let mut blocks = Vec::with_capacity(nblocks);
            for _ in 0..nblocks {
                let space = c.u8()?;
                let offset = c.u64()?;
                let len = c.u32()?;
                let count = c.u32()?;
                let first_key = c.string()?;
                let last_key = c.string()?;
                if offset.checked_add(len as u64).is_none_or(|e| e > meta_off) {
                    return None;
                }
                blocks.push(BlockMeta {
                    space,
                    offset,
                    len,
                    count,
                    first_key,
                    last_key,
                });
            }
            if !c.0.is_empty() {
                return None;
            }
            // Blocks must be sorted by (space, first_key) for the
            // binary-searched point lookup to be sound.
            if !blocks.windows(2).all(|w| {
                (w[0].space, w[0].last_key.as_str()) < (w[1].space, w[1].first_key.as_str())
            }) {
                return None;
            }
            Some(Run {
                name: name.to_string(),
                id: parse_run_name(name).unwrap_or(u64::MAX),
                blocks,
                bloom,
                entries,
                tombstones,
                data_bytes: meta_off,
            })
        };
        parse().ok_or_else(|| corrupt(name, "malformed meta payload"))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Numeric id parsed from `run-{id:06}` at open time.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Smallest `(space, key)` held by this run; `None` for an empty run.
    pub fn min_key(&self) -> Option<(u8, &str)> {
        self.blocks.first().map(|b| (b.space, b.first_key.as_str()))
    }

    /// Largest `(space, key)` held by this run; `None` for an empty run.
    pub fn max_key(&self) -> Option<(u8, &str)> {
        self.blocks.last().map(|b| (b.space, b.last_key.as_str()))
    }

    /// Index of the one block whose range may contain `(space, key)`,
    /// found by binary search over the sparse index.
    pub(crate) fn block_for(&self, space: u8, key: &str) -> Option<usize> {
        let idx = self
            .blocks
            .partition_point(|b| (b.space, b.first_key.as_str()) <= (space, key));
        if idx == 0 {
            return None;
        }
        let block = &self.blocks[idx - 1];
        if block.space != space || block.last_key.as_str() < key {
            return None;
        }
        Some(idx - 1)
    }

    /// Data-region offset of block `idx` — the block cache's key.
    pub(crate) fn block_offset(&self, idx: usize) -> u64 {
        self.blocks[idx].offset
    }

    /// Read and CRC-check block `idx`; the caller (block cache) owns the
    /// decoded ops afterwards, so cached entries are always
    /// post-validation.
    pub(crate) fn load_block_at<D: Disk>(&self, disk: &D, idx: usize) -> StoreResult<Vec<WalOp>> {
        self.load_block(disk, &self.blocks[idx])
    }

    /// Resident-memory footprint of the opened run (index + bloom),
    /// for the bounded-memory accounting.
    pub fn resident_bytes(&self) -> usize {
        self.bloom.bits() / 8
            + self
                .blocks
                .iter()
                .map(|b| b.first_key.len() + b.last_key.len() + 32)
                .sum::<usize>()
    }

    /// Bloom check only — `false` proves the pair is absent.
    pub fn may_contain(&self, space: u8, key: &str) -> bool {
        self.bloom.may_contain(space, key)
    }

    /// [`Run::may_contain`] with the `(space, key)` hash pair
    /// precomputed — lets a lookup across many runs hash once.
    pub fn may_contain_hashed(&self, hash: (u64, u64)) -> bool {
        self.bloom.may_contain_hashed(hash)
    }

    /// Read and decode one data block, zero-copy.
    fn load_block<D: Disk>(&self, disk: &D, b: &BlockMeta) -> StoreResult<Vec<WalOp>> {
        let raw = disk
            .read_range(&self.name, b.offset, b.len as usize)?
            .ok_or_else(|| corrupt(&self.name, "data block vanished"))?;
        if raw.len() != b.len as usize {
            return Err(corrupt(&self.name, "data block truncated"));
        }
        let replay = wal::replay_shared(Bytes::from(raw))?;
        if replay.torn_tail || replay.batches.len() != 1 {
            return Err(corrupt(&self.name, "data block is not one whole frame"));
        }
        let ops = replay.batches.into_iter().next().unwrap();
        if ops.len() != b.count as usize {
            return Err(corrupt(&self.name, "data block op count mismatch"));
        }
        Ok(ops)
    }

    /// Point lookup.  `Ok(None)` — not in this run; `Ok(Some(None))` —
    /// tombstoned here; `Ok(Some(Some(v)))` — live value.
    pub fn get<D: Disk>(
        &self,
        disk: &D,
        space: u8,
        key: &str,
    ) -> StoreResult<Option<Option<Bytes>>> {
        let Some(idx) = self.block_for(space, key) else {
            return Ok(None);
        };
        for op in self.load_block_at(disk, idx)? {
            match op {
                WalOp::Put {
                    space: s,
                    key: k,
                    value,
                } if s == space && k == key => return Ok(Some(Some(value))),
                WalOp::Delete { space: s, key: k } if s == space && k == key => {
                    return Ok(Some(None))
                }
                _ => {}
            }
        }
        Ok(None)
    }

    /// All entries of `space` whose key starts with `prefix`, in key
    /// order.  Tombstones come back as `None` values so the caller can
    /// shadow older tiers correctly.
    pub fn scan_prefix<D: Disk>(
        &self,
        disk: &D,
        space: u8,
        prefix: &str,
    ) -> StoreResult<Vec<(String, Option<Bytes>)>> {
        let mut out = Vec::new();
        for b in self.blocks.iter().filter(|b| b.space == space) {
            if b.last_key.as_str() < prefix {
                continue;
            }
            if b.first_key.as_str() > prefix && !b.first_key.starts_with(prefix) {
                break;
            }
            for op in self.load_block(disk, b)? {
                match op {
                    WalOp::Put { key, value, .. } if key.starts_with(prefix) => {
                        out.push((key, Some(value)));
                    }
                    WalOp::Delete { key, .. } if key.starts_with(prefix) => {
                        out.push((key, None));
                    }
                    _ => {}
                }
            }
        }
        Ok(out)
    }

    /// All entries of `space` with key >= `start`, in key order.
    pub fn scan_from<D: Disk>(
        &self,
        disk: &D,
        space: u8,
        start: &str,
    ) -> StoreResult<Vec<(String, Option<Bytes>)>> {
        let mut out = Vec::new();
        for b in self.blocks.iter().filter(|b| b.space == space) {
            if b.last_key.as_str() < start {
                continue;
            }
            for op in self.load_block(disk, b)? {
                match op {
                    WalOp::Put { key, value, .. } if key.as_str() >= start => {
                        out.push((key, Some(value)));
                    }
                    WalOp::Delete { key, .. } if key.as_str() >= start => {
                        out.push((key, None));
                    }
                    _ => {}
                }
            }
        }
        Ok(out)
    }

    /// Every op in the run, in `(space, key)` order — the merge path.
    /// Values remain zero-copy slices of the per-block reads.
    pub fn load_all<D: Disk>(&self, disk: &D) -> StoreResult<Vec<WalOp>> {
        let mut out = Vec::with_capacity((self.entries + self.tombstones) as usize);
        for b in &self.blocks {
            out.extend(self.load_block(disk, b)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn sample_entries() -> Vec<(u8, String, Option<Vec<u8>>)> {
        let mut v = Vec::new();
        for space in 0..4u8 {
            for i in 0..50usize {
                let key = format!("k/{i:04}");
                if i % 7 == 3 {
                    v.push((space, key, None));
                } else {
                    v.push((space, key, Some(vec![space ^ i as u8; 60 + i])));
                }
            }
        }
        v
    }

    fn write_sample(disk: &MemDisk) -> Run {
        let owned = sample_entries();
        let entries: Vec<RunEntry<'_>> = owned
            .iter()
            .map(|(s, k, v)| RunEntry {
                space: *s,
                key: k,
                value: v.as_deref(),
            })
            .collect();
        let image = build_run(&entries);
        disk.write_atomic(&run_name(0), &image).unwrap();
        Run::open(disk, &run_name(0)).unwrap()
    }

    #[test]
    fn roundtrips_points_scans_and_tombstones() {
        let disk = MemDisk::new();
        let run = write_sample(&disk);
        assert_eq!(run.entries + run.tombstones, 200);
        assert_eq!(run.tombstones, 4 * 7); // i in {3,10,17,24,31,38,45} per space
        for (s, k, v) in sample_entries() {
            let got = run.get(&disk, s, &k).unwrap();
            match v {
                Some(val) => assert_eq!(got, Some(Some(Bytes::from(val)))),
                None => assert_eq!(got, Some(None)),
            }
        }
        assert_eq!(run.get(&disk, 0, "missing").unwrap(), None);
        assert_eq!(run.get(&disk, 0, "k/9999").unwrap(), None);
        let scan = run.scan_prefix(&disk, 2, "k/000").unwrap();
        assert_eq!(scan.len(), 10);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        let from = run.scan_from(&disk, 1, "k/0045").unwrap();
        assert_eq!(from.len(), 5);
        assert_eq!(from[0].0, "k/0045");
    }

    #[test]
    fn multi_block_runs_keep_one_space_per_block() {
        let disk = MemDisk::new();
        let run = write_sample(&disk);
        // 50 entries x ~85B values per space exceed one 4 KiB block, so
        // every space must split — and blocks never mix spaces.
        assert!(run.blocks.len() > 4, "blocks: {}", run.blocks.len());
        let all = run.load_all(&disk).unwrap();
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn empty_run_roundtrips() {
        let disk = MemDisk::new();
        let image = build_run(&[]);
        disk.write_atomic("run-000007", &image).unwrap();
        let run = Run::open(&disk, "run-000007").unwrap();
        assert_eq!(run.entries, 0);
        assert_eq!(run.tombstones, 0);
        assert!(!run.may_contain(0, "anything"));
        assert_eq!(run.get(&disk, 1, "x").unwrap(), None);
    }

    #[test]
    fn every_corrupted_byte_is_detected_or_harmless() {
        let disk = MemDisk::new();
        let owned = sample_entries();
        let entries: Vec<RunEntry<'_>> = owned
            .iter()
            .map(|(s, k, v)| RunEntry {
                space: *s,
                key: k,
                value: v.as_deref(),
            })
            .collect();
        let image = build_run(&entries);
        // Flip one byte at a stride across the whole image: the run must
        // either fail to open, fail the affected block's CRC on read, or
        // — for bloom bit flips — stay correct on every present key.
        for at in (0..image.len()).step_by(97) {
            let mut bad = image.clone();
            bad[at] ^= 0x40;
            disk.write_atomic("run-000001", &bad).unwrap();
            let opened = match Run::open(&disk, "run-000001") {
                Err(StoreError::Corruption(_)) => continue,
                Err(e) => panic!("unexpected error class at byte {at}: {e:?}"),
                Ok(r) => r,
            };
            for (s, k, v) in &owned {
                match opened.get(&disk, *s, k) {
                    Err(StoreError::Corruption(_)) => break,
                    Err(e) => panic!("unexpected error class at byte {at}: {e:?}"),
                    // The bloom and index live under the meta CRC and every
                    // data block under a frame CRC, so a flip can never make
                    // a present key silently vanish.
                    Ok(None) => panic!("byte {at}: present key {s}/{k} vanished undetected"),
                    Ok(Some(got)) => assert_eq!(got.as_ref().map(Bytes::as_slice), v.as_deref()),
                }
            }
        }
    }

    #[test]
    fn run_names_roundtrip_and_reject_noise() {
        assert_eq!(run_name(42), "run-000042");
        assert_eq!(parse_run_name("run-000042"), Some(42));
        assert_eq!(parse_run_name("run-42"), None);
        assert_eq!(parse_run_name("run-abcdef"), None);
        assert_eq!(parse_run_name("wal-000042"), None);
    }
}
