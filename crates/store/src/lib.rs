//! # bioopera-store
//!
//! Embedded storage engine backing BioOpera's persistent *spaces*.
//!
//! The BioOpera paper (§3.2) requires that "a process instance is persistent
//! both in terms of the data and the state of the execution", so that the
//! server can "resume execution of processes after failures occur without
//! losing already completed work".  The original system used a relational
//! database; this crate provides the equivalent durability contract as an
//! embedded engine:
//!
//! * a **write-ahead log** ([`wal`]) with CRC-framed, atomically-replayable
//!   batches and torn-tail tolerance,
//! * periodic **snapshots** with WAL rotation ([`Store::compact`]),
//! * a bounded-memory **tiered layer** ([`runs`], [`bloom`]): once a
//!   [`TieredPolicy`] memtable budget is exceeded the memtables spill to
//!   immutable sorted-run files with per-run bloom filters and sparse block
//!   indexes; reads check memtable → runs newest-to-oldest, and a crash-safe
//!   merge compaction folds runs together and drops tombstones,
//! * four typed **record spaces** ([`Space`]) mirroring the paper's template /
//!   instance / configuration / data (history) spaces,
//! * a pluggable [`disk::Disk`] abstraction with a real filesystem backend and
//!   an in-memory fault-injecting backend used to *actually* crash the engine
//!   mid-write in tests and recovery experiments.
//!
//! All mutation goes through [`Batch`]es: either every record of a batch is
//! visible after recovery or none is.  This is what makes the navigator's
//! "mapping phase" (copying task outputs into the whiteboard plus marking the
//! task done) atomic across failures.

pub mod bloom;
pub mod cache;
pub mod crc;
pub mod disk;
pub mod engine;
pub mod error;
pub mod runs;
pub mod shard;
pub mod typed;
pub mod wal;

pub use disk::{CrashEffect, Disk, FaultPlan, FaultTrigger, FileDisk, MemDisk};
pub use engine::{Batch, CompactionPolicy, Space, Store, StoreStats, TieredPolicy};
pub use error::{StoreError, StoreResult};
pub use shard::{parse_shard_key, shard_key, shard_prefix};
pub use typed::TypedSpace;
