//! The storage engine proper: record spaces, atomic batches, snapshots,
//! and the bounded-memory sorted-run tier.
//!
//! A [`Store`] keeps the hot record set in memory (a `BTreeMap` per
//! space) and makes every mutation durable through the WAL before
//! applying it.  Without a [`TieredPolicy`] the memtables hold
//! everything and [`Store::compact`] rolls the log into a snapshot —
//! the pre-tiering behavior, byte-for-byte.  With a policy installed,
//! a memtable set that outgrows its budget **spills** to an immutable
//! sorted-run file ([`crate::runs`]); reads then check memtable → runs
//! newest-to-oldest (bloom filters skip runs that cannot hold the key),
//! and once enough runs accumulate a crash-safe merge compaction folds
//! them into one and drops tombstones.
//!
//! # Locking model
//!
//! The engine splits its state in three so readers never contend with
//! the disk:
//!
//! * `wal: Mutex<WalState>` — the disk handle, epoch, WAL counters and
//!   tier bookkeeping.  Only writers (`apply`, `apply_many`, `compact`,
//!   spill/merge) take it.
//! * `mem: RwLock<MemTables>` — the four per-space memtables.  Readers
//!   (`get`, `scan_prefix`, `len`) take only the read lock; a write lock
//!   is held just for the in-memory application of an already-durable
//!   batch.
//! * `tiers: RwLock<Vec<Run>>` — the opened sorted runs, oldest first.
//!
//! Lock order is always `wal` → `mem` → `tiers`.  Writers acquire `wal`
//! first and keep holding it while they take the `mem` write lock, so
//! the order in which batches become durable in the WAL is exactly the
//! order in which they become visible — recovery can never disagree
//! with what a reader observed.  Readers hold their `mem` read guard
//! across the `tiers` lookup, so a spill (which takes both write locks
//! before clearing the memtable and publishing the new run) is atomic
//! from a reader's point of view.  Frame encoding happens *before* any
//! lock is taken.

use crate::disk::Disk;
use crate::error::{StoreError, StoreResult};
use crate::runs::{self, parse_run_name, run_name, Run, RunEntry};
use crate::wal::{self, WalOp, WalOpRef};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The four persistent spaces of the BioOpera data layer (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Space {
    /// Process templates as defined by users.
    Template,
    /// Processes currently executing (the navigator's durable state).
    Instance,
    /// Hardware/software configuration of the computing infrastructure.
    Configuration,
    /// Historical information about executed processes, load samples, events.
    History,
}

impl Space {
    /// All spaces, in stable order.
    pub const ALL: [Space; 4] = [
        Space::Template,
        Space::Instance,
        Space::Configuration,
        Space::History,
    ];

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Space::Template => 0,
            Space::Instance => 1,
            Space::Configuration => 2,
            Space::History => 3,
        }
    }

    /// Inverse of the WAL encoding of a space tag; rejects unknown tags.
    pub fn from_u8(v: u8) -> StoreResult<Space> {
        match v {
            0 => Ok(Space::Template),
            1 => Ok(Space::Instance),
            2 => Ok(Space::Configuration),
            3 => Ok(Space::History),
            other => Err(StoreError::Corruption(format!("unknown space {other}"))),
        }
    }

    /// Human-readable name, used in debug dumps.
    pub fn name(self) -> &'static str {
        match self {
            Space::Template => "template",
            Space::Instance => "instance",
            Space::Configuration => "configuration",
            Space::History => "history",
        }
    }
}

/// An atomic batch of mutations.  All operations in a batch become visible
/// together or not at all, across crashes.
#[derive(Debug, Default, Clone)]
pub struct Batch {
    ops: Vec<WalOp>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert/replace.
    pub fn put(
        &mut self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> &mut Self {
        self.ops.push(WalOp::Put {
            space: space.as_u8(),
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, space: Space, key: impl Into<String>) -> &mut Self {
        self.ops.push(WalOp::Delete {
            space: space.as_u8(),
            key: key.into(),
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Counters describing the store's physical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Current snapshot/WAL epoch.
    pub epoch: u64,
    /// Bytes appended to the live WAL since the last compaction.
    pub wal_bytes: u64,
    /// Batches applied since open (including replayed ones).
    pub batches_applied: u64,
    /// Total records across all spaces.
    pub records: usize,
    /// Whether the last open discarded a torn tail.
    pub recovered_torn_tail: bool,
    /// Bytes of torn tail the last open discarded.
    pub recovered_truncated_bytes: u64,
    /// Sorted runs currently on disk.
    pub runs: usize,
    /// Estimated resident bytes in the memtables (keys + values +
    /// per-entry overhead) — what a [`TieredPolicy`] budget bounds.
    pub memtable_bytes: u64,
    /// Memtable spills performed by this handle since open.
    pub spills: u64,
    /// Run merge compactions performed by this handle since open.
    pub run_merges: u64,
    /// Run lookups answered "definitely absent" by a bloom filter alone
    /// (no disk read).
    pub bloom_skips: u64,
    /// Run lookups that had to read a data block.
    pub run_probes: u64,
}

/// When to roll the WAL into a snapshot automatically.  Installed with
/// [`Store::set_compaction_policy`]; the store then compacts itself right
/// after the commit that crosses the threshold, so month-long runs bound
/// their recovery cost without the caller sprinkling `compact()` calls.
///
/// With no policy installed (the default) the store never compacts on its
/// own — mutation sequences are exactly the caller's calls, which is what
/// the crash-point torture harness enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the live WAL exceeds this many bytes.
    pub wal_bytes_threshold: u64,
    /// …but only after at least this many batches in the current epoch,
    /// so a single oversized batch doesn't trigger a pointless roll.
    pub min_wal_batches: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            wal_bytes_threshold: 8 * 1024 * 1024,
            min_wal_batches: 4,
        }
    }
}

/// Bounded-memory tiering: once the memtables' estimated resident size
/// exceeds `memtable_budget_bytes`, the commit that crossed the budget
/// spills them to a sorted-run file; once `run_merge_threshold` runs
/// exist they are merged into one (dropping tombstones).
///
/// With no tiered policy installed (the default) the store behaves —
/// and lays bytes down — exactly as the pre-tiering engine, unless runs
/// already exist on disk from an earlier tiered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredPolicy {
    /// Spill once the memtables' estimated bytes exceed this.
    pub memtable_budget_bytes: u64,
    /// Merge all runs into one once this many exist.
    pub run_merge_threshold: usize,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            memtable_budget_bytes: 4 * 1024 * 1024,
            run_merge_threshold: 4,
        }
    }
}

impl TieredPolicy {
    /// Policy requested through the environment, if any:
    /// `BIOOPERA_MEMTABLE_BUDGET` (bytes) enables tiering, and
    /// `BIOOPERA_RUN_MERGE` optionally overrides the merge threshold.
    /// This is how the test suite forces constant spilling across the
    /// whole workspace without touching call sites.
    pub fn from_env() -> Option<TieredPolicy> {
        let budget = std::env::var("BIOOPERA_MEMTABLE_BUDGET")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        let merge = std::env::var("BIOOPERA_RUN_MERGE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(TieredPolicy::default().run_merge_threshold);
        Some(TieredPolicy {
            memtable_budget_bytes: budget,
            run_merge_threshold: merge.max(2),
        })
    }
}

/// Everything a writer needs: the disk plus WAL/epoch accounting and
/// tier bookkeeping.
struct WalState<D: Disk> {
    disk: Arc<D>,
    epoch: u64,
    wal_bytes: u64,
    batches_applied: u64,
    batches_in_epoch: u64,
    recovered_torn_tail: bool,
    recovered_truncated_bytes: u64,
    policy: Option<CompactionPolicy>,
    tiered: Option<TieredPolicy>,
    /// Id of the next run file this handle will write.
    next_run_id: u64,
    /// Per-space live-record counts of the *runs-only* view — what the
    /// MANIFEST persists, so reopen can seed `MemTables::live` without
    /// scanning run data.  Updated only at spill time (when runs-view
    /// == full view); merges preserve it.
    tier_live: [usize; 4],
    spills: u64,
    run_merges: u64,
}

impl<D: Disk> WalState<D> {
    fn over_threshold(&self) -> bool {
        self.policy.is_some_and(|p| {
            self.wal_bytes >= p.wal_bytes_threshold && self.batches_in_epoch >= p.min_wal_batches
        })
    }
}

/// Estimated resident cost of one memtable entry (`None` value = a
/// tombstone).  The constant overhead stands in for the `BTreeMap` node
/// and `Bytes` handle.
const ENTRY_OVERHEAD: u64 = 48;

fn entry_cost(key_len: usize, value_len: usize) -> u64 {
    key_len as u64 + value_len as u64 + ENTRY_OVERHEAD
}

/// Read-path counters that live outside the WAL lock (readers bump them
/// without serializing on writers).
#[derive(Default)]
struct TierMetrics {
    bloom_skips: AtomicU64,
    run_probes: AtomicU64,
}

/// Look `key` up in the runs, newest to oldest.  `Ok(None)` — in no
/// run; `Ok(Some(None))` — newest occurrence is a tombstone;
/// `Ok(Some(Some(v)))` — newest occurrence is live.
fn runs_lookup<D: Disk>(
    tiers: &[Run],
    disk: &D,
    metrics: &TierMetrics,
    space: u8,
    key: &str,
) -> StoreResult<Option<Option<Bytes>>> {
    for run in tiers.iter().rev() {
        if !run.may_contain(space, key) {
            metrics.bloom_skips.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        metrics.run_probes.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = run.get(disk, space, key)? {
            return Ok(Some(hit));
        }
    }
    Ok(None)
}

/// The four per-space memtables.  Keys are plain `String`s so lookups
/// can borrow the caller's `&str` (no per-`get` allocation).  A `None`
/// value is a **tombstone**: the key exists in an older run but has
/// been deleted; tombstones only appear while runs exist.  `live`
/// tracks the per-space count of the merged (memtable ∪ runs) view so
/// `len` stays O(1) even with tombstones in play.
#[derive(Default)]
struct MemTables {
    spaces: [BTreeMap<String, Option<Bytes>>; 4],
    live: [usize; 4],
    /// Estimated resident bytes — what the spill budget is checked
    /// against.
    approx_bytes: u64,
}

/// What the memtable knew about a key before an op, with borrows
/// dropped so the caller can mutate.
enum Prior {
    Live(usize),
    Tombstone,
    Absent,
}

/// Apply a durable batch to the memtables, maintaining the live counts
/// against the run tier.  Fallible only because resolving whether an
/// absent key is live in a run may read run blocks (bloom-gated; always
/// infallible and free when `tiers` is empty).
fn apply_ops_tiered<D: Disk>(
    mem: &mut MemTables,
    tiers: &[Run],
    disk: &D,
    metrics: &TierMetrics,
    ops: Vec<WalOp>,
) -> StoreResult<()> {
    for op in ops {
        match op {
            WalOp::Put { space, key, value } => {
                // Unknown space tags can only come from a corrupted
                // frame that still passed its CRC; drop them rather
                // than panic — they were never addressable anyway.
                let si = space as usize;
                if si >= 4 {
                    continue;
                }
                let prior = match mem.spaces[si].get(&key) {
                    Some(Some(v)) => Prior::Live(v.len()),
                    Some(None) => Prior::Tombstone,
                    None => Prior::Absent,
                };
                match prior {
                    Prior::Live(vlen) => {
                        mem.approx_bytes -= entry_cost(key.len(), vlen);
                    }
                    Prior::Tombstone => {
                        mem.approx_bytes -= entry_cost(key.len(), 0);
                        mem.live[si] += 1;
                    }
                    Prior::Absent => {
                        let live_in_runs = !tiers.is_empty()
                            && runs_lookup(tiers, disk, metrics, space, &key)?
                                .is_some_and(|v| v.is_some());
                        if !live_in_runs {
                            mem.live[si] += 1;
                        }
                    }
                }
                mem.approx_bytes += entry_cost(key.len(), value.len());
                mem.spaces[si].insert(key, Some(value));
            }
            WalOp::Delete { space, key } => {
                let si = space as usize;
                if si >= 4 {
                    continue;
                }
                let prior = match mem.spaces[si].get(&key) {
                    Some(Some(v)) => Prior::Live(v.len()),
                    Some(None) => Prior::Tombstone,
                    None => Prior::Absent,
                };
                match prior {
                    Prior::Live(vlen) => {
                        mem.approx_bytes -= entry_cost(key.len(), vlen);
                        mem.live[si] -= 1;
                        // A tombstone is only worth keeping if some run
                        // might still surface the key (bloom check, no
                        // I/O); otherwise plain removal suffices.
                        if tiers.iter().any(|r| r.may_contain(space, &key)) {
                            mem.approx_bytes += entry_cost(key.len(), 0);
                            mem.spaces[si].insert(key, None);
                        } else {
                            mem.spaces[si].remove(&key);
                        }
                    }
                    Prior::Tombstone => {} // already deleted
                    Prior::Absent => {
                        let live_in_runs = !tiers.is_empty()
                            && runs_lookup(tiers, disk, metrics, space, &key)?
                                .is_some_and(|v| v.is_some());
                        if live_in_runs {
                            mem.live[si] -= 1;
                            mem.approx_bytes += entry_cost(key.len(), 0);
                            mem.spaces[si].insert(key, None);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// The storage engine.  Cheap to clone (shared handle); all methods are
/// thread-safe, and readers never block other readers.
pub struct Store<D: Disk> {
    wal: Arc<Mutex<WalState<D>>>,
    mem: Arc<RwLock<MemTables>>,
    tiers: Arc<RwLock<Vec<Run>>>,
    disk: Arc<D>,
    metrics: Arc<TierMetrics>,
    poisoned: Arc<AtomicBool>,
}

impl<D: Disk> Clone for Store<D> {
    fn clone(&self) -> Self {
        Store {
            wal: Arc::clone(&self.wal),
            mem: Arc::clone(&self.mem),
            tiers: Arc::clone(&self.tiers),
            disk: Arc::clone(&self.disk),
            metrics: Arc::clone(&self.metrics),
            poisoned: Arc::clone(&self.poisoned),
        }
    }
}

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}")
}

fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:06}")
}

const MANIFEST: &str = "MANIFEST";

/// Records per snapshot frame: keeps individual frames reasonable and is
/// part of the on-disk format compatibility surface (snapshots written by
/// earlier engine versions used the same chunking).
const SNAPSHOT_CHUNK: usize = 1024;

/// Parsed MANIFEST contents.
struct ManifestState {
    epoch: u64,
    tier_live: [usize; 4],
    run_names: Vec<String>,
}

/// Serialize the manifest.  With no runs the output is the bare epoch
/// digits — **byte-identical** to what every pre-tiering engine version
/// wrote, so a store that never spills produces an unchanged directory.
/// With runs, extra lines follow: `live t i c h` (per-space live counts
/// of the runs-only view) and one `run <name>` line per run in
/// oldest-to-newest order.
fn format_manifest(epoch: u64, tier_live: &[usize; 4], run_names: &[&str]) -> String {
    if run_names.is_empty() {
        return epoch.to_string();
    }
    let mut out = format!(
        "{epoch}\nlive {} {} {} {}\n",
        tier_live[0], tier_live[1], tier_live[2], tier_live[3]
    );
    for name in run_names {
        out.push_str("run ");
        out.push_str(name);
        out.push('\n');
    }
    out
}

fn parse_manifest(bytes: Vec<u8>) -> StoreResult<ManifestState> {
    let text = String::from_utf8(bytes)
        .map_err(|_| StoreError::Corruption("manifest not utf-8".into()))?;
    let mut lines = text.lines();
    let epoch = lines
        .next()
        .unwrap_or("")
        .trim()
        .parse::<u64>()
        .map_err(|_| StoreError::Corruption("manifest not a number".into()))?;
    let mut tier_live = [0usize; 4];
    let mut saw_live = false;
    let mut run_names = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("live ") {
            let counts: Vec<usize> = rest
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|_| StoreError::Corruption("manifest live counts malformed".into()))?;
            if counts.len() != 4 {
                return Err(StoreError::Corruption(
                    "manifest live counts malformed".into(),
                ));
            }
            tier_live.copy_from_slice(&counts);
            saw_live = true;
        } else if let Some(name) = line.strip_prefix("run ") {
            if parse_run_name(name).is_none() {
                return Err(StoreError::Corruption(format!(
                    "manifest lists malformed run name {name:?}"
                )));
            }
            run_names.push(name.to_string());
        } else {
            return Err(StoreError::Corruption(format!(
                "manifest has unknown line {line:?}"
            )));
        }
    }
    if !run_names.is_empty() && !saw_live {
        return Err(StoreError::Corruption(
            "manifest lists runs but no live counts".into(),
        ));
    }
    Ok(ManifestState {
        epoch,
        tier_live,
        run_names,
    })
}

impl<D: Disk> Store<D> {
    /// Open a store on `disk`, running crash recovery: load the run tier
    /// and the newest committed snapshot, then replay the live WAL,
    /// discarding any torn tail left by a crash.
    ///
    /// A [`TieredPolicy`] requested through the environment
    /// (`BIOOPERA_MEMTABLE_BUDGET`) is installed automatically; use
    /// [`Store::open_with`] to pin the policy explicitly.
    pub fn open(disk: D) -> StoreResult<Self> {
        Self::open_with(disk, TieredPolicy::from_env())
    }

    /// [`Store::open`] with an explicit tiering decision (`None` keeps
    /// the engine in the pure snapshot mode unless runs already exist on
    /// disk from an earlier tiered session).
    pub fn open_with(disk: D, tiered: Option<TieredPolicy>) -> StoreResult<Self> {
        let disk = Arc::new(disk);
        let manifest = match disk.read(MANIFEST)? {
            Some(bytes) => parse_manifest(bytes)?,
            None => ManifestState {
                epoch: 0,
                tier_live: [0; 4],
                run_names: Vec::new(),
            },
        };
        let epoch = manifest.epoch;

        // Open every run the manifest lists (oldest first).  A listed
        // run that is missing or unreadable is corruption: the manifest
        // write was the commit point that promised it.
        let mut runs_vec: Vec<Run> = Vec::with_capacity(manifest.run_names.len());
        let mut next_run_id = 0u64;
        for name in &manifest.run_names {
            let id = parse_run_name(name).expect("validated by parse_manifest");
            next_run_id = next_run_id.max(id + 1);
            runs_vec.push(Run::open(&*disk, name)?);
        }

        let metrics = Arc::new(TierMetrics::default());
        // Seed the live counts from the manifest — this is what makes
        // reopen O(tail): no run data block is read to learn how many
        // records the tier holds.
        let mut mem = MemTables {
            live: manifest.tier_live,
            ..Default::default()
        };
        let mut batches_applied = 0u64;

        // Snapshots and runs are mutually exclusive on disk (a spill
        // commits the manifest and deletes the snapshot in the same
        // epoch roll), so the snapshot is only consulted when no runs
        // are listed.  Snapshots are written atomically, so a torn
        // snapshot is corruption.
        if runs_vec.is_empty() {
            if let Some(snap) = disk.read(&snapshot_name(epoch))? {
                let replay = wal::replay_shared(Bytes::from(snap))?;
                if replay.torn_tail {
                    return Err(StoreError::Corruption("snapshot has torn frames".into()));
                }
                for batch in replay.batches {
                    batches_applied += 1;
                    apply_ops_tiered(&mut mem, &[], &*disk, &metrics, batch)?;
                }
            }
        }

        let mut batches_in_epoch = 0u64;
        let (wal_bytes, recovered_torn_tail, recovered_truncated_bytes) =
            match disk.read(&wal_name(epoch))? {
                Some(log) => {
                    // The log image becomes one shared buffer; replay
                    // slices every value out of it without copying.
                    let log = Bytes::from(log);
                    let replay = wal::replay_shared(log.clone())?;
                    for batch in replay.batches {
                        batches_applied += 1;
                        batches_in_epoch += 1;
                        apply_ops_tiered(&mut mem, &runs_vec, &*disk, &metrics, batch)?;
                    }
                    if replay.torn_tail {
                        // Repair: drop the torn tail *on disk*, not just in
                        // memory.  Future appends must continue at the end
                        // of the valid prefix — appending after the torn
                        // bytes would make every post-recovery batch appear
                        // to follow an invalid frame on the next open, and
                        // be discarded.
                        disk.write_atomic(&wal_name(epoch), &log.as_slice()[..replay.valid_len])?;
                    }
                    (
                        replay.valid_len as u64,
                        replay.torn_tail,
                        replay.truncated_bytes as u64,
                    )
                }
                None => (0, false, 0),
            };

        // Crash hygiene: a crash can leave partially-written temp files
        // (torn `write_atomic`), orphan snapshot/WAL files of adjacent
        // epochs (crash inside `compact`/spill between the new-state
        // write, the manifest commit and the old-epoch GC), and run
        // files the manifest never adopted (crash between the run write
        // and the manifest commit) or already dropped (crash inside the
        // merge GC).  Remove them so they can never be mistaken for live
        // state.  These deletes are themselves crash points
        // (recovery-during-recovery) and are idempotent: a crash here
        // leaves a state this same pass cleans on the next open.
        let keep_wal = wal_name(epoch);
        let keep_snap = snapshot_name(epoch);
        for name in disk.list()? {
            let stale = name.ends_with(".tmp")
                || (name.starts_with("wal-") && name != keep_wal)
                || (name.starts_with("snapshot-") && (name != keep_snap || !runs_vec.is_empty()))
                || (name.starts_with("run-") && !manifest.run_names.iter().any(|r| r == &name));
            if stale {
                disk.delete(&name)?;
            }
        }

        Ok(Store {
            wal: Arc::new(Mutex::new(WalState {
                disk: Arc::clone(&disk),
                epoch,
                wal_bytes,
                batches_applied,
                batches_in_epoch,
                recovered_torn_tail,
                recovered_truncated_bytes,
                policy: None,
                tiered,
                next_run_id,
                tier_live: manifest.tier_live,
                spills: 0,
                run_merges: 0,
            })),
            mem: Arc::new(RwLock::new(mem)),
            tiers: Arc::new(RwLock::new(runs_vec)),
            disk,
            metrics,
            poisoned: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Install (or clear) the automatic compaction policy.
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        self.wal.lock().policy = policy;
    }

    /// Install (or clear) the tiered-storage policy at runtime.
    pub fn set_tiered_policy(&self, policy: Option<TieredPolicy>) {
        self.wal.lock().tiered = policy;
    }

    /// The currently installed tiered-storage policy, if any.
    pub fn tiered_policy(&self) -> Option<TieredPolicy> {
        self.wal.lock().tiered
    }

    /// Apply a batch atomically: durable in the WAL first, then visible.
    pub fn apply(&self, batch: Batch) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        if batch.is_empty() {
            return Ok(());
        }
        // Encode outside the critical section: concurrent committers
        // serialize only on the disk append itself, not the CPU work.
        let frame = wal::encode_frame(&batch.ops);
        let auto = {
            let mut wal = self.wal.lock();
            let name = wal_name(wal.epoch);
            if let Err(e) = wal.disk.append(&name, &frame) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            wal.wal_bytes += frame.len() as u64;
            wal.batches_applied += 1;
            wal.batches_in_epoch += 1;
            // Still holding the WAL lock: visibility order == durable order.
            let mut mem = self.mem.write();
            let tiers = self.tiers.read();
            if let Err(e) =
                apply_ops_tiered(&mut mem, &tiers, &*self.disk, &self.metrics, batch.ops)
            {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            self.roll_due(&wal, &mem, &tiers)
        };
        if auto {
            self.maybe_roll()?;
        }
        Ok(())
    }

    /// Group commit: apply several batches with **one** disk append.
    ///
    /// Each batch stays its own WAL frame, so per-batch atomicity across
    /// crashes is untouched — a torn write leaves a whole-batch prefix,
    /// exactly as if the batches had been applied one call at a time.
    /// What is amortized is everything else: one lock acquisition, one
    /// append syscall, one visibility pass.
    pub fn apply_many(&self, batches: impl IntoIterator<Item = Batch>) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        let mut pending: Vec<Vec<WalOp>> = Vec::new();
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            let refs: Vec<WalOpRef<'_>> = batch.ops.iter().map(WalOp::as_op_ref).collect();
            wal::encode_frame_into(&mut buf, &mut scratch, &refs);
            pending.push(batch.ops);
        }
        if pending.is_empty() {
            return Ok(());
        }
        let auto = {
            let mut wal = self.wal.lock();
            let name = wal_name(wal.epoch);
            if let Err(e) = wal.disk.append(&name, &buf) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            wal.wal_bytes += buf.len() as u64;
            wal.batches_applied += pending.len() as u64;
            wal.batches_in_epoch += pending.len() as u64;
            let mut mem = self.mem.write();
            let tiers = self.tiers.read();
            for ops in pending {
                if let Err(e) = apply_ops_tiered(&mut mem, &tiers, &*self.disk, &self.metrics, ops)
                {
                    self.poisoned.store(true, Ordering::SeqCst);
                    return Err(e);
                }
            }
            self.roll_due(&wal, &mem, &tiers)
        };
        if auto {
            self.maybe_roll()?;
        }
        Ok(())
    }

    /// Convenience single-record put.
    pub fn put(
        &self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> StoreResult<()> {
        let mut b = Batch::new();
        b.put(space, key, value);
        self.apply(b)
    }

    /// Convenience single-record delete.
    pub fn delete(&self, space: Space, key: impl Into<String>) -> StoreResult<()> {
        let mut b = Batch::new();
        b.delete(space, key);
        self.apply(b)
    }

    /// Fetch a record.  Memtable first (tombstones shadow the tier), then
    /// the runs newest-to-oldest, each consulted only when its bloom
    /// filter admits the key.  The memtable guard is held across the run
    /// lookup so a concurrent spill cannot move the key out from under
    /// the reader.
    pub fn get(&self, space: Space, key: &str) -> StoreResult<Option<Bytes>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mem = self.mem.read();
        match mem.spaces[space.as_u8() as usize].get(key) {
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Ok(None), // tombstone: deleted after the last spill
            None => {
                let tiers = self.tiers.read();
                if tiers.is_empty() {
                    return Ok(None);
                }
                match runs_lookup(&tiers, &*self.disk, &self.metrics, space.as_u8(), key)? {
                    Some(Some(v)) => Ok(Some(v)),
                    _ => Ok(None),
                }
            }
        }
    }

    /// All `(key, value)` pairs in `space` whose key starts with `prefix`,
    /// in key order, merged across the memtable and the run tier: runs
    /// fold oldest-to-newest into an ordered map (newer entries
    /// overwrite), the memtable overlays last (tombstones shadow), then
    /// deletions drop out.
    pub fn scan_prefix(&self, space: Space, prefix: &str) -> StoreResult<Vec<(String, Bytes)>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mem = self.mem.read();
        let tiers = self.tiers.read();
        let mem_map = &mem.spaces[space.as_u8() as usize];
        if tiers.is_empty() {
            // Fast path: no tier means no tombstones and no merge map.
            return Ok(mem_map
                .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
                .filter_map(|(k, v)| v.as_ref().map(|v| (k.clone(), v.clone())))
                .collect());
        }
        let mut merged: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        for run in tiers.iter() {
            for (k, v) in run.scan_prefix(&*self.disk, space.as_u8(), prefix)? {
                merged.insert(k, v);
            }
        }
        for (k, v) in mem_map
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// All `(key, value)` pairs in `space` with `key >= start`, in key
    /// order, merged across the memtable and the run tier.  This is the
    /// tail-scan primitive: callers that persist a rollup can resume from
    /// the first un-rolled-up key without replaying their whole history.
    pub fn scan_from(&self, space: Space, start: &str) -> StoreResult<Vec<(String, Bytes)>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mem = self.mem.read();
        let tiers = self.tiers.read();
        let mem_map = &mem.spaces[space.as_u8() as usize];
        if tiers.is_empty() {
            return Ok(mem_map
                .range::<str, _>((Bound::Included(start), Bound::Unbounded))
                .filter_map(|(k, v)| v.as_ref().map(|v| (k.clone(), v.clone())))
                .collect());
        }
        let mut merged: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        for run in tiers.iter() {
            for (k, v) in run.scan_from(&*self.disk, space.as_u8(), start)? {
                merged.insert(k, v);
            }
        }
        for (k, v) in mem_map.range::<str, _>((Bound::Included(start), Bound::Unbounded)) {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Number of records in `space`.  O(1): maintained incrementally
    /// across the memtable ∪ runs view.
    pub fn len(&self, space: Space) -> StoreResult<usize> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        Ok(self.mem.read().live[space.as_u8() as usize])
    }

    /// True when `space` holds no records.  O(1).
    pub fn is_empty(&self, space: Space) -> StoreResult<bool> {
        Ok(self.len(space)? == 0)
    }

    /// Roll the WAL forward.  In snapshot mode (no tiered policy, no
    /// runs on disk): write `snapshot-{e+1}` atomically, bump the
    /// manifest (the commit point), start an empty `wal-{e+1}`, then
    /// garbage-collect the previous epoch's files.  In tiered mode:
    /// spill the memtables to a sorted run, then merge the whole tier
    /// down to a single run.  A crash at any point leaves either the old
    /// epoch or the new epoch fully recoverable.
    pub fn compact(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        if wal.tiered.is_some() || !self.tiers.read().is_empty() {
            self.spill_locked(&mut wal)?;
            if self.tiers.read().len() > 1 {
                self.merge_runs_locked(&mut wal)?;
            }
            Ok(())
        } else {
            self.compact_locked(&mut wal)
        }
    }

    /// Spill the memtables to a new immutable sorted-run file, rolling
    /// the WAL epoch.  No-op when there is nothing to persist and the
    /// WAL is already empty.
    pub fn spill(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        self.spill_locked(&mut wal)
    }

    /// Merge every run into one, dropping tombstones.  No-op with fewer
    /// than two runs.
    pub fn merge_runs(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        self.merge_runs_locked(&mut wal)
    }

    /// Is a roll (spill or snapshot compaction) due?  Called by
    /// committers while still holding their locks; the actual roll
    /// happens in [`Store::maybe_roll`] after they release.
    fn roll_due(&self, wal: &WalState<D>, mem: &MemTables, _tiers: &[Run]) -> bool {
        wal.tiered
            .is_some_and(|t| mem.approx_bytes > t.memtable_budget_bytes)
            || wal.over_threshold()
    }

    /// Re-check the roll condition and perform it if still due.  Called
    /// after a commit observed the condition *and released its locks*;
    /// the re-check under the lock means two racing committers trigger
    /// exactly one roll (the second sees the fresh epoch).
    fn maybe_roll(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        let budget_hit = {
            let mem = self.mem.read();
            wal.tiered
                .is_some_and(|t| mem.approx_bytes > t.memtable_budget_bytes)
        };
        if !budget_hit && !wal.over_threshold() {
            return Ok(());
        }
        if wal.tiered.is_some() || !self.tiers.read().is_empty() {
            self.spill_locked(&mut wal)?;
            let threshold = wal
                .tiered
                .map(|t| t.run_merge_threshold)
                .unwrap_or_else(|| TieredPolicy::default().run_merge_threshold);
            if self.tiers.read().len() >= threshold {
                self.merge_runs_locked(&mut wal)?;
            }
            Ok(())
        } else {
            self.compact_locked(&mut wal)
        }
    }

    /// The spill body; the caller holds the WAL lock, which freezes the
    /// memtables against writers (readers proceed untouched until the
    /// final swap).  Sequence: build the run image from a frozen
    /// memtable view, write it, re-open it (self-check through the same
    /// decoder recovery will use), commit the manifest at `epoch + 1`
    /// (THE commit point — before it the new run is invisible garbage,
    /// after it the old WAL/snapshot are garbage), GC the old epoch,
    /// then atomically swap memtables for the run under both write
    /// locks.
    fn spill_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        {
            let mem = self.mem.read();
            let quiescent = mem.spaces.iter().all(BTreeMap::is_empty)
                && wal.wal_bytes == 0
                && wal.batches_in_epoch == 0;
            if quiescent {
                return Ok(());
            }
        }
        let next = wal.epoch + 1;
        let name = run_name(wal.next_run_id);
        let (data, live_now) = {
            let mem = self.mem.read();
            let mut entries = Vec::new();
            for (space, map) in mem.spaces.iter().enumerate() {
                for (key, value) in map {
                    entries.push(RunEntry {
                        space: space as u8,
                        key,
                        value: value.as_deref(),
                    });
                }
            }
            (runs::build_run(&entries), mem.live)
        };
        let io: StoreResult<Run> = (|| {
            wal.disk.write_atomic(&name, &data)?;
            let run = Run::open(&*wal.disk, &name)?;
            let manifest = {
                let tiers = self.tiers.read();
                let mut names: Vec<&str> = tiers.iter().map(Run::name).collect();
                names.push(&name);
                // After the spill the runs-only view IS the full view
                // (memtables drain into the run), so the live counts to
                // persist are the current merged counts.
                format_manifest(next, &live_now, &names)
            };
            wal.disk.write_atomic(MANIFEST, manifest.as_bytes())?;
            wal.disk.delete(&wal_name(wal.epoch))?;
            wal.disk.delete(&snapshot_name(wal.epoch))?;
            Ok(run)
        })();
        let run = match io {
            Ok(run) => run,
            Err(e) => {
                // Disk state is ambiguous from this handle's view;
                // poison so a re-open re-establishes the truth.
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        };
        {
            // Readers hold `mem` across their tier lookup, so taking
            // both write locks makes the swap invisible: no reader can
            // observe the drained memtable without the new run.
            let mut mem = self.mem.write();
            let mut tiers = self.tiers.write();
            for map in &mut mem.spaces {
                map.clear();
            }
            mem.approx_bytes = 0;
            tiers.push(run);
        }
        wal.epoch = next;
        wal.wal_bytes = 0;
        wal.batches_in_epoch = 0;
        wal.next_run_id += 1;
        wal.tier_live = live_now;
        wal.spills += 1;
        Ok(())
    }

    /// The merge body; the caller holds the WAL lock.  Folds every run
    /// oldest-to-newest into one sorted image, **dropping tombstones**
    /// (nothing older than the merged run exists to resurrect), then
    /// commits by rewriting the manifest — same epoch, same live counts
    /// (a merge never changes the visible view) — and GCs the inputs.
    fn merge_runs_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        let old: Vec<Run> = self.tiers.read().clone();
        if old.len() <= 1 {
            return Ok(());
        }
        let name = run_name(wal.next_run_id);
        let io: StoreResult<Run> = (|| {
            let mut merged: BTreeMap<(u8, String), Option<Bytes>> = BTreeMap::new();
            for run in &old {
                for op in run.load_all(&*wal.disk)? {
                    match op {
                        WalOp::Put { space, key, value } => {
                            merged.insert((space, key), Some(value));
                        }
                        WalOp::Delete { space, key } => {
                            merged.insert((space, key), None);
                        }
                    }
                }
            }
            merged.retain(|_, v| v.is_some());
            let entries: Vec<RunEntry<'_>> = merged
                .iter()
                .map(|((space, key), value)| RunEntry {
                    space: *space,
                    key,
                    value: value.as_deref(),
                })
                .collect();
            let data = runs::build_run(&entries);
            wal.disk.write_atomic(&name, &data)?;
            let run = Run::open(&*wal.disk, &name)?;
            let manifest = format_manifest(wal.epoch, &wal.tier_live, &[&name]);
            wal.disk.write_atomic(MANIFEST, manifest.as_bytes())?;
            Ok(run)
        })();
        let run = match io {
            Ok(run) => run,
            Err(e) => {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        };
        // Swap the in-memory view *before* GC'ing the input files: the
        // write lock waits out every reader still scanning the old runs,
        // so no reader can touch a deleted file.  (A crash between the
        // manifest commit above and these deletes only leaves unlisted
        // run files, which recovery hygiene removes.)
        *self.tiers.write() = vec![run];
        wal.next_run_id += 1;
        wal.run_merges += 1;
        for r in &old {
            if let Err(e) = wal.disk.delete(r.name()) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        }
        Ok(())
    }

    /// The compaction body; the caller holds the WAL lock, which also
    /// freezes the memtables (every writer needs that lock), so the
    /// snapshot is a consistent image while readers proceed untouched.
    fn compact_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        let next = wal.epoch + 1;
        // Stream the snapshot out of the memtables: encode in place, in
        // chunks, borrowing keys and values — no owned clone of the record
        // set is ever materialized.
        let mut snap = Vec::new();
        {
            let mem = self.mem.read();
            let mut scratch = Vec::new();
            let mut refs: Vec<WalOpRef<'_>> = Vec::with_capacity(SNAPSHOT_CHUNK);
            let mut total = 0usize;
            for (space, map) in mem.spaces.iter().enumerate() {
                for (key, value) in map {
                    // Tombstones cannot reach this path (they only exist
                    // while runs do, and runs route to `spill_locked`),
                    // but skipping them keeps the snapshot well-formed
                    // regardless.
                    let Some(value) = value else { continue };
                    refs.push(WalOpRef::Put {
                        space: space as u8,
                        key,
                        value,
                    });
                    total += 1;
                    if refs.len() == SNAPSHOT_CHUNK {
                        wal::encode_frame_into(&mut snap, &mut scratch, &refs);
                        refs.clear();
                    }
                }
            }
            if !refs.is_empty() {
                wal::encode_frame_into(&mut snap, &mut scratch, &refs);
            }
            if total == 0 {
                // Still write an (empty) snapshot so recovery has a file
                // to find.
                wal::encode_frame_into(&mut snap, &mut scratch, &[]);
            }
        }
        // Any disk failure mid-compaction leaves the on-disk epoch state
        // ambiguous from this handle's point of view: poison it so every
        // further call fails until a re-open re-establishes the truth
        // (recovery handles both the committed and the uncommitted case).
        let io: StoreResult<()> = (|| {
            wal.disk.write_atomic(&snapshot_name(next), &snap)?;
            wal.disk
                .write_atomic(MANIFEST, next.to_string().as_bytes())?;
            let old_wal = wal_name(wal.epoch);
            let old_snap = snapshot_name(wal.epoch);
            wal.disk.delete(&old_wal)?;
            wal.disk.delete(&old_snap)?;
            Ok(())
        })();
        if let Err(e) = io {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(e);
        }
        wal.epoch = next;
        wal.wal_bytes = 0;
        wal.batches_in_epoch = 0;
        Ok(())
    }

    /// Physical statistics.
    pub fn stats(&self) -> StoreStats {
        let wal = self.wal.lock();
        let (records, memtable_bytes) = {
            let mem = self.mem.read();
            (mem.live.iter().sum(), mem.approx_bytes)
        };
        StoreStats {
            epoch: wal.epoch,
            wal_bytes: wal.wal_bytes,
            batches_applied: wal.batches_applied,
            records,
            recovered_torn_tail: wal.recovered_torn_tail,
            recovered_truncated_bytes: wal.recovered_truncated_bytes,
            runs: self.tiers.read().len(),
            memtable_bytes,
            spills: wal.spills,
            run_merges: wal.run_merges,
            bloom_skips: self.metrics.bloom_skips.load(Ordering::Relaxed),
            run_probes: self.metrics.run_probes.load(Ordering::Relaxed),
        }
    }

    /// True once a disk failure has poisoned this handle; all further calls
    /// fail until the store is re-opened (recovery).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Mark the handle as failed. Used by the runtime to model a BioOpera
    /// server crash: the in-memory half dies, the disk survives.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{FaultPlan, MemDisk};

    fn open_mem() -> (MemDisk, Store<MemDisk>) {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), None).unwrap();
        (disk, store)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_d, store) = open_mem();
        store.put(Space::Instance, "p1", &b"alpha"[..]).unwrap();
        assert_eq!(
            store.get(Space::Instance, "p1").unwrap().unwrap(),
            &b"alpha"[..]
        );
        // Spaces are disjoint namespaces.
        assert_eq!(store.get(Space::Template, "p1").unwrap(), None);
        store.delete(Space::Instance, "p1").unwrap();
        assert_eq!(store.get(Space::Instance, "p1").unwrap(), None);
    }

    #[test]
    fn scan_prefix_is_ordered_and_scoped() {
        let (_d, store) = open_mem();
        for k in ["inst/2/b", "inst/1/a", "inst/1/b", "inst/10/c", "other"] {
            store
                .put(Space::Instance, k, Bytes::from(k.to_string()))
                .unwrap();
        }
        let hits = store.scan_prefix(Space::Instance, "inst/1").unwrap();
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["inst/1/a", "inst/1/b", "inst/10/c"]);
    }

    #[test]
    fn reopen_replays_wal() {
        let (disk, store) = open_mem();
        store.put(Space::Template, "t", &b"T"[..]).unwrap();
        store.put(Space::History, "h", &b"H"[..]).unwrap();
        drop(store);
        let store2 = Store::open_with(disk, None).unwrap();
        assert_eq!(
            store2.get(Space::Template, "t").unwrap().unwrap(),
            &b"T"[..]
        );
        assert_eq!(store2.get(Space::History, "h").unwrap().unwrap(), &b"H"[..]);
        assert_eq!(store2.stats().batches_applied, 2);
    }

    #[test]
    fn batch_is_atomic_across_crash() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        // Crash 10 bytes into the next append, leaving a torn frame.
        // (set_fault_plan restarts the byte accounting at zero.)
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        let mut batch = Batch::new();
        batch
            .put(Space::Instance, "a", &b"1"[..])
            .put(Space::Instance, "b", &b"2"[..]);
        assert!(matches!(
            store.apply(batch),
            Err(StoreError::SimulatedCrash)
        ));
        assert!(store.is_poisoned());
        assert!(matches!(
            store.get(Space::Instance, "a"),
            Err(StoreError::Poisoned)
        ));

        disk.reboot();
        let recovered = Store::open_with(disk, None).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        // Neither half of the batch is visible; the earlier record is.
        assert_eq!(recovered.get(Space::Instance, "a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "b").unwrap(), None);
        assert_eq!(
            recovered
                .get(Space::Instance, "committed")
                .unwrap()
                .unwrap(),
            &b"yes"[..]
        );
    }

    #[test]
    fn compact_then_recover() {
        let (disk, store) = open_mem();
        for i in 0..100 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:04}"),
                    Bytes::from(vec![i as u8]),
                )
                .unwrap();
        }
        store.delete(Space::History, "ev/0000").unwrap();
        let pre = store.stats();
        assert!(pre.wal_bytes > 0);
        store.compact().unwrap();
        let post = store.stats();
        assert_eq!(post.epoch, pre.epoch + 1);
        assert_eq!(post.wal_bytes, 0);
        assert_eq!(post.records, 99);

        // Post-compaction writes land in the new WAL.
        store.put(Space::History, "ev/9999", &b"new"[..]).unwrap();
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 100);
        assert_eq!(recovered.get(Space::History, "ev/0000").unwrap(), None);
        assert_eq!(
            recovered.get(Space::History, "ev/9999").unwrap().unwrap(),
            &b"new"[..]
        );
    }

    #[test]
    fn compact_empty_store() {
        let (disk, store) = open_mem();
        store.compact().unwrap();
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.stats().records, 0);
    }

    #[test]
    fn poison_models_server_crash() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        assert!(matches!(
            store.put(Space::Instance, "k2", &b"v"[..]),
            Err(StoreError::Poisoned)
        ));
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(
            recovered.get(Space::Instance, "k").unwrap().unwrap(),
            &b"v"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "k2").unwrap(), None);
    }

    #[test]
    fn overwrite_takes_latest_value_across_recovery() {
        let (disk, store) = open_mem();
        store.put(Space::Configuration, "node", &b"v1"[..]).unwrap();
        store.put(Space::Configuration, "node", &b"v2"[..]).unwrap();
        store.compact().unwrap();
        store.put(Space::Configuration, "node", &b"v3"[..]).unwrap();
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(
            recovered
                .get(Space::Configuration, "node")
                .unwrap()
                .unwrap(),
            &b"v3"[..]
        );
    }

    #[test]
    fn torn_tail_is_truncated_on_disk_at_open() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        assert!(store.put(Space::Instance, "lost", &b"no"[..]).is_err());
        disk.reboot();

        let recovered = Store::open_with(disk.clone(), None).unwrap();
        let stats = recovered.stats();
        assert!(stats.recovered_torn_tail);
        assert!(stats.recovered_truncated_bytes > 0);
        // The torn bytes are gone from the device, so post-recovery appends
        // continue the valid prefix…
        recovered.put(Space::Instance, "after", &b"ok"[..]).unwrap();
        drop(recovered);
        // …and a *second* open replays every post-recovery batch instead of
        // discarding them as trailing garbage (regression: recovery used to
        // leave the torn tail on disk and append after it).
        let again = Store::open_with(disk, None).unwrap();
        assert!(!again.stats().recovered_torn_tail);
        assert_eq!(
            again.get(Space::Instance, "after").unwrap().unwrap(),
            &b"ok"[..]
        );
        assert_eq!(
            again.get(Space::Instance, "committed").unwrap().unwrap(),
            &b"yes"[..]
        );
        assert_eq!(again.get(Space::Instance, "lost").unwrap(), None);
    }

    #[test]
    fn crash_at_every_compact_mutation_recovers() {
        use crate::disk::CrashEffect;
        // compact() performs 4 mutations: snapshot write, manifest write,
        // old-WAL delete, old-snapshot delete.  Crash at each, with every
        // effect, and verify recovery sees exactly the pre-compact records
        // and leaves no stale files behind.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let (disk, store) = open_mem();
                for i in 0..20 {
                    store
                        .put(Space::History, format!("ev/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.delete(Space::History, "ev/00").unwrap();
                let expected: Vec<(String, Bytes)> = store.scan_prefix(Space::History, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.compact().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open_with(disk.clone(), None).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::History, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                // Open's hygiene pass removed temp files and orphan epochs.
                let epoch = recovered.stats().epoch;
                for name in disk.list().unwrap() {
                    assert!(
                        name == MANIFEST || name == wal_name(epoch) || name == snapshot_name(epoch),
                        "mutation {idx} {effect:?}: stale file `{name}` survived recovery"
                    );
                }
                // The recovered store keeps working.
                recovered
                    .put(Space::History, "ev/99", &b"post"[..])
                    .unwrap();
                recovered.compact().unwrap();
            }
        }
    }

    #[test]
    fn poisoned_store_rejects_every_public_op_without_touching_disk() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        let mutations_before = disk.mutation_count();

        let mut batch = Batch::new();
        batch.put(Space::Instance, "x", &b"1"[..]);
        assert!(matches!(store.apply(batch), Err(StoreError::Poisoned)));
        // Even a no-op batch is rejected: the handle is dead.
        assert!(matches!(
            store.apply(Batch::new()),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.apply_many([Batch::new()]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.put(Space::Instance, "x", &b"1"[..]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.delete(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.get(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.scan_prefix(Space::Instance, ""),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.len(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.is_empty(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(store.compact(), Err(StoreError::Poisoned)));
        assert_eq!(
            disk.mutation_count(),
            mutations_before,
            "a poisoned handle must never touch the disk"
        );
        assert!(store.is_poisoned());
    }

    #[test]
    fn file_disk_end_to_end() {
        let dir = std::env::temp_dir().join(format!("bioopera-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open_with(disk, None).unwrap();
            store.put(Space::Template, "t", &b"body"[..]).unwrap();
            store.compact().unwrap();
            store.put(Space::Template, "u", &b"more"[..]).unwrap();
        }
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open_with(disk, None).unwrap();
            assert_eq!(
                store.get(Space::Template, "t").unwrap().unwrap(),
                &b"body"[..]
            );
            assert_eq!(
                store.get(Space::Template, "u").unwrap().unwrap(),
                &b"more"[..]
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_many_coalesces_batches_into_one_append() {
        let (disk, store) = open_mem();
        let before = disk.mutation_count();
        let mut b1 = Batch::new();
        b1.put(Space::Instance, "a", &b"1"[..]);
        let mut b2 = Batch::new();
        b2.put(Space::History, "h", &b"2"[..])
            .delete(Space::Instance, "missing");
        store.apply_many([b1, b2, Batch::new()]).unwrap();
        assert_eq!(
            disk.mutation_count(),
            before + 1,
            "group commit must cost exactly one disk append"
        );
        assert_eq!(store.stats().batches_applied, 2);
        assert_eq!(store.get(Space::Instance, "a").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(store.get(Space::History, "h").unwrap().unwrap(), &b"2"[..]);
        // Reopen replays both frames independently.
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.stats().batches_applied, 2);
        assert_eq!(
            recovered.get(Space::History, "h").unwrap().unwrap(),
            &b"2"[..]
        );
    }

    #[test]
    fn apply_many_crash_preserves_whole_batch_prefix() {
        // Tear the coalesced append inside the *second* frame: recovery
        // must surface batch 1 completely and batch 2 not at all.
        let mut b1 = Batch::new();
        b1.put(Space::Instance, "first", &b"1"[..]);
        let mut b2 = Batch::new();
        b2.put(Space::Instance, "second-a", &b"2"[..])
            .put(Space::Instance, "second-b", &b"3"[..]);
        let frame1_len = wal::encode_frame(&b1.ops).len() as u64;

        let (disk, store) = open_mem();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(frame1_len + 5, true)));
        assert!(store.apply_many([b1, b2]).is_err());
        assert!(store.is_poisoned());
        disk.reboot();

        let recovered = Store::open_with(disk, None).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        assert_eq!(
            recovered.get(Space::Instance, "first").unwrap().unwrap(),
            &b"1"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "second-a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "second-b").unwrap(), None);
    }

    #[test]
    fn compaction_policy_rolls_the_wal_automatically() {
        let (disk, store) = open_mem();
        store.set_compaction_policy(Some(CompactionPolicy {
            wal_bytes_threshold: 256,
            min_wal_batches: 2,
        }));
        let epoch0 = store.stats().epoch;
        for i in 0..32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:03}"),
                    Bytes::from(vec![0u8; 64]),
                )
                .unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.epoch > epoch0,
            "policy must have compacted at least once"
        );
        assert!(
            stats.wal_bytes < 256 + 2 * 128,
            "live WAL stays near the threshold, got {}",
            stats.wal_bytes
        );
        assert_eq!(stats.records, 32);
        // Everything survives recovery regardless of where the epoch rolled.
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 32);
    }

    #[test]
    fn len_agrees_with_scan_prefix_across_mutations_and_reopen() {
        let (disk, store) = open_mem();
        let check = |store: &Store<MemDisk>| {
            for space in Space::ALL {
                assert_eq!(
                    store.len(space).unwrap(),
                    store.scan_prefix(space, "").unwrap().len(),
                    "len diverged from scan in {}",
                    space.name()
                );
                assert_eq!(
                    store.is_empty(space).unwrap(),
                    store.scan_prefix(space, "").unwrap().is_empty()
                );
            }
        };
        check(&store);
        for i in 0..50 {
            store
                .put(Space::History, format!("k{i}"), Bytes::from(vec![i as u8]))
                .unwrap();
            store
                .put(Space::Instance, format!("k{}", i % 7), &b"x"[..])
                .unwrap();
            if i % 3 == 0 {
                store.delete(Space::History, format!("k{}", i / 2)).unwrap();
            }
            check(&store);
        }
        store.compact().unwrap();
        check(&store);
        store.delete(Space::Instance, "k0").unwrap();
        check(&store);
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        check(&recovered);
        assert_eq!(recovered.len(Space::Instance).unwrap(), 6);
    }

    #[test]
    fn pre_overhaul_disk_image_reopens_byte_compatibly() {
        // A literal on-disk image in the frozen format (magic B1 0A, LE
        // length, LE CRC-32, op-count payload), built byte-by-byte rather
        // than through the current encoder, exactly as the pre-overhaul
        // engine laid it down: MANIFEST at epoch 2, a snapshot with two
        // records, a WAL with one further batch (an overwrite + a delete).
        let disk = legacy_image();
        let store = Store::open_with(disk, None).unwrap();
        let stats = store.stats();
        assert_eq!(stats.epoch, 2);
        assert!(!stats.recovered_torn_tail);
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(store.get(Space::Template, "tmpl/blast").unwrap(), None);
        assert_eq!(
            store.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        assert_eq!(
            store.get(Space::Instance, "inst/7").unwrap().unwrap(),
            &b"running"[..]
        );
        // And the new engine's own output round-trips on top of it.
        store.put(Space::History, "ev/002", &b"post"[..]).unwrap();
        store.compact().unwrap();
    }

    /// Frozen WAL frame laid down byte-by-byte, exactly as the
    /// pre-overhaul engine encoded it.
    fn legacy_frame(ops: &[(u8, u8, &str, &[u8])]) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
        for (tag, space, key, value) in ops {
            payload.push(*tag);
            payload.push(*space);
            payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
            payload.extend_from_slice(key.as_bytes());
            if *tag == 0 {
                payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                payload.extend_from_slice(value);
            }
        }
        let mut out = vec![0xB1, 0x0A];
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// A literal pre-overhaul on-disk image: MANIFEST at epoch 2, a
    /// snapshot with two records, a WAL with one further batch.
    fn legacy_image() -> MemDisk {
        let disk = MemDisk::new();
        disk.write_atomic(MANIFEST, b"2").unwrap();
        disk.write_atomic(
            "snapshot-000002",
            &legacy_frame(&[
                (0, 0, "tmpl/blast", b"{\"tasks\":3}"),
                (0, 3, "ev/001", b"started"),
            ]),
        )
        .unwrap();
        let mut log = legacy_frame(&[(0, 3, "ev/001", b"finished"), (0, 1, "inst/7", b"running")]);
        log.extend_from_slice(&legacy_frame(&[(1, 0, "tmpl/blast", b"")]));
        disk.write_atomic("wal-000002", &log).unwrap();
        disk
    }

    #[test]
    fn pre_overhaul_disk_image_upgrades_to_tiered_strictly_additively() {
        // Opening the frozen image under a tiered policy must not rewrite,
        // rename or delete a single legacy byte — tiering only ever *adds*
        // file kinds (run-* plus manifest lines) once a spill happens.
        let disk = legacy_image();
        let before: std::collections::BTreeMap<String, Vec<u8>> = disk
            .list()
            .unwrap()
            .into_iter()
            .map(|n| {
                let bytes = disk.read(&n).unwrap().unwrap();
                (n, bytes)
            })
            .collect();

        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        assert_eq!(
            store.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        let after: std::collections::BTreeMap<String, Vec<u8>> = disk
            .list()
            .unwrap()
            .into_iter()
            .map(|n| {
                let bytes = disk.read(&n).unwrap().unwrap();
                (n, bytes)
            })
            .collect();
        assert_eq!(before, after, "tiered open modified a legacy file");

        // Drive it over the budget: the resulting directory may only hold
        // the frozen kinds (MANIFEST, wal-<epoch>) plus run files the
        // manifest lists, and every record — legacy and new — stays
        // readable, including through an untiered-policy reopen.
        for i in 0..60u32 {
            store
                .put(Space::History, format!("bulk/{i:04}"), vec![i as u8; 64])
                .unwrap();
        }
        assert!(store.stats().spills > 0, "workload never spilled");
        assert_only_live_files(&disk, "tiered upgrade");
        assert!(disk.list().unwrap().iter().any(|n| n.starts_with("run-")));
        drop(store);

        let reopened = Store::open_with(disk, None).unwrap();
        assert_eq!(
            reopened.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        assert_eq!(
            reopened.get(Space::Instance, "inst/7").unwrap().unwrap(),
            &b"running"[..]
        );
        assert_eq!(reopened.get(Space::Template, "tmpl/blast").unwrap(), None);
        assert_eq!(
            reopened.get(Space::History, "bulk/0059").unwrap().unwrap(),
            &[59u8; 64][..]
        );
        assert_eq!(reopened.len(Space::History).unwrap(), 61);
    }

    fn tiny_tiered() -> TieredPolicy {
        TieredPolicy {
            memtable_budget_bytes: 2048,
            run_merge_threshold: 3,
        }
    }

    /// Every file on `disk` must be the manifest, the live WAL, or a run
    /// the manifest actually lists.
    fn assert_only_live_files(disk: &MemDisk, ctx: &str) {
        let manifest = match disk.read(MANIFEST).unwrap() {
            Some(bytes) => {
                parse_manifest(bytes).unwrap_or_else(|_| panic!("{ctx}: manifest unreadable"))
            }
            None => ManifestState {
                epoch: 0,
                tier_live: [0; 4],
                run_names: Vec::new(),
            },
        };
        for name in disk.list().unwrap() {
            let ok = name == MANIFEST
                || name == wal_name(manifest.epoch)
                || (manifest.run_names.is_empty() && name == snapshot_name(manifest.epoch))
                || manifest.run_names.contains(&name);
            assert!(ok, "{ctx}: stale file `{name}` survived recovery");
        }
    }

    #[test]
    fn tiny_budget_spills_and_reads_merge_across_tiers() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        let mut model: BTreeMap<(u8, String), Vec<u8>> = BTreeMap::new();
        for i in 0..120u32 {
            let space = Space::from_u8((i % 4) as u8).unwrap();
            let key = format!("k/{:03}", i % 40);
            let value = vec![i as u8; 80];
            store
                .put(space, key.clone(), Bytes::from(value.clone()))
                .unwrap();
            model.insert((space.as_u8(), key), value);
            if i % 11 == 5 {
                let dk = format!("k/{:03}", (i + 3) % 40);
                store.delete(space, dk.clone()).unwrap();
                model.remove(&(space.as_u8(), dk));
            }
        }
        let stats = store.stats();
        assert!(stats.spills > 0, "budget never triggered a spill");
        assert!(stats.runs >= 1);
        assert!(
            stats.memtable_bytes <= tiny_tiered().memtable_budget_bytes + 512,
            "memtable grew unboundedly: {}",
            stats.memtable_bytes
        );

        let check = |store: &Store<MemDisk>| {
            for space in [
                Space::Template,
                Space::Instance,
                Space::Configuration,
                Space::History,
            ] {
                let expect: Vec<(String, Bytes)> = model
                    .range((space.as_u8(), String::new())..((space.as_u8() + 1), String::new()))
                    .map(|((_, k), v)| (k.clone(), Bytes::from(v.clone())))
                    .collect();
                assert_eq!(store.scan_prefix(space, "").unwrap(), expect, "{space:?}");
                assert_eq!(store.len(space).unwrap(), expect.len(), "{space:?}");
                for (k, v) in &expect {
                    assert_eq!(
                        store.get(space, k).unwrap().as_ref(),
                        Some(v),
                        "{space:?}/{k}"
                    );
                }
                // scan_from mid-range agrees with the model's tail.
                let tail: Vec<(String, Bytes)> = expect
                    .iter()
                    .filter(|(k, _)| k.as_str() >= "k/020")
                    .cloned()
                    .collect();
                assert_eq!(store.scan_from(space, "k/020").unwrap(), tail);
            }
        };
        check(&store);

        // Point lookups for keys no run can hold must be answered by the
        // bloom filters without touching run data.
        let skips_before = store.stats().bloom_skips;
        for i in 0..50 {
            assert_eq!(
                store.get(Space::History, &format!("absent/{i}")).unwrap(),
                None
            );
        }
        assert!(
            store.stats().bloom_skips > skips_before,
            "bloom filters never skipped a run"
        );

        // The exact same state is visible after recovery.
        let reopened = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        check(&reopened);
        assert_eq!(reopened.stats().records, store.stats().records);
        assert_only_live_files(&disk, "after clean reopen");
    }

    #[test]
    fn deletes_tombstone_runs_until_merge_drops_them() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        for i in 0..10 {
            store
                .put(
                    Space::Configuration,
                    format!("c/{i}"),
                    Bytes::from(vec![1u8; 32]),
                )
                .unwrap();
        }
        store.spill().unwrap();
        assert_eq!(store.stats().runs, 1);

        // Deleting a spilled key leaves a tombstone in the memtable …
        store.delete(Space::Configuration, "c/3").unwrap();
        assert_eq!(store.get(Space::Configuration, "c/3").unwrap(), None);
        assert_eq!(store.len(Space::Configuration).unwrap(), 9);

        // … the tombstone rides the next spill into a run …
        store.spill().unwrap();
        let runs = store.tiers.read().clone();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].tombstones, 1);

        // … and the merge folds it away for good.
        store.merge_runs().unwrap();
        let runs = store.tiers.read().clone();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].tombstones, 0);
        assert_eq!(runs[0].entries, 9);
        assert_eq!(store.get(Space::Configuration, "c/3").unwrap(), None);
        assert_eq!(store.len(Space::Configuration).unwrap(), 9);

        // A reopen agrees, and deleting a key no run may contain never
        // creates a tombstone at all.
        let reopened = Store::open_with(disk, Some(tiny_tiered())).unwrap();
        assert_eq!(reopened.len(Space::Configuration).unwrap(), 9);
        reopened.put(Space::Template, "t/x", &b"v"[..]).unwrap();
        reopened.delete(Space::Template, "t/x").unwrap();
        assert!(reopened.mem.read().spaces[Space::Template.as_u8() as usize].is_empty());
    }

    #[test]
    fn crash_at_every_spill_mutation_recovers() {
        use crate::disk::CrashEffect;
        // spill() performs 4 mutations: run write, manifest write,
        // old-WAL delete, old-snapshot delete.  Crash at each, with
        // every effect, and verify recovery sees exactly the pre-spill
        // records and leaves no stale files behind.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let disk = MemDisk::new();
                let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                for i in 0..20 {
                    store
                        .put(Space::History, format!("ev/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.delete(Space::History, "ev/00").unwrap();
                let expected: Vec<(String, Bytes)> = store.scan_prefix(Space::History, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.spill().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::History, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                assert_only_live_files(&disk, &format!("spill mutation {idx} {effect:?}"));
                // The recovered store keeps working — including the very
                // operation that crashed.
                recovered
                    .put(Space::History, "ev/99", &b"post"[..])
                    .unwrap();
                recovered.spill().unwrap();
            }
        }
    }

    #[test]
    fn crash_at_every_merge_mutation_recovers() {
        use crate::disk::CrashEffect;
        // merge_runs() over two runs performs 4 mutations: merged-run
        // write, manifest write, and one delete per input run.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let disk = MemDisk::new();
                let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                for i in 0..12 {
                    store
                        .put(Space::Instance, format!("a/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.spill().unwrap();
                for i in 0..12 {
                    if i % 3 == 0 {
                        store.delete(Space::Instance, format!("a/{i:02}")).unwrap();
                    } else {
                        store
                            .put(Space::Instance, format!("b/{i:02}"), Bytes::from(vec![i]))
                            .unwrap();
                    }
                }
                store.spill().unwrap();
                assert_eq!(store.stats().runs, 2);
                let expected: Vec<(String, Bytes)> =
                    store.scan_prefix(Space::Instance, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.merge_runs().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::Instance, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                assert_only_live_files(&disk, &format!("merge mutation {idx} {effect:?}"));
                recovered.merge_runs().unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::Instance, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged after re-merge"
                );
            }
        }
    }

    #[test]
    fn reopen_after_spill_reads_only_the_tail() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        // A long history, fully spilled, plus a short live WAL tail.
        for i in 0..2000u32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:08}"),
                    Bytes::from(vec![i as u8; 100]),
                )
                .unwrap();
        }
        store.compact().unwrap(); // everything into one run, empty WAL
        for i in 2000..2010u32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:08}"),
                    Bytes::from(vec![i as u8; 100]),
                )
                .unwrap();
        }
        drop(store);

        let total = disk.total_file_bytes();
        let before = disk.bytes_read();
        let reopened = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        let opened_bytes = disk.bytes_read() - before;
        assert_eq!(reopened.len(Space::History).unwrap(), 2010);
        // O(tail): open reads the manifest, the run's footer/meta and the
        // short WAL — never the run's data blocks.  The data region is
        // ~230 KiB here; the open must touch only a small fraction.
        assert!(
            opened_bytes < total / 4,
            "open read {opened_bytes} of {total} bytes"
        );
        // And the reopened store answers a point get with a single block
        // read, not a full-file scan.
        let before = disk.bytes_read();
        assert!(reopened
            .get(Space::History, "ev/00000042")
            .unwrap()
            .is_some());
        let get_bytes = disk.bytes_read() - before;
        assert!(
            get_bytes < 2 * crate::runs::BLOCK_TARGET_BYTES as u64,
            "point get read {get_bytes} bytes"
        );
    }

    #[test]
    fn never_spilling_tiered_store_matches_legacy_bytes() {
        // The same workload through an untiered store and a tiered store
        // whose budget is never crossed must leave byte-identical
        // directories: tiering is strictly additive on disk.
        let run = |tiered: Option<TieredPolicy>| -> MemDisk {
            let disk = MemDisk::new();
            let store = Store::open_with(disk.clone(), tiered).unwrap();
            for i in 0..30 {
                store
                    .put(
                        Space::Instance,
                        format!("i/{i:02}"),
                        Bytes::from(vec![i; 64]),
                    )
                    .unwrap();
            }
            store.delete(Space::Instance, "i/07").unwrap();
            store
                .apply_many((0..5).map(|i| {
                    let mut b = Batch::new();
                    b.put(Space::History, format!("ev/{i}"), &b"x"[..]);
                    b
                }))
                .unwrap();
            drop(store);
            // Reopen mid-workload: recovery must not diverge either.
            let store = Store::open_with(disk.clone(), tiered).unwrap();
            store.put(Space::Configuration, "c", &b"v"[..]).unwrap();
            disk
        };
        let legacy = run(None);
        let tiered = run(Some(TieredPolicy::default())); // 4 MiB budget, never hit
        let mut legacy_files = legacy.list().unwrap();
        let mut tiered_files = tiered.list().unwrap();
        legacy_files.sort();
        tiered_files.sort();
        assert_eq!(legacy_files, tiered_files);
        for name in &legacy_files {
            assert_eq!(
                legacy.read(name).unwrap(),
                tiered.read(name).unwrap(),
                "file `{name}` diverged"
            );
        }
    }

    #[test]
    fn compact_in_tiered_mode_spills_and_merges_to_one_run() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        for round in 0..3 {
            for i in 0..8 {
                store
                    .put(
                        Space::History,
                        format!("ev/{round}/{i}"),
                        Bytes::from(vec![i; 40]),
                    )
                    .unwrap();
            }
            store.spill().unwrap();
        }
        assert_eq!(store.stats().runs, 3);
        store.put(Space::History, "ev/tail", &b"t"[..]).unwrap();
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.runs, 1, "compact must fold the tier to one run");
        assert_eq!(stats.wal_bytes, 0);
        assert_eq!(store.len(Space::History).unwrap(), 25);
        // Quiescent compact is a no-op: no new run, no epoch churn.
        let epoch = store.stats().epoch;
        store.compact().unwrap();
        assert_eq!(store.stats().epoch, epoch);
        assert_eq!(store.stats().runs, 1);
    }
}
