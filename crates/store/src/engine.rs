//! The storage engine proper: record spaces, atomic batches, snapshots,
//! and the bounded-memory sorted-run tier.
//!
//! A [`Store`] keeps the hot record set in memory (a `BTreeMap` per
//! space) and makes every mutation durable through the WAL before
//! applying it.  Without a [`TieredPolicy`] the memtables hold
//! everything and [`Store::compact`] rolls the log into a snapshot —
//! the pre-tiering behavior, byte-for-byte.  With a policy installed,
//! a memtable set that outgrows its budget **spills** to an immutable
//! sorted-run file ([`crate::runs`]), and runs are organized into a
//! **leveled tier**:
//!
//! * **L0** holds freshly-spilled runs with overlapping key ranges,
//!   read newest-to-oldest (bloom filters skip runs that cannot hold
//!   the key).
//! * **L1 and deeper** hold runs with pairwise-disjoint key ranges, so
//!   a point read binary-searches the level's sparse run index and
//!   probes at most **one** run per level.
//!
//! Once `run_merge_threshold` L0 runs accumulate, a bounded compaction
//! merges them (plus only the *overlapping* L1 runs) into L1; a level
//! that outgrows its byte budget pushes one victim run (plus overlaps)
//! down a level.  Per-compaction work is therefore O(level window), not
//! O(history), and tombstones are dropped only when the merge output
//! lands in the bottom level — nothing older exists to resurrect.
//! Point reads at L1+ go through a budgeted shared [`BlockCache`] of
//! decoded blocks (blooms and sparse indexes stay pinned inside each
//! [`Run`]).
//!
//! **Windowed retention** retires a key range for good: the manifest
//! records a per-space `retain` watermark, reads treat the range as
//! absent, writes into it are dropped on apply (including WAL replay),
//! and compactions reclaim the bytes physically.  The awareness layer
//! advances the watermark over raw `ev/` records once a durable rollup
//! covers them.
//!
//! # Locking model
//!
//! The engine splits its state in three so readers never contend with
//! the disk:
//!
//! * `wal: Mutex<WalState>` — the disk handle, epoch, WAL counters and
//!   tier bookkeeping.  Only writers (`apply`, `apply_many`, `compact`,
//!   spill/merge/retention) take it.
//! * `mem: RwLock<MemTables>` — the four per-space memtables.  Readers
//!   (`get`, `scan_prefix`, `len`) take only the read lock; a write lock
//!   is held just for the in-memory application of an already-durable
//!   batch.
//! * `levels: RwLock<Levels>` — the opened sorted runs (L0 plus the
//!   disjoint deeper levels) and the retention watermarks.
//!
//! Lock order is always `wal` → `mem` → `levels`.  Writers acquire `wal`
//! first and keep holding it while they take the `mem` write lock, so
//! the order in which batches become durable in the WAL is exactly the
//! order in which they become visible — recovery can never disagree
//! with what a reader observed.  Readers hold their `mem` read guard
//! across the `levels` lookup, so a spill (which takes both write locks
//! before clearing the memtable and publishing the new run) is atomic
//! from a reader's point of view.  Frame encoding happens *before* any
//! lock is taken.

use crate::cache::{BlockCache, DEFAULT_BLOCK_CACHE_BUDGET};
use crate::disk::Disk;
use crate::error::{StoreError, StoreResult};
use crate::runs::{self, parse_run_name, run_name, Run, RunEntry};
use crate::wal::{self, WalOp, WalOpRef};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The four persistent spaces of the BioOpera data layer (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Space {
    /// Process templates as defined by users.
    Template,
    /// Processes currently executing (the navigator's durable state).
    Instance,
    /// Hardware/software configuration of the computing infrastructure.
    Configuration,
    /// Historical information about executed processes, load samples, events.
    History,
}

impl Space {
    /// All spaces, in stable order.
    pub const ALL: [Space; 4] = [
        Space::Template,
        Space::Instance,
        Space::Configuration,
        Space::History,
    ];

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Space::Template => 0,
            Space::Instance => 1,
            Space::Configuration => 2,
            Space::History => 3,
        }
    }

    /// Inverse of the WAL encoding of a space tag; rejects unknown tags.
    pub fn from_u8(v: u8) -> StoreResult<Space> {
        match v {
            0 => Ok(Space::Template),
            1 => Ok(Space::Instance),
            2 => Ok(Space::Configuration),
            3 => Ok(Space::History),
            other => Err(StoreError::Corruption(format!("unknown space {other}"))),
        }
    }

    /// Human-readable name, used in debug dumps.
    pub fn name(self) -> &'static str {
        match self {
            Space::Template => "template",
            Space::Instance => "instance",
            Space::Configuration => "configuration",
            Space::History => "history",
        }
    }
}

/// An atomic batch of mutations.  All operations in a batch become visible
/// together or not at all, across crashes.
#[derive(Debug, Default, Clone)]
pub struct Batch {
    ops: Vec<WalOp>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert/replace.
    pub fn put(
        &mut self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> &mut Self {
        self.ops.push(WalOp::Put {
            space: space.as_u8(),
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, space: Space, key: impl Into<String>) -> &mut Self {
        self.ops.push(WalOp::Delete {
            space: space.as_u8(),
            key: key.into(),
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Inclusive composite `(space, key)` bounds of one sorted run, as
/// reported by [`Store::level_ranges`].
pub type RunRange = ((u8, String), (u8, String));

/// Counters describing the store's physical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Current snapshot/WAL epoch.
    pub epoch: u64,
    /// Bytes appended to the live WAL since the last compaction.
    pub wal_bytes: u64,
    /// Batches applied since open (including replayed ones).
    pub batches_applied: u64,
    /// Total records across all spaces.
    pub records: usize,
    /// Whether the last open discarded a torn tail.
    pub recovered_torn_tail: bool,
    /// Bytes of torn tail the last open discarded.
    pub recovered_truncated_bytes: u64,
    /// Sorted runs currently on disk.
    pub runs: usize,
    /// Estimated resident bytes in the memtables (keys + values +
    /// per-entry overhead) — what a [`TieredPolicy`] budget bounds.
    pub memtable_bytes: u64,
    /// Memtable spills performed by this handle since open.
    pub spills: u64,
    /// Run merge compactions performed by this handle since open.
    pub run_merges: u64,
    /// Run lookups answered "definitely absent" by run metadata alone —
    /// key-range check, sparse index, or bloom filter; never a disk
    /// read.
    pub bloom_skips: u64,
    /// Run lookups that had to consult a data block (cached or not).
    pub run_probes: u64,
    /// Block-cache lookups answered without decoding from disk.
    pub cache_hits: u64,
    /// Block-cache lookups that decoded the block from disk.
    pub cache_misses: u64,
    /// Populated levels beneath L0 (0 = everything still in L0).
    pub levels: usize,
    /// Input bytes of the largest single leveled compaction so far —
    /// the "merge work is bounded" witness the bench asserts against
    /// total live bytes.
    pub max_merge_bytes: u64,
    /// Records logically retired by retention watermark advances.
    pub retired: u64,
}

/// When to roll the WAL into a snapshot automatically.  Installed with
/// [`Store::set_compaction_policy`]; the store then compacts itself right
/// after the commit that crosses the threshold, so month-long runs bound
/// their recovery cost without the caller sprinkling `compact()` calls.
///
/// With no policy installed (the default) the store never compacts on its
/// own — mutation sequences are exactly the caller's calls, which is what
/// the crash-point torture harness enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the live WAL exceeds this many bytes.
    pub wal_bytes_threshold: u64,
    /// …but only after at least this many batches in the current epoch,
    /// so a single oversized batch doesn't trigger a pointless roll.
    pub min_wal_batches: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            wal_bytes_threshold: 8 * 1024 * 1024,
            min_wal_batches: 4,
        }
    }
}

/// Bounded-memory tiering: once the memtables' estimated resident size
/// exceeds `memtable_budget_bytes`, the commit that crossed the budget
/// spills them to an L0 sorted-run file; once `run_merge_threshold` L0
/// runs exist they are merged — together with only the *overlapping*
/// L1 runs — into L1, and a deeper level that outgrows its byte budget
/// pushes one victim run down a level.  Tombstones are dropped only
/// when a merge output lands in the bottom level.
///
/// With no tiered policy installed (the default) the store behaves —
/// and lays bytes down — exactly as the pre-tiering engine, unless runs
/// already exist on disk from an earlier tiered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredPolicy {
    /// Spill once the memtables' estimated bytes exceed this.
    pub memtable_budget_bytes: u64,
    /// Compact L0 into L1 once this many L0 runs exist.
    pub run_merge_threshold: usize,
    /// Byte budget of L1; level *i* holds `level_base_bytes *
    /// level_growth^(i-1)`.  `0` derives a default from the memtable
    /// budget (`budget * threshold * 4`) so tiny test budgets exercise
    /// deep levels.
    pub level_base_bytes: u64,
    /// Fan-out between consecutive level budgets.
    pub level_growth: u64,
    /// Target size of each run a compaction writes; merge output is
    /// split at this boundary so one oversized run never forms.  `0`
    /// derives `max(memtable_budget_bytes, 4096)`.
    pub level_run_bytes: u64,
    /// Budget of the shared decoded-block cache
    /// ([`crate::cache::BlockCache`]); `0` disables caching.
    pub block_cache_budget: u64,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            memtable_budget_bytes: 4 * 1024 * 1024,
            run_merge_threshold: 4,
            level_base_bytes: 0,
            level_growth: 8,
            level_run_bytes: 0,
            block_cache_budget: DEFAULT_BLOCK_CACHE_BUDGET,
        }
    }
}

impl TieredPolicy {
    /// Policy requested through the environment, if any:
    /// `BIOOPERA_MEMTABLE_BUDGET` (bytes) enables tiering;
    /// `BIOOPERA_RUN_MERGE`, `BIOOPERA_LEVEL_BASE` and
    /// `BIOOPERA_BLOCK_CACHE_BUDGET` optionally override the L0
    /// threshold, the L1 byte budget and the cache budget.  This is how
    /// the test suite forces constant spilling and deep levels across
    /// the whole workspace without touching call sites.
    pub fn from_env() -> Option<TieredPolicy> {
        let budget = std::env::var("BIOOPERA_MEMTABLE_BUDGET")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        let merge = std::env::var("BIOOPERA_RUN_MERGE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(TieredPolicy::default().run_merge_threshold);
        let level_base = std::env::var("BIOOPERA_LEVEL_BASE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        let cache = std::env::var("BIOOPERA_BLOCK_CACHE_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_BLOCK_CACHE_BUDGET);
        Some(TieredPolicy {
            memtable_budget_bytes: budget,
            run_merge_threshold: merge.max(2),
            level_base_bytes: level_base,
            block_cache_budget: cache,
            ..TieredPolicy::default()
        })
    }

    /// Byte budget of level `level` (1-based; L0 is run-count-gated).
    fn level_cap(&self, level: usize) -> u64 {
        let base = if self.level_base_bytes > 0 {
            self.level_base_bytes
        } else {
            self.memtable_budget_bytes
                .saturating_mul(self.run_merge_threshold as u64)
                .saturating_mul(4)
                .max(4096)
        };
        let growth = self.level_growth.max(2);
        base.saturating_mul(growth.saturating_pow(level.saturating_sub(1) as u32))
    }

    /// Target output-run size for leveled compactions.
    fn run_target(&self) -> u64 {
        if self.level_run_bytes > 0 {
            self.level_run_bytes
        } else {
            self.memtable_budget_bytes.max(4096)
        }
    }
}

/// Everything a writer needs: the disk plus WAL/epoch accounting and
/// tier bookkeeping.
struct WalState<D: Disk> {
    disk: Arc<D>,
    epoch: u64,
    wal_bytes: u64,
    batches_applied: u64,
    batches_in_epoch: u64,
    recovered_torn_tail: bool,
    recovered_truncated_bytes: u64,
    policy: Option<CompactionPolicy>,
    tiered: Option<TieredPolicy>,
    /// Id of the next run file this handle will write.
    next_run_id: u64,
    /// Per-space live-record counts of the *runs-only* view — what the
    /// MANIFEST persists, so reopen can seed `MemTables::live` without
    /// scanning run data.  Updated only at spill time (when runs-view
    /// == full view); merges preserve it.
    tier_live: [usize; 4],
    spills: u64,
    run_merges: u64,
    /// Records logically retired by retention advances through this
    /// handle.
    retired: u64,
    /// Input bytes of the largest single compaction so far.
    merge_bytes_max: u64,
    /// Per-level round-robin compaction cursor (index 0 = L1): the
    /// composite upper bound of the last victim, so successive
    /// push-downs sweep the key space instead of re-picking one run.
    level_cursors: Vec<Option<(u8, String)>>,
}

impl<D: Disk> WalState<D> {
    fn over_threshold(&self) -> bool {
        self.policy.is_some_and(|p| {
            self.wal_bytes >= p.wal_bytes_threshold && self.batches_in_epoch >= p.min_wal_batches
        })
    }
}

/// Estimated resident cost of one memtable entry (`None` value = a
/// tombstone).  The constant overhead stands in for the `BTreeMap` node
/// and `Bytes` handle.
const ENTRY_OVERHEAD: u64 = 48;

fn entry_cost(key_len: usize, value_len: usize) -> u64 {
    key_len as u64 + value_len as u64 + ENTRY_OVERHEAD
}

/// Read-path counters that live outside the WAL lock (readers bump them
/// without serializing on writers).
#[derive(Default)]
struct TierMetrics {
    bloom_skips: AtomicU64,
    run_probes: AtomicU64,
}

/// The opened sorted-run tier plus the retention watermarks.  L0 holds
/// freshly-spilled runs with overlapping key ranges (stored oldest
/// first, read newest-to-oldest); each deeper level holds runs whose
/// composite `(space, key)` ranges are pairwise disjoint and sorted,
/// so a point read binary-searches to at most one candidate run per
/// level.  Deeper always means older data.
#[derive(Default)]
struct Levels {
    /// L0: overlapping runs, oldest first.
    l0: Vec<Run>,
    /// `deeper[i]` is level `i + 1`.
    deeper: Vec<Vec<Run>>,
    /// Per-space retention watermark `[start, below)`: keys inside are
    /// permanently retired — invisible to reads, dropped on writes
    /// (including WAL replay), physically reclaimed by compactions.
    retain: [Option<(String, String)>; 4],
}

impl Levels {
    /// True when no run exists at any level.
    fn no_runs(&self) -> bool {
        self.l0.is_empty() && self.deeper.iter().all(Vec::is_empty)
    }

    fn run_count(&self) -> usize {
        self.l0.len() + self.deeper.iter().map(Vec::len).sum::<usize>()
    }

    /// Populated levels beneath L0 (deepest non-empty level's number).
    fn depth(&self) -> usize {
        self.deeper
            .iter()
            .rposition(|l| !l.is_empty())
            .map_or(0, |i| i + 1)
    }

    /// Every run, oldest data first: deepest level upward, then L0 in
    /// spill order.  This is the fold order for merging scans (later
    /// entries overwrite earlier ones).
    fn iter_oldest_first(&self) -> impl Iterator<Item = &Run> {
        self.deeper.iter().rev().flatten().chain(self.l0.iter())
    }

    /// Is `key` inside the retention watermark of `space`?
    fn retained(&self, space: u8, key: &str) -> bool {
        self.retain
            .get(space as usize)
            .and_then(|r| r.as_ref())
            .is_some_and(|(start, below)| key >= start.as_str() && key < below.as_str())
    }

    /// Might any run surface `key`?  Bloom-only, no I/O; used to decide
    /// whether a delete needs a tombstone.
    fn may_contain_any(&self, space: u8, key: &str) -> bool {
        self.iter_oldest_first().any(|r| r.may_contain(space, key))
    }
}

/// The run at a disjoint level that could hold `(space, key)`, if any:
/// binary search on the sorted run ranges, at most one candidate.
fn level_run_for<'a>(level: &'a [Run], space: u8, key: &str) -> Option<&'a Run> {
    let target = (space, key);
    let idx = level.partition_point(|r| r.min_key().is_some_and(|mk| mk <= target));
    let run = level.get(idx.checked_sub(1)?)?;
    run.max_key().is_some_and(|mk| mk >= target).then_some(run)
}

/// Probe one run for `key`, cheapest gate first: the key-range check
/// (two composite compares — history workloads write sequential keys,
/// so sibling L0 runs rarely overlap), then the sparse index, then the
/// *block cache* — a cached block answers definitively, skipping the
/// bloom — and only a cold block pays the bloom gate before decoding.
/// `hash` memoizes the bloom hash pair across the runs of one lookup;
/// a fully warm lookup never hashes at all.  `Ok(None)` — not in this
/// run; `Ok(Some(None))` — tombstoned here; `Ok(Some(Some(v)))` — live.
/// Per-lookup counter staging: one atomic flush per lookup instead of
/// one RMW per run probed.
#[derive(Default)]
struct LookupCounts {
    skips: u64,
    probes: u64,
    /// Bloom hash memo, shared by every run one lookup touches.
    hash: Option<(u64, u64)>,
}

impl LookupCounts {
    fn flush(&self, metrics: &TierMetrics) {
        if self.skips > 0 {
            metrics.bloom_skips.fetch_add(self.skips, Ordering::Relaxed);
        }
        if self.probes > 0 {
            metrics.run_probes.fetch_add(self.probes, Ordering::Relaxed);
        }
    }
}

fn probe_run<D: Disk>(
    run: &Run,
    disk: &D,
    cache: &BlockCache,
    space: u8,
    key: &str,
    counts: &mut LookupCounts,
) -> StoreResult<Option<Option<Bytes>>> {
    let in_range = match (run.min_key(), run.max_key()) {
        (Some(lo), Some(hi)) => lo <= (space, key) && (space, key) <= hi,
        _ => false,
    };
    if !in_range {
        counts.skips += 1;
        return Ok(None);
    }
    let Some(idx) = run.block_for(space, key) else {
        counts.skips += 1; // sparse index proves absence, no disk read
        return Ok(None);
    };
    let offset = run.block_offset(idx);
    if let Some(found) = cache.lookup(run.id(), offset, key) {
        counts.probes += 1;
        return Ok(found);
    }
    let h = *counts
        .hash
        .get_or_insert_with(|| crate::bloom::hash_pair(space, key));
    if !run.may_contain_hashed(h) {
        counts.skips += 1;
        return Ok(None);
    }
    counts.probes += 1;
    cache.lookup_or_load(run.id(), offset, key, || run.load_block_at(disk, idx))
}

/// Look `key` up across the tier: L0 newest-to-oldest, then one
/// candidate run per disjoint level, shallowest (newest) first.
/// `Ok(None)` — in no run; `Ok(Some(None))` — newest occurrence is a
/// tombstone (or the key is retired); `Ok(Some(Some(v)))` — live.
fn levels_lookup<D: Disk>(
    levels: &Levels,
    disk: &D,
    metrics: &TierMetrics,
    cache: &BlockCache,
    space: u8,
    key: &str,
) -> StoreResult<Option<Option<Bytes>>> {
    if levels.retained(space, key) {
        return Ok(Some(None));
    }
    let mut counts = LookupCounts::default();
    let res = levels_lookup_inner(levels, disk, cache, space, key, &mut counts);
    counts.flush(metrics);
    res
}

fn levels_lookup_inner<D: Disk>(
    levels: &Levels,
    disk: &D,
    cache: &BlockCache,
    space: u8,
    key: &str,
    counts: &mut LookupCounts,
) -> StoreResult<Option<Option<Bytes>>> {
    for run in levels.l0.iter().rev() {
        if let Some(hit) = probe_run(run, disk, cache, space, key, counts)? {
            return Ok(Some(hit));
        }
    }
    for level in &levels.deeper {
        if let Some(run) = level_run_for(level, space, key) {
            if let Some(hit) = probe_run(run, disk, cache, space, key, counts)? {
                return Ok(Some(hit));
            }
        }
    }
    Ok(None)
}

/// The four per-space memtables.  Keys are plain `String`s so lookups
/// can borrow the caller's `&str` (no per-`get` allocation).  A `None`
/// value is a **tombstone**: the key exists in an older run but has
/// been deleted; tombstones only appear while runs exist.  `live`
/// tracks the per-space count of the merged (memtable ∪ runs) view so
/// `len` stays O(1) even with tombstones in play.
#[derive(Default)]
struct MemTables {
    spaces: [BTreeMap<String, Option<Bytes>>; 4],
    live: [usize; 4],
    /// Estimated resident bytes — what the spill budget is checked
    /// against.
    approx_bytes: u64,
}

/// What the memtable knew about a key before an op, with borrows
/// dropped so the caller can mutate.
enum Prior {
    Live(usize),
    Tombstone,
    Absent,
}

/// Apply a durable batch to the memtables, maintaining the live counts
/// against the run tier.  Writes inside a retention watermark are
/// dropped outright — the watermark only ever covers windows whose
/// durable rollup already subsumes them, and dropping here is what
/// keeps WAL replay consistent with the advanced manifest.  Fallible
/// only because resolving whether an absent key is live in a run may
/// read run blocks (bloom-gated; always infallible and free when the
/// tier is empty).
fn apply_ops_tiered<D: Disk>(
    mem: &mut MemTables,
    levels: &Levels,
    disk: &D,
    metrics: &TierMetrics,
    cache: &BlockCache,
    ops: Vec<WalOp>,
) -> StoreResult<()> {
    for op in ops {
        match op {
            WalOp::Put { space, key, value } => {
                // Unknown space tags can only come from a corrupted
                // frame that still passed its CRC; drop them rather
                // than panic — they were never addressable anyway.
                let si = space as usize;
                if si >= 4 || levels.retained(space, &key) {
                    continue;
                }
                let prior = match mem.spaces[si].get(&key) {
                    Some(Some(v)) => Prior::Live(v.len()),
                    Some(None) => Prior::Tombstone,
                    None => Prior::Absent,
                };
                match prior {
                    Prior::Live(vlen) => {
                        mem.approx_bytes -= entry_cost(key.len(), vlen);
                    }
                    Prior::Tombstone => {
                        mem.approx_bytes -= entry_cost(key.len(), 0);
                        mem.live[si] += 1;
                    }
                    Prior::Absent => {
                        let live_in_runs = !levels.no_runs()
                            && levels_lookup(levels, disk, metrics, cache, space, &key)?
                                .is_some_and(|v| v.is_some());
                        if !live_in_runs {
                            mem.live[si] += 1;
                        }
                    }
                }
                mem.approx_bytes += entry_cost(key.len(), value.len());
                mem.spaces[si].insert(key, Some(value));
            }
            WalOp::Delete { space, key } => {
                let si = space as usize;
                if si >= 4 || levels.retained(space, &key) {
                    continue;
                }
                let prior = match mem.spaces[si].get(&key) {
                    Some(Some(v)) => Prior::Live(v.len()),
                    Some(None) => Prior::Tombstone,
                    None => Prior::Absent,
                };
                match prior {
                    Prior::Live(vlen) => {
                        mem.approx_bytes -= entry_cost(key.len(), vlen);
                        mem.live[si] -= 1;
                        // A tombstone is only worth keeping if some run
                        // might still surface the key (bloom check, no
                        // I/O); otherwise plain removal suffices.
                        if levels.may_contain_any(space, &key) {
                            mem.approx_bytes += entry_cost(key.len(), 0);
                            mem.spaces[si].insert(key, None);
                        } else {
                            mem.spaces[si].remove(&key);
                        }
                    }
                    Prior::Tombstone => {} // already deleted
                    Prior::Absent => {
                        let live_in_runs = !levels.no_runs()
                            && levels_lookup(levels, disk, metrics, cache, space, &key)?
                                .is_some_and(|v| v.is_some());
                        if live_in_runs {
                            mem.live[si] -= 1;
                            mem.approx_bytes += entry_cost(key.len(), 0);
                            mem.spaces[si].insert(key, None);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// The storage engine.  Cheap to clone (shared handle); all methods are
/// thread-safe, and readers never block other readers.
pub struct Store<D: Disk> {
    wal: Arc<Mutex<WalState<D>>>,
    mem: Arc<RwLock<MemTables>>,
    levels: Arc<RwLock<Levels>>,
    disk: Arc<D>,
    metrics: Arc<TierMetrics>,
    cache: Arc<BlockCache>,
    poisoned: Arc<AtomicBool>,
}

impl<D: Disk> Clone for Store<D> {
    fn clone(&self) -> Self {
        Store {
            wal: Arc::clone(&self.wal),
            mem: Arc::clone(&self.mem),
            levels: Arc::clone(&self.levels),
            disk: Arc::clone(&self.disk),
            metrics: Arc::clone(&self.metrics),
            cache: Arc::clone(&self.cache),
            poisoned: Arc::clone(&self.poisoned),
        }
    }
}

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}")
}

fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:06}")
}

const MANIFEST: &str = "MANIFEST";

/// Records per snapshot frame: keeps individual frames reasonable and is
/// part of the on-disk format compatibility surface (snapshots written by
/// earlier engine versions used the same chunking).
const SNAPSHOT_CHUNK: usize = 1024;

/// Parsed MANIFEST contents.
struct ManifestState {
    epoch: u64,
    tier_live: [usize; 4],
    /// L0 runs, oldest first.
    run_names: Vec<String>,
    /// Deeper runs as `(level, name)`, level ≥ 1, range order within a
    /// level.
    level_runs: Vec<(usize, String)>,
    retain: [Option<(String, String)>; 4],
}

impl ManifestState {
    fn empty() -> Self {
        ManifestState {
            epoch: 0,
            tier_live: [0; 4],
            run_names: Vec::new(),
            level_runs: Vec::new(),
            retain: Default::default(),
        }
    }
}

/// Escape a retention-watermark key for the line-oriented manifest:
/// percent-encode the bytes that would break tokenization.
fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            '\t' => out.push_str("%09"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_key(s: &str) -> StoreResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(c) = rest.chars().next() {
        if c == '%' {
            let byte = rest
                .get(1..3)
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .filter(u8::is_ascii)
                .ok_or_else(|| StoreError::Corruption("manifest retain escape malformed".into()))?;
            out.push(byte as char);
            rest = &rest[3..];
        } else {
            out.push(c);
            rest = &rest[c.len_utf8()..];
        }
    }
    Ok(out)
}

/// Serialize the manifest.  With no runs and no retention the output is
/// the bare epoch digits — **byte-identical** to what every pre-tiering
/// engine version wrote, so a store that never spills produces an
/// unchanged directory.  Otherwise extra lines follow: `live t i c h`
/// (per-space live counts of the runs-only view, present whenever runs
/// are listed), `retain <space> <start> <below>` watermarks (keys
/// %-escaped), one `run <name>` line per L0 run oldest-to-newest, and
/// one `lrun <level> <name>` line per deeper run in level-then-range
/// order.
fn format_manifest(
    epoch: u64,
    tier_live: &[usize; 4],
    l0_names: &[&str],
    level_names: &[(usize, &str)],
    retain: &[Option<(String, String)>; 4],
) -> String {
    let any_runs = !l0_names.is_empty() || !level_names.is_empty();
    if !any_runs && retain.iter().all(Option::is_none) {
        return epoch.to_string();
    }
    let mut out = format!("{epoch}\n");
    if any_runs {
        out.push_str(&format!(
            "live {} {} {} {}\n",
            tier_live[0], tier_live[1], tier_live[2], tier_live[3]
        ));
    }
    for (space, range) in retain.iter().enumerate() {
        if let Some((start, below)) = range {
            out.push_str(&format!(
                "retain {space} {} {}\n",
                escape_key(start),
                escape_key(below)
            ));
        }
    }
    for name in l0_names {
        out.push_str("run ");
        out.push_str(name);
        out.push('\n');
    }
    for (level, name) in level_names {
        out.push_str(&format!("lrun {level} {name}\n"));
    }
    out
}

/// [`format_manifest`] over an in-memory [`Levels`] value.
fn manifest_for(epoch: u64, tier_live: &[usize; 4], levels: &Levels) -> String {
    let l0: Vec<&str> = levels.l0.iter().map(Run::name).collect();
    let lnames: Vec<(usize, &str)> = levels
        .deeper
        .iter()
        .enumerate()
        .flat_map(|(i, lvl)| lvl.iter().map(move |r| (i + 1, r.name())))
        .collect();
    format_manifest(epoch, tier_live, &l0, &lnames, &levels.retain)
}

fn parse_manifest(bytes: Vec<u8>) -> StoreResult<ManifestState> {
    let text = String::from_utf8(bytes)
        .map_err(|_| StoreError::Corruption("manifest not utf-8".into()))?;
    let mut lines = text.lines();
    let epoch = lines
        .next()
        .unwrap_or("")
        .trim()
        .parse::<u64>()
        .map_err(|_| StoreError::Corruption("manifest not a number".into()))?;
    let mut state = ManifestState {
        epoch,
        ..ManifestState::empty()
    };
    let mut saw_live = false;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("live ") {
            let counts: Vec<usize> = rest
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|_| StoreError::Corruption("manifest live counts malformed".into()))?;
            if counts.len() != 4 {
                return Err(StoreError::Corruption(
                    "manifest live counts malformed".into(),
                ));
            }
            state.tier_live.copy_from_slice(&counts);
            saw_live = true;
        } else if let Some(name) = line.strip_prefix("run ") {
            if parse_run_name(name).is_none() {
                return Err(StoreError::Corruption(format!(
                    "manifest lists malformed run name {name:?}"
                )));
            }
            state.run_names.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("lrun ") {
            let (level, name) = rest
                .split_once(' ')
                .and_then(|(l, n)| Some((l.parse::<usize>().ok()?, n)))
                .filter(|(l, n)| *l >= 1 && parse_run_name(n).is_some())
                .ok_or_else(|| {
                    StoreError::Corruption(format!("manifest has malformed lrun line {line:?}"))
                })?;
            state.level_runs.push((level, name.to_string()));
        } else if let Some(rest) = line.strip_prefix("retain ") {
            let fields: Vec<&str> = rest.split(' ').collect();
            let parsed = match fields.as_slice() {
                [space, start, below] => space
                    .parse::<usize>()
                    .ok()
                    .filter(|s| *s < 4)
                    .map(|s| (s, *start, *below)),
                _ => None,
            };
            let (space, start, below) = parsed.ok_or_else(|| {
                StoreError::Corruption(format!("manifest has malformed retain line {line:?}"))
            })?;
            state.retain[space] = Some((unescape_key(start)?, unescape_key(below)?));
        } else {
            return Err(StoreError::Corruption(format!(
                "manifest has unknown line {line:?}"
            )));
        }
    }
    if (!state.run_names.is_empty() || !state.level_runs.is_empty()) && !saw_live {
        return Err(StoreError::Corruption(
            "manifest lists runs but no live counts".into(),
        ));
    }
    Ok(state)
}

impl<D: Disk> Store<D> {
    /// Open a store on `disk`, running crash recovery: load the run tier
    /// and the newest committed snapshot, then replay the live WAL,
    /// discarding any torn tail left by a crash.
    ///
    /// A [`TieredPolicy`] requested through the environment
    /// (`BIOOPERA_MEMTABLE_BUDGET`) is installed automatically; use
    /// [`Store::open_with`] to pin the policy explicitly.
    pub fn open(disk: D) -> StoreResult<Self> {
        Self::open_with(disk, TieredPolicy::from_env())
    }

    /// [`Store::open`] with an explicit tiering decision (`None` keeps
    /// the engine in the pure snapshot mode unless runs already exist on
    /// disk from an earlier tiered session).
    pub fn open_with(disk: D, tiered: Option<TieredPolicy>) -> StoreResult<Self> {
        let disk = Arc::new(disk);
        let manifest = match disk.read(MANIFEST)? {
            Some(bytes) => parse_manifest(bytes)?,
            None => ManifestState::empty(),
        };
        let epoch = manifest.epoch;

        // Open every run the manifest lists (L0 oldest first, then the
        // deeper levels).  A listed run that is missing or unreadable is
        // corruption: the manifest write was the commit point that
        // promised it.
        let mut next_run_id = 0u64;
        let mut levels = Levels {
            retain: manifest.retain.clone(),
            ..Default::default()
        };
        {
            let mut open_run = |name: &str| -> StoreResult<Run> {
                let id = parse_run_name(name).expect("validated by parse_manifest");
                next_run_id = next_run_id.max(id + 1);
                Run::open(&*disk, name)
            };
            for name in &manifest.run_names {
                levels.l0.push(open_run(name)?);
            }
            for (level, name) in &manifest.level_runs {
                if levels.deeper.len() < *level {
                    levels.deeper.resize_with(*level, Vec::new);
                }
                levels.deeper[*level - 1].push(open_run(name)?);
            }
        }
        for level in &mut levels.deeper {
            level.sort_by(|a, b| a.min_key().cmp(&b.min_key()));
        }

        let metrics = Arc::new(TierMetrics::default());
        let cache = Arc::new(BlockCache::new(
            tiered.map_or(DEFAULT_BLOCK_CACHE_BUDGET, |t| t.block_cache_budget),
        ));
        // Seed the live counts from the manifest — this is what makes
        // reopen O(tail): no run data block is read to learn how many
        // records the tier holds.
        let mut mem = MemTables {
            live: manifest.tier_live,
            ..Default::default()
        };
        let mut batches_applied = 0u64;

        // Snapshots and runs are mutually exclusive on disk (a spill
        // commits the manifest and deletes the snapshot in the same
        // epoch roll), so the snapshot is only consulted when no runs
        // are listed.  Snapshots are written atomically, so a torn
        // snapshot is corruption.
        if levels.no_runs() {
            if let Some(snap) = disk.read(&snapshot_name(epoch))? {
                let replay = wal::replay_shared(Bytes::from(snap))?;
                if replay.torn_tail {
                    return Err(StoreError::Corruption("snapshot has torn frames".into()));
                }
                for batch in replay.batches {
                    batches_applied += 1;
                    apply_ops_tiered(&mut mem, &levels, &*disk, &metrics, &cache, batch)?;
                }
            }
        }

        let mut batches_in_epoch = 0u64;
        let (wal_bytes, recovered_torn_tail, recovered_truncated_bytes) =
            match disk.read(&wal_name(epoch))? {
                Some(log) => {
                    // The log image becomes one shared buffer; replay
                    // slices every value out of it without copying.
                    let log = Bytes::from(log);
                    let replay = wal::replay_shared(log.clone())?;
                    for batch in replay.batches {
                        batches_applied += 1;
                        batches_in_epoch += 1;
                        apply_ops_tiered(&mut mem, &levels, &*disk, &metrics, &cache, batch)?;
                    }
                    if replay.torn_tail {
                        // Repair: drop the torn tail *on disk*, not just in
                        // memory.  Future appends must continue at the end
                        // of the valid prefix — appending after the torn
                        // bytes would make every post-recovery batch appear
                        // to follow an invalid frame on the next open, and
                        // be discarded.
                        disk.write_atomic(&wal_name(epoch), &log.as_slice()[..replay.valid_len])?;
                    }
                    (
                        replay.valid_len as u64,
                        replay.torn_tail,
                        replay.truncated_bytes as u64,
                    )
                }
                None => (0, false, 0),
            };

        // Crash hygiene: a crash can leave partially-written temp files
        // (torn `write_atomic`), orphan snapshot/WAL files of adjacent
        // epochs (crash inside `compact`/spill between the new-state
        // write, the manifest commit and the old-epoch GC), and run
        // files the manifest never adopted (crash between the run write
        // and the manifest commit) or already dropped (crash inside the
        // merge GC).  Remove them so they can never be mistaken for live
        // state.  These deletes are themselves crash points
        // (recovery-during-recovery) and are idempotent: a crash here
        // leaves a state this same pass cleans on the next open.
        let keep_wal = wal_name(epoch);
        let keep_snap = snapshot_name(epoch);
        let listed_run = |name: &str| {
            manifest.run_names.iter().any(|r| r == name)
                || manifest.level_runs.iter().any(|(_, r)| r == name)
        };
        for name in disk.list()? {
            let stale = name.ends_with(".tmp")
                || (name.starts_with("wal-") && name != keep_wal)
                || (name.starts_with("snapshot-") && (name != keep_snap || !levels.no_runs()))
                || (name.starts_with("run-") && !listed_run(&name));
            if stale {
                disk.delete(&name)?;
            }
        }

        Ok(Store {
            wal: Arc::new(Mutex::new(WalState {
                disk: Arc::clone(&disk),
                epoch,
                wal_bytes,
                batches_applied,
                batches_in_epoch,
                recovered_torn_tail,
                recovered_truncated_bytes,
                policy: None,
                tiered,
                next_run_id,
                tier_live: manifest.tier_live,
                spills: 0,
                run_merges: 0,
                retired: 0,
                merge_bytes_max: 0,
                level_cursors: Vec::new(),
            })),
            mem: Arc::new(RwLock::new(mem)),
            levels: Arc::new(RwLock::new(levels)),
            disk,
            metrics,
            cache,
            poisoned: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Install (or clear) the automatic compaction policy.
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        self.wal.lock().policy = policy;
    }

    /// Install (or clear) the tiered-storage policy at runtime.
    pub fn set_tiered_policy(&self, policy: Option<TieredPolicy>) {
        self.wal.lock().tiered = policy;
    }

    /// The currently installed tiered-storage policy, if any.
    pub fn tiered_policy(&self) -> Option<TieredPolicy> {
        self.wal.lock().tiered
    }

    /// Apply a batch atomically: durable in the WAL first, then visible.
    pub fn apply(&self, batch: Batch) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        if batch.is_empty() {
            return Ok(());
        }
        // Encode outside the critical section: concurrent committers
        // serialize only on the disk append itself, not the CPU work.
        let frame = wal::encode_frame(&batch.ops);
        let auto = {
            let mut wal = self.wal.lock();
            let name = wal_name(wal.epoch);
            if let Err(e) = wal.disk.append(&name, &frame) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            wal.wal_bytes += frame.len() as u64;
            wal.batches_applied += 1;
            wal.batches_in_epoch += 1;
            // Still holding the WAL lock: visibility order == durable order.
            let mut mem = self.mem.write();
            let levels = self.levels.read();
            if let Err(e) = apply_ops_tiered(
                &mut mem,
                &levels,
                &*self.disk,
                &self.metrics,
                &self.cache,
                batch.ops,
            ) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            self.roll_due(&wal, &mem)
        };
        if auto {
            self.maybe_roll()?;
        }
        Ok(())
    }

    /// Group commit: apply several batches with **one** disk append.
    ///
    /// Each batch stays its own WAL frame, so per-batch atomicity across
    /// crashes is untouched — a torn write leaves a whole-batch prefix,
    /// exactly as if the batches had been applied one call at a time.
    /// What is amortized is everything else: one lock acquisition, one
    /// append syscall, one visibility pass.
    pub fn apply_many(&self, batches: impl IntoIterator<Item = Batch>) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        let mut pending: Vec<Vec<WalOp>> = Vec::new();
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            let refs: Vec<WalOpRef<'_>> = batch.ops.iter().map(WalOp::as_op_ref).collect();
            wal::encode_frame_into(&mut buf, &mut scratch, &refs);
            pending.push(batch.ops);
        }
        if pending.is_empty() {
            return Ok(());
        }
        let auto = {
            let mut wal = self.wal.lock();
            let name = wal_name(wal.epoch);
            if let Err(e) = wal.disk.append(&name, &buf) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            wal.wal_bytes += buf.len() as u64;
            wal.batches_applied += pending.len() as u64;
            wal.batches_in_epoch += pending.len() as u64;
            let mut mem = self.mem.write();
            let levels = self.levels.read();
            for ops in pending {
                if let Err(e) = apply_ops_tiered(
                    &mut mem,
                    &levels,
                    &*self.disk,
                    &self.metrics,
                    &self.cache,
                    ops,
                ) {
                    self.poisoned.store(true, Ordering::SeqCst);
                    return Err(e);
                }
            }
            self.roll_due(&wal, &mem)
        };
        if auto {
            self.maybe_roll()?;
        }
        Ok(())
    }

    /// Convenience single-record put.
    pub fn put(
        &self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> StoreResult<()> {
        let mut b = Batch::new();
        b.put(space, key, value);
        self.apply(b)
    }

    /// Convenience single-record delete.
    pub fn delete(&self, space: Space, key: impl Into<String>) -> StoreResult<()> {
        let mut b = Batch::new();
        b.delete(space, key);
        self.apply(b)
    }

    /// Fetch a record.  Memtable first (tombstones shadow the tier),
    /// then L0 newest-to-oldest (bloom-gated), then at most one run per
    /// disjoint deeper level, through the shared block cache.  The
    /// memtable guard is held across the tier lookup so a concurrent
    /// spill cannot move the key out from under the reader.
    pub fn get(&self, space: Space, key: &str) -> StoreResult<Option<Bytes>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mem = self.mem.read();
        match mem.spaces[space.as_u8() as usize].get(key) {
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Ok(None), // tombstone: deleted after the last spill
            None => {
                let levels = self.levels.read();
                if levels.no_runs() {
                    return Ok(None);
                }
                match levels_lookup(
                    &levels,
                    &*self.disk,
                    &self.metrics,
                    &self.cache,
                    space.as_u8(),
                    key,
                )? {
                    Some(Some(v)) => Ok(Some(v)),
                    _ => Ok(None),
                }
            }
        }
    }

    /// All `(key, value)` pairs in `space` whose key starts with `prefix`,
    /// in key order, merged across the memtable and the run tier: runs
    /// fold oldest-to-newest into an ordered map (newer entries
    /// overwrite), the memtable overlays last (tombstones shadow), then
    /// deletions drop out.
    pub fn scan_prefix(&self, space: Space, prefix: &str) -> StoreResult<Vec<(String, Bytes)>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mem = self.mem.read();
        let levels = self.levels.read();
        let mem_map = &mem.spaces[space.as_u8() as usize];
        if levels.no_runs() {
            // Fast path: no tier means no tombstones and no merge map
            // (and the memtable never holds retired keys).
            return Ok(mem_map
                .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
                .filter_map(|(k, v)| v.as_ref().map(|v| (k.clone(), v.clone())))
                .collect());
        }
        let mut merged: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        for run in levels.iter_oldest_first() {
            for (k, v) in run.scan_prefix(&*self.disk, space.as_u8(), prefix)? {
                merged.insert(k, v);
            }
        }
        for (k, v) in mem_map
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter(|(k, _)| !levels.retained(space.as_u8(), k))
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// All `(key, value)` pairs in `space` with `key >= start`, in key
    /// order, merged across the memtable and the run tier.  This is the
    /// tail-scan primitive: callers that persist a rollup can resume from
    /// the first un-rolled-up key without replaying their whole history.
    pub fn scan_from(&self, space: Space, start: &str) -> StoreResult<Vec<(String, Bytes)>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mem = self.mem.read();
        let levels = self.levels.read();
        let mem_map = &mem.spaces[space.as_u8() as usize];
        if levels.no_runs() {
            return Ok(mem_map
                .range::<str, _>((Bound::Included(start), Bound::Unbounded))
                .filter_map(|(k, v)| v.as_ref().map(|v| (k.clone(), v.clone())))
                .collect());
        }
        let mut merged: BTreeMap<String, Option<Bytes>> = BTreeMap::new();
        for run in levels.iter_oldest_first() {
            for (k, v) in run.scan_from(&*self.disk, space.as_u8(), start)? {
                merged.insert(k, v);
            }
        }
        for (k, v) in mem_map.range::<str, _>((Bound::Included(start), Bound::Unbounded)) {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter(|(k, _)| !levels.retained(space.as_u8(), k))
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Number of records in `space`.  O(1): maintained incrementally
    /// across the memtable ∪ runs view.
    pub fn len(&self, space: Space) -> StoreResult<usize> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        Ok(self.mem.read().live[space.as_u8() as usize])
    }

    /// True when `space` holds no records.  O(1).
    pub fn is_empty(&self, space: Space) -> StoreResult<bool> {
        Ok(self.len(space)? == 0)
    }

    /// Roll the WAL forward.  In snapshot mode (no tiered policy, no
    /// runs on disk): write `snapshot-{e+1}` atomically, bump the
    /// manifest (the commit point), start an empty `wal-{e+1}`, then
    /// garbage-collect the previous epoch's files.  In tiered mode:
    /// spill the memtables to a sorted run, then merge the whole tier
    /// down to a single run.  A crash at any point leaves either the old
    /// epoch or the new epoch fully recoverable.
    pub fn compact(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        if wal.tiered.is_some() || !self.levels.read().no_runs() {
            self.spill_locked(&mut wal)?;
            if self.levels.read().run_count() > 1 {
                self.merge_runs_locked(&mut wal)?;
            }
            Ok(())
        } else {
            self.compact_locked(&mut wal)
        }
    }

    /// Spill the memtables to a new immutable sorted-run file, rolling
    /// the WAL epoch.  No-op when there is nothing to persist and the
    /// WAL is already empty.
    pub fn spill(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        self.spill_locked(&mut wal)
    }

    /// Merge every run — all levels — into one L0 run, dropping
    /// tombstones and reclaiming retired keys.  No-op with fewer than
    /// two runs.  This is the full (unbounded) fold; steady-state
    /// maintenance uses the bounded [`Store::compact_levels`] instead.
    pub fn merge_runs(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        self.merge_runs_locked(&mut wal)
    }

    /// One round of bounded leveled maintenance: compact L0 into L1
    /// when the policy's L0 run-count threshold is reached, then push a
    /// victim run down from any level over its byte budget.  Normally
    /// triggered automatically after a spill; exposed for tests and
    /// benches.
    pub fn compact_levels(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        self.level_maintenance_locked(&mut wal)
    }

    /// Is a roll (spill or snapshot compaction) due?  Called by
    /// committers while still holding their locks; the actual roll
    /// happens in [`Store::maybe_roll`] after they release.
    fn roll_due(&self, wal: &WalState<D>, mem: &MemTables) -> bool {
        wal.tiered
            .is_some_and(|t| mem.approx_bytes > t.memtable_budget_bytes)
            || wal.over_threshold()
    }

    /// Re-check the roll condition and perform it if still due.  Called
    /// after a commit observed the condition *and released its locks*;
    /// the re-check under the lock means two racing committers trigger
    /// exactly one roll (the second sees the fresh epoch).
    fn maybe_roll(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        let budget_hit = {
            let mem = self.mem.read();
            wal.tiered
                .is_some_and(|t| mem.approx_bytes > t.memtable_budget_bytes)
        };
        if !budget_hit && !wal.over_threshold() {
            return Ok(());
        }
        if wal.tiered.is_some() || !self.levels.read().no_runs() {
            self.spill_locked(&mut wal)?;
            self.level_maintenance_locked(&mut wal)?;
            Ok(())
        } else {
            self.compact_locked(&mut wal)
        }
    }

    /// The spill body; the caller holds the WAL lock, which freezes the
    /// memtables against writers (readers proceed untouched until the
    /// final swap).  Sequence: build the run image from a frozen
    /// memtable view, write it, re-open it (self-check through the same
    /// decoder recovery will use), commit the manifest at `epoch + 1`
    /// (THE commit point — before it the new run is invisible garbage,
    /// after it the old WAL/snapshot are garbage), GC the old epoch,
    /// then atomically swap memtables for the run under both write
    /// locks.
    fn spill_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        {
            let mem = self.mem.read();
            let quiescent = mem.spaces.iter().all(BTreeMap::is_empty)
                && wal.wal_bytes == 0
                && wal.batches_in_epoch == 0;
            if quiescent {
                return Ok(());
            }
        }
        let next = wal.epoch + 1;
        let name = run_name(wal.next_run_id);
        let (data, live_now) = {
            let mem = self.mem.read();
            let mut entries = Vec::new();
            for (space, map) in mem.spaces.iter().enumerate() {
                for (key, value) in map {
                    entries.push(RunEntry {
                        space: space as u8,
                        key,
                        value: value.as_deref(),
                    });
                }
            }
            (runs::build_run(&entries), mem.live)
        };
        let io: StoreResult<Run> = (|| {
            wal.disk.write_atomic(&name, &data)?;
            let run = Run::open(&*wal.disk, &name)?;
            let manifest = {
                let levels = self.levels.read();
                let mut names: Vec<&str> = levels.l0.iter().map(Run::name).collect();
                names.push(&name);
                let lnames: Vec<(usize, &str)> = levels
                    .deeper
                    .iter()
                    .enumerate()
                    .flat_map(|(i, lvl)| lvl.iter().map(move |r| (i + 1, r.name())))
                    .collect();
                // After the spill the runs-only view IS the full view
                // (memtables drain into the run), so the live counts to
                // persist are the current merged counts.
                format_manifest(next, &live_now, &names, &lnames, &levels.retain)
            };
            wal.disk.write_atomic(MANIFEST, manifest.as_bytes())?;
            wal.disk.delete(&wal_name(wal.epoch))?;
            wal.disk.delete(&snapshot_name(wal.epoch))?;
            Ok(run)
        })();
        let run = match io {
            Ok(run) => run,
            Err(e) => {
                // Disk state is ambiguous from this handle's view;
                // poison so a re-open re-establishes the truth.
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        };
        {
            // Readers hold `mem` across their tier lookup, so taking
            // both write locks makes the swap invisible: no reader can
            // observe the drained memtable without the new run.
            let mut mem = self.mem.write();
            let mut levels = self.levels.write();
            for map in &mut mem.spaces {
                map.clear();
            }
            mem.approx_bytes = 0;
            levels.l0.push(run);
        }
        wal.epoch = next;
        wal.wal_bytes = 0;
        wal.batches_in_epoch = 0;
        wal.next_run_id += 1;
        wal.tier_live = live_now;
        wal.spills += 1;
        Ok(())
    }

    /// The full-merge body; the caller holds the WAL lock.  Folds every
    /// run at every level oldest-to-newest into one sorted L0 image,
    /// **dropping tombstones** (nothing older than the merged run
    /// exists to resurrect) and reclaiming retired keys, then commits
    /// by rewriting the manifest — same epoch, same live counts (a
    /// merge never changes the visible view) — and GCs the inputs.
    fn merge_runs_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        let (old, retain) = {
            let levels = self.levels.read();
            (
                levels.iter_oldest_first().cloned().collect::<Vec<Run>>(),
                levels.retain.clone(),
            )
        };
        if old.len() <= 1 {
            return Ok(());
        }
        let input_bytes: u64 = old.iter().map(|r| r.data_bytes).sum();
        let name = run_name(wal.next_run_id);
        let io: StoreResult<Run> = (|| {
            let mut merged: BTreeMap<(u8, String), Option<Bytes>> = BTreeMap::new();
            for run in &old {
                for op in run.load_all(&*wal.disk)? {
                    match op {
                        WalOp::Put { space, key, value } => {
                            merged.insert((space, key), Some(value));
                        }
                        WalOp::Delete { space, key } => {
                            merged.insert((space, key), None);
                        }
                    }
                }
            }
            let retired = |space: u8, key: &str| {
                retain[space as usize]
                    .as_ref()
                    .is_some_and(|(s, b)| key >= s.as_str() && key < b.as_str())
            };
            merged.retain(|(space, key), v| v.is_some() && !retired(*space, key));
            let entries: Vec<RunEntry<'_>> = merged
                .iter()
                .map(|((space, key), value)| RunEntry {
                    space: *space,
                    key,
                    value: value.as_deref(),
                })
                .collect();
            let data = runs::build_run(&entries);
            wal.disk.write_atomic(&name, &data)?;
            let run = Run::open(&*wal.disk, &name)?;
            let manifest = format_manifest(wal.epoch, &wal.tier_live, &[&name], &[], &retain);
            wal.disk.write_atomic(MANIFEST, manifest.as_bytes())?;
            Ok(run)
        })();
        let run = match io {
            Ok(run) => run,
            Err(e) => {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        };
        // Swap the in-memory view *before* GC'ing the input files: the
        // write lock waits out every reader still scanning the old runs,
        // so no reader can touch a deleted file.  (A crash between the
        // manifest commit above and these deletes only leaves unlisted
        // run files, which recovery hygiene removes.)
        {
            let mut levels = self.levels.write();
            levels.l0 = vec![run];
            levels.deeper.clear();
        }
        wal.next_run_id += 1;
        wal.run_merges += 1;
        wal.merge_bytes_max = wal.merge_bytes_max.max(input_bytes);
        wal.level_cursors.clear();
        for r in &old {
            self.cache.purge_run(r.id());
            if let Err(e) = wal.disk.delete(r.name()) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Leveled maintenance driver; the caller holds the WAL lock.
    /// Compact L0 down once it reaches the policy's run-count
    /// threshold, then cascade: any deeper level holding more bytes
    /// than its budget (and more than one run) pushes one victim run
    /// down.  Each push-down moves bytes strictly deeper, so the loop
    /// terminates; the iteration cap is a pure safety net.
    fn level_maintenance_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        let policy = match wal.tiered {
            Some(p) => p,
            None => return Ok(()),
        };
        if self.levels.read().l0.len() >= policy.run_merge_threshold {
            self.push_down_locked(wal, 0)?;
        }
        for _ in 0..64 {
            let over = {
                let levels = self.levels.read();
                (1..=levels.deeper.len()).find(|&i| {
                    let lvl = &levels.deeper[i - 1];
                    lvl.len() > 1
                        && lvl.iter().map(|r| r.data_bytes).sum::<u64>() > policy.level_cap(i)
                })
            };
            match over {
                Some(level) => self.push_down_locked(wal, level)?,
                None => return Ok(()),
            }
        }
        Ok(())
    }

    /// One bounded compaction step; the caller holds the WAL lock.
    /// `source == 0` merges every L0 run (plus only the *overlapping*
    /// L1 runs) into L1; `source >= 1` pushes one cursor-picked victim
    /// run (plus its overlaps at `source + 1`) down a level.  The merge
    /// output is split into runs of the policy's target size, so no
    /// oversized run ever forms.  Commit point is the single manifest
    /// write; inputs are GC'd after the in-memory swap.  Tombstones are
    /// dropped only when every level deeper than the output is empty —
    /// nothing older exists to resurrect.
    fn push_down_locked(&self, wal: &mut WalState<D>, source: usize) -> StoreResult<()> {
        let target = source + 1;
        let policy = wal.tiered.unwrap_or_default();
        let (sources, overlaps, bottom, mut new_levels) = {
            let levels = self.levels.read();
            let sources: Vec<Run> = if source == 0 {
                levels.l0.clone()
            } else {
                let lvl = match levels.deeper.get(source - 1) {
                    Some(l) if !l.is_empty() => l,
                    _ => return Ok(()),
                };
                // Round-robin victim: first run past the cursor, else
                // wrap to the front.
                let pick = match wal.level_cursors.get(source - 1).and_then(|c| c.as_ref()) {
                    Some((cs, ck)) => lvl
                        .iter()
                        .position(|r| r.min_key().is_some_and(|mk| mk > (*cs, ck.as_str())))
                        .unwrap_or(0),
                    None => 0,
                };
                vec![lvl[pick].clone()]
            };
            if sources.is_empty() {
                return Ok(());
            }
            let lo = sources
                .iter()
                .filter_map(Run::min_key)
                .min()
                .map(|(s, k)| (s, k.to_owned()));
            let hi = sources
                .iter()
                .filter_map(Run::max_key)
                .max()
                .map(|(s, k)| (s, k.to_owned()));
            let overlaps: Vec<Run> = match (&lo, &hi) {
                (Some(lo), Some(hi)) => levels
                    .deeper
                    .get(target - 1)
                    .map(|lvl| {
                        lvl.iter()
                            .filter(|r| match (r.min_key(), r.max_key()) {
                                (Some(rmin), Some(rmax)) => {
                                    !((rmax.0, rmax.1.to_owned()) < *lo
                                        || (rmin.0, rmin.1.to_owned()) > *hi)
                                }
                                // A degenerate empty run folds away.
                                _ => true,
                            })
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            let bottom = levels.deeper.iter().skip(target).all(Vec::is_empty);
            // The tier as it will look after this step, minus the new
            // runs (added once written).
            let mut base = Levels {
                l0: if source == 0 {
                    Vec::new()
                } else {
                    levels.l0.clone()
                },
                deeper: levels.deeper.clone(),
                retain: levels.retain.clone(),
            };
            if source >= 1 {
                base.deeper[source - 1].retain(|r| !sources.iter().any(|s| s.name() == r.name()));
            }
            if base.deeper.len() < target {
                base.deeper.resize_with(target, Vec::new);
            }
            base.deeper[target - 1].retain(|r| !overlaps.iter().any(|o| o.name() == r.name()));
            (sources, overlaps, bottom, base)
        };

        let run_target = policy.run_target();
        let io: StoreResult<(Vec<Run>, u64)> = (|| {
            let mut merged: BTreeMap<(u8, String), Option<Bytes>> = BTreeMap::new();
            let mut input_bytes = 0u64;
            // Overlaps (target level) hold strictly older data than the
            // sources, so they fold first and the sources overwrite.
            for run in overlaps.iter().chain(sources.iter()) {
                input_bytes += run.data_bytes;
                for op in run.load_all(&*wal.disk)? {
                    match op {
                        WalOp::Put { space, key, value } => {
                            merged.insert((space, key), Some(value));
                        }
                        WalOp::Delete { space, key } => {
                            merged.insert((space, key), None);
                        }
                    }
                }
            }
            let retired = |space: u8, key: &str| {
                new_levels.retain[space as usize]
                    .as_ref()
                    .is_some_and(|(s, b)| key >= s.as_str() && key < b.as_str())
            };
            merged.retain(|(space, key), v| !retired(*space, key) && (v.is_some() || !bottom));
            let mut new_runs: Vec<Run> = Vec::new();
            let mut chunk: Vec<RunEntry<'_>> = Vec::new();
            let mut chunk_bytes = 0u64;
            for ((space, key), value) in merged.iter() {
                let cost = entry_cost(key.len(), value.as_ref().map_or(0, |v| v.len()));
                if !chunk.is_empty() && chunk_bytes + cost > run_target {
                    let name = run_name(wal.next_run_id + new_runs.len() as u64);
                    wal.disk.write_atomic(&name, &runs::build_run(&chunk))?;
                    new_runs.push(Run::open(&*wal.disk, &name)?);
                    chunk.clear();
                    chunk_bytes = 0;
                }
                chunk.push(RunEntry {
                    space: *space,
                    key,
                    value: value.as_deref(),
                });
                chunk_bytes += cost;
            }
            if !chunk.is_empty() {
                let name = run_name(wal.next_run_id + new_runs.len() as u64);
                wal.disk.write_atomic(&name, &runs::build_run(&chunk))?;
                new_runs.push(Run::open(&*wal.disk, &name)?);
            }
            Ok((new_runs, input_bytes))
        })();
        let (new_runs, input_bytes) = match io {
            Ok(v) => v,
            Err(e) => {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        };
        {
            let tgt = &mut new_levels.deeper[target - 1];
            tgt.extend(new_runs.iter().cloned());
            tgt.sort_by(|a, b| a.min_key().cmp(&b.min_key()));
        }
        let manifest = manifest_for(wal.epoch, &wal.tier_live, &new_levels);
        if let Err(e) = wal.disk.write_atomic(MANIFEST, manifest.as_bytes()) {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(e);
        }
        // Publish in memory before GC'ing inputs: the write lock waits
        // out every reader still scanning the old runs.
        let cursor = sources
            .last()
            .and_then(Run::max_key)
            .map(|(s, k)| (s, k.to_owned()));
        *self.levels.write() = new_levels;
        wal.next_run_id += new_runs.len() as u64;
        wal.run_merges += 1;
        wal.merge_bytes_max = wal.merge_bytes_max.max(input_bytes);
        if source >= 1 {
            if wal.level_cursors.len() < source {
                wal.level_cursors.resize(source, None);
            }
            wal.level_cursors[source - 1] = cursor;
        }
        for r in sources.iter().chain(overlaps.iter()) {
            self.cache.purge_run(r.id());
            if let Err(e) = wal.disk.delete(r.name()) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Advance the retention watermark of `space`: every key in
    /// `[start, below)` — widened to the convex hull of any existing
    /// watermark — is permanently retired.  Retired keys are invisible
    /// to reads, writes to them are dropped on apply (including WAL
    /// replay), and compactions reclaim the bytes physically.  The
    /// single manifest write is the commit point (one disk mutation);
    /// it persists the widened watermark together with the decremented
    /// runs-view live counts.  Returns how many visible records the
    /// advance retired.
    pub fn retain_below(&self, space: Space, start: &str, below: &str) -> StoreResult<u64> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        if below <= start {
            return Ok(0);
        }
        let mut wal = self.wal.lock();
        let si = space.as_u8() as usize;
        let old = self.levels.read().retain[si].clone();
        let (new_start, new_below) = match &old {
            Some((s, b)) => (
                s.as_str().min(start).to_string(),
                b.as_str().max(below).to_string(),
            ),
            None => (start.to_string(), below.to_string()),
        };
        if old
            .as_ref()
            .is_some_and(|(s, b)| *s == new_start && *b == new_below)
        {
            return Ok(0); // already covered
        }
        // The newly retired region(s): the hull minus the old range.
        let deltas: Vec<(String, String)> = match &old {
            Some((s, b)) => {
                let mut d = Vec::new();
                if new_start.as_str() < s.as_str() {
                    d.push((new_start.clone(), s.clone()));
                }
                if new_below.as_str() > b.as_str() {
                    d.push((b.clone(), new_below.clone()));
                }
                d
            }
            None => vec![(new_start.clone(), new_below.clone())],
        };
        // Count what the advance retires, in both views: the runs-only
        // view corrects the persisted live counts, the merged view
        // (memtable overlay) corrects `len`.  Also price the memtable
        // entries to purge.
        let (merged_retired, runs_retired, purge_cost) = {
            let mem = self.mem.read();
            let levels = self.levels.read();
            let mut runs_view: BTreeMap<String, bool> = BTreeMap::new();
            for (lo, hi) in &deltas {
                for run in levels.iter_oldest_first() {
                    for (k, v) in run.scan_from(&*self.disk, space.as_u8(), lo)? {
                        if k.as_str() >= hi.as_str() {
                            break;
                        }
                        runs_view.insert(k, v.is_some());
                    }
                }
            }
            let runs_retired = runs_view.values().filter(|live| **live).count();
            let mut merged: BTreeMap<&str, bool> =
                runs_view.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let mut purge_cost = 0u64;
            for (lo, hi) in &deltas {
                for (k, v) in mem.spaces[si]
                    .range::<str, _>((Bound::Included(lo.as_str()), Bound::Excluded(hi.as_str())))
                {
                    merged.insert(k.as_str(), v.is_some());
                    purge_cost += entry_cost(k.len(), v.as_ref().map_or(0, |b| b.len()));
                }
            }
            let merged_retired = merged.values().filter(|live| **live).count();
            (merged_retired, runs_retired, purge_cost)
        };
        let mut tier_live = wal.tier_live;
        tier_live[si] -= runs_retired;
        let manifest = {
            let levels = self.levels.read();
            let mut retain = levels.retain.clone();
            retain[si] = Some((new_start.clone(), new_below.clone()));
            let l0: Vec<&str> = levels.l0.iter().map(Run::name).collect();
            let lnames: Vec<(usize, &str)> = levels
                .deeper
                .iter()
                .enumerate()
                .flat_map(|(i, lvl)| lvl.iter().map(move |r| (i + 1, r.name())))
                .collect();
            format_manifest(wal.epoch, &tier_live, &l0, &lnames, &retain)
        };
        if let Err(e) = wal.disk.write_atomic(MANIFEST, manifest.as_bytes()) {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(e);
        }
        // Committed: publish the watermark and purge the in-range
        // memtable entries under both write locks (atomic to readers).
        {
            let mut mem = self.mem.write();
            let mut levels = self.levels.write();
            for (lo, hi) in &deltas {
                let keys: Vec<String> = mem.spaces[si]
                    .range::<str, _>((Bound::Included(lo.as_str()), Bound::Excluded(hi.as_str())))
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in keys {
                    mem.spaces[si].remove(&k);
                }
            }
            mem.approx_bytes -= purge_cost;
            mem.live[si] -= merged_retired;
            levels.retain[si] = Some((new_start, new_below));
        }
        wal.tier_live = tier_live;
        wal.retired += merged_retired as u64;
        Ok(merged_retired as u64)
    }

    /// The retention watermark of `space`, if any: the `[start, below)`
    /// range of permanently retired keys.
    pub fn retention(&self, space: Space) -> Option<(String, String)> {
        self.levels.read().retain[space.as_u8() as usize].clone()
    }

    /// Introspection for invariant tests: for each level beneath L0,
    /// the composite `(space, key)` range of every run, in level order.
    pub fn level_ranges(&self) -> Vec<Vec<RunRange>> {
        self.levels
            .read()
            .deeper
            .iter()
            .map(|lvl| {
                lvl.iter()
                    .filter_map(|r| match (r.min_key(), r.max_key()) {
                        (Some(lo), Some(hi)) => {
                            Some(((lo.0, lo.1.to_owned()), (hi.0, hi.1.to_owned())))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    }

    /// The compaction body; the caller holds the WAL lock, which also
    /// freezes the memtables (every writer needs that lock), so the
    /// snapshot is a consistent image while readers proceed untouched.
    fn compact_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        let next = wal.epoch + 1;
        // Stream the snapshot out of the memtables: encode in place, in
        // chunks, borrowing keys and values — no owned clone of the record
        // set is ever materialized.
        let mut snap = Vec::new();
        {
            let mem = self.mem.read();
            let mut scratch = Vec::new();
            let mut refs: Vec<WalOpRef<'_>> = Vec::with_capacity(SNAPSHOT_CHUNK);
            let mut total = 0usize;
            for (space, map) in mem.spaces.iter().enumerate() {
                for (key, value) in map {
                    // Tombstones cannot reach this path (they only exist
                    // while runs do, and runs route to `spill_locked`),
                    // but skipping them keeps the snapshot well-formed
                    // regardless.
                    let Some(value) = value else { continue };
                    refs.push(WalOpRef::Put {
                        space: space as u8,
                        key,
                        value,
                    });
                    total += 1;
                    if refs.len() == SNAPSHOT_CHUNK {
                        wal::encode_frame_into(&mut snap, &mut scratch, &refs);
                        refs.clear();
                    }
                }
            }
            if !refs.is_empty() {
                wal::encode_frame_into(&mut snap, &mut scratch, &refs);
            }
            if total == 0 {
                // Still write an (empty) snapshot so recovery has a file
                // to find.
                wal::encode_frame_into(&mut snap, &mut scratch, &[]);
            }
        }
        // Any disk failure mid-compaction leaves the on-disk epoch state
        // ambiguous from this handle's point of view: poison it so every
        // further call fails until a re-open re-establishes the truth
        // (recovery handles both the committed and the uncommitted case).
        // An untiered compaction runs with no runs on disk, but a
        // retention watermark may still be set — preserve it (bare
        // epoch digits when there is none, for byte-compatibility).
        let manifest = {
            let levels = self.levels.read();
            format_manifest(next, &wal.tier_live, &[], &[], &levels.retain)
        };
        let io: StoreResult<()> = (|| {
            wal.disk.write_atomic(&snapshot_name(next), &snap)?;
            wal.disk.write_atomic(MANIFEST, manifest.as_bytes())?;
            let old_wal = wal_name(wal.epoch);
            let old_snap = snapshot_name(wal.epoch);
            wal.disk.delete(&old_wal)?;
            wal.disk.delete(&old_snap)?;
            Ok(())
        })();
        if let Err(e) = io {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(e);
        }
        wal.epoch = next;
        wal.wal_bytes = 0;
        wal.batches_in_epoch = 0;
        Ok(())
    }

    /// Physical statistics.
    pub fn stats(&self) -> StoreStats {
        let wal = self.wal.lock();
        let (records, memtable_bytes) = {
            let mem = self.mem.read();
            (mem.live.iter().sum(), mem.approx_bytes)
        };
        StoreStats {
            epoch: wal.epoch,
            wal_bytes: wal.wal_bytes,
            batches_applied: wal.batches_applied,
            records,
            recovered_torn_tail: wal.recovered_torn_tail,
            recovered_truncated_bytes: wal.recovered_truncated_bytes,
            runs: self.levels.read().run_count(),
            memtable_bytes,
            spills: wal.spills,
            run_merges: wal.run_merges,
            bloom_skips: self.metrics.bloom_skips.load(Ordering::Relaxed),
            run_probes: self.metrics.run_probes.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            levels: self.levels.read().depth(),
            max_merge_bytes: wal.merge_bytes_max,
            retired: wal.retired,
        }
    }

    /// True once a disk failure has poisoned this handle; all further calls
    /// fail until the store is re-opened (recovery).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Mark the handle as failed. Used by the runtime to model a BioOpera
    /// server crash: the in-memory half dies, the disk survives.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{FaultPlan, MemDisk};

    fn open_mem() -> (MemDisk, Store<MemDisk>) {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), None).unwrap();
        (disk, store)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_d, store) = open_mem();
        store.put(Space::Instance, "p1", &b"alpha"[..]).unwrap();
        assert_eq!(
            store.get(Space::Instance, "p1").unwrap().unwrap(),
            &b"alpha"[..]
        );
        // Spaces are disjoint namespaces.
        assert_eq!(store.get(Space::Template, "p1").unwrap(), None);
        store.delete(Space::Instance, "p1").unwrap();
        assert_eq!(store.get(Space::Instance, "p1").unwrap(), None);
    }

    #[test]
    fn scan_prefix_is_ordered_and_scoped() {
        let (_d, store) = open_mem();
        for k in ["inst/2/b", "inst/1/a", "inst/1/b", "inst/10/c", "other"] {
            store
                .put(Space::Instance, k, Bytes::from(k.to_string()))
                .unwrap();
        }
        let hits = store.scan_prefix(Space::Instance, "inst/1").unwrap();
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["inst/1/a", "inst/1/b", "inst/10/c"]);
    }

    #[test]
    fn reopen_replays_wal() {
        let (disk, store) = open_mem();
        store.put(Space::Template, "t", &b"T"[..]).unwrap();
        store.put(Space::History, "h", &b"H"[..]).unwrap();
        drop(store);
        let store2 = Store::open_with(disk, None).unwrap();
        assert_eq!(
            store2.get(Space::Template, "t").unwrap().unwrap(),
            &b"T"[..]
        );
        assert_eq!(store2.get(Space::History, "h").unwrap().unwrap(), &b"H"[..]);
        assert_eq!(store2.stats().batches_applied, 2);
    }

    #[test]
    fn batch_is_atomic_across_crash() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        // Crash 10 bytes into the next append, leaving a torn frame.
        // (set_fault_plan restarts the byte accounting at zero.)
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        let mut batch = Batch::new();
        batch
            .put(Space::Instance, "a", &b"1"[..])
            .put(Space::Instance, "b", &b"2"[..]);
        assert!(matches!(
            store.apply(batch),
            Err(StoreError::SimulatedCrash)
        ));
        assert!(store.is_poisoned());
        assert!(matches!(
            store.get(Space::Instance, "a"),
            Err(StoreError::Poisoned)
        ));

        disk.reboot();
        let recovered = Store::open_with(disk, None).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        // Neither half of the batch is visible; the earlier record is.
        assert_eq!(recovered.get(Space::Instance, "a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "b").unwrap(), None);
        assert_eq!(
            recovered
                .get(Space::Instance, "committed")
                .unwrap()
                .unwrap(),
            &b"yes"[..]
        );
    }

    #[test]
    fn compact_then_recover() {
        let (disk, store) = open_mem();
        for i in 0..100 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:04}"),
                    Bytes::from(vec![i as u8]),
                )
                .unwrap();
        }
        store.delete(Space::History, "ev/0000").unwrap();
        let pre = store.stats();
        assert!(pre.wal_bytes > 0);
        store.compact().unwrap();
        let post = store.stats();
        assert_eq!(post.epoch, pre.epoch + 1);
        assert_eq!(post.wal_bytes, 0);
        assert_eq!(post.records, 99);

        // Post-compaction writes land in the new WAL.
        store.put(Space::History, "ev/9999", &b"new"[..]).unwrap();
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 100);
        assert_eq!(recovered.get(Space::History, "ev/0000").unwrap(), None);
        assert_eq!(
            recovered.get(Space::History, "ev/9999").unwrap().unwrap(),
            &b"new"[..]
        );
    }

    #[test]
    fn compact_empty_store() {
        let (disk, store) = open_mem();
        store.compact().unwrap();
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.stats().records, 0);
    }

    #[test]
    fn poison_models_server_crash() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        assert!(matches!(
            store.put(Space::Instance, "k2", &b"v"[..]),
            Err(StoreError::Poisoned)
        ));
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(
            recovered.get(Space::Instance, "k").unwrap().unwrap(),
            &b"v"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "k2").unwrap(), None);
    }

    #[test]
    fn overwrite_takes_latest_value_across_recovery() {
        let (disk, store) = open_mem();
        store.put(Space::Configuration, "node", &b"v1"[..]).unwrap();
        store.put(Space::Configuration, "node", &b"v2"[..]).unwrap();
        store.compact().unwrap();
        store.put(Space::Configuration, "node", &b"v3"[..]).unwrap();
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(
            recovered
                .get(Space::Configuration, "node")
                .unwrap()
                .unwrap(),
            &b"v3"[..]
        );
    }

    #[test]
    fn torn_tail_is_truncated_on_disk_at_open() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        assert!(store.put(Space::Instance, "lost", &b"no"[..]).is_err());
        disk.reboot();

        let recovered = Store::open_with(disk.clone(), None).unwrap();
        let stats = recovered.stats();
        assert!(stats.recovered_torn_tail);
        assert!(stats.recovered_truncated_bytes > 0);
        // The torn bytes are gone from the device, so post-recovery appends
        // continue the valid prefix…
        recovered.put(Space::Instance, "after", &b"ok"[..]).unwrap();
        drop(recovered);
        // …and a *second* open replays every post-recovery batch instead of
        // discarding them as trailing garbage (regression: recovery used to
        // leave the torn tail on disk and append after it).
        let again = Store::open_with(disk, None).unwrap();
        assert!(!again.stats().recovered_torn_tail);
        assert_eq!(
            again.get(Space::Instance, "after").unwrap().unwrap(),
            &b"ok"[..]
        );
        assert_eq!(
            again.get(Space::Instance, "committed").unwrap().unwrap(),
            &b"yes"[..]
        );
        assert_eq!(again.get(Space::Instance, "lost").unwrap(), None);
    }

    #[test]
    fn crash_at_every_compact_mutation_recovers() {
        use crate::disk::CrashEffect;
        // compact() performs 4 mutations: snapshot write, manifest write,
        // old-WAL delete, old-snapshot delete.  Crash at each, with every
        // effect, and verify recovery sees exactly the pre-compact records
        // and leaves no stale files behind.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let (disk, store) = open_mem();
                for i in 0..20 {
                    store
                        .put(Space::History, format!("ev/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.delete(Space::History, "ev/00").unwrap();
                let expected: Vec<(String, Bytes)> = store.scan_prefix(Space::History, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.compact().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open_with(disk.clone(), None).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::History, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                // Open's hygiene pass removed temp files and orphan epochs.
                let epoch = recovered.stats().epoch;
                for name in disk.list().unwrap() {
                    assert!(
                        name == MANIFEST || name == wal_name(epoch) || name == snapshot_name(epoch),
                        "mutation {idx} {effect:?}: stale file `{name}` survived recovery"
                    );
                }
                // The recovered store keeps working.
                recovered
                    .put(Space::History, "ev/99", &b"post"[..])
                    .unwrap();
                recovered.compact().unwrap();
            }
        }
    }

    #[test]
    fn poisoned_store_rejects_every_public_op_without_touching_disk() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        let mutations_before = disk.mutation_count();

        let mut batch = Batch::new();
        batch.put(Space::Instance, "x", &b"1"[..]);
        assert!(matches!(store.apply(batch), Err(StoreError::Poisoned)));
        // Even a no-op batch is rejected: the handle is dead.
        assert!(matches!(
            store.apply(Batch::new()),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.apply_many([Batch::new()]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.put(Space::Instance, "x", &b"1"[..]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.delete(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.get(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.scan_prefix(Space::Instance, ""),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.len(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.is_empty(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(store.compact(), Err(StoreError::Poisoned)));
        assert_eq!(
            disk.mutation_count(),
            mutations_before,
            "a poisoned handle must never touch the disk"
        );
        assert!(store.is_poisoned());
    }

    #[test]
    fn file_disk_end_to_end() {
        let dir = std::env::temp_dir().join(format!("bioopera-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open_with(disk, None).unwrap();
            store.put(Space::Template, "t", &b"body"[..]).unwrap();
            store.compact().unwrap();
            store.put(Space::Template, "u", &b"more"[..]).unwrap();
        }
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open_with(disk, None).unwrap();
            assert_eq!(
                store.get(Space::Template, "t").unwrap().unwrap(),
                &b"body"[..]
            );
            assert_eq!(
                store.get(Space::Template, "u").unwrap().unwrap(),
                &b"more"[..]
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_many_coalesces_batches_into_one_append() {
        let (disk, store) = open_mem();
        let before = disk.mutation_count();
        let mut b1 = Batch::new();
        b1.put(Space::Instance, "a", &b"1"[..]);
        let mut b2 = Batch::new();
        b2.put(Space::History, "h", &b"2"[..])
            .delete(Space::Instance, "missing");
        store.apply_many([b1, b2, Batch::new()]).unwrap();
        assert_eq!(
            disk.mutation_count(),
            before + 1,
            "group commit must cost exactly one disk append"
        );
        assert_eq!(store.stats().batches_applied, 2);
        assert_eq!(store.get(Space::Instance, "a").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(store.get(Space::History, "h").unwrap().unwrap(), &b"2"[..]);
        // Reopen replays both frames independently.
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.stats().batches_applied, 2);
        assert_eq!(
            recovered.get(Space::History, "h").unwrap().unwrap(),
            &b"2"[..]
        );
    }

    #[test]
    fn apply_many_crash_preserves_whole_batch_prefix() {
        // Tear the coalesced append inside the *second* frame: recovery
        // must surface batch 1 completely and batch 2 not at all.
        let mut b1 = Batch::new();
        b1.put(Space::Instance, "first", &b"1"[..]);
        let mut b2 = Batch::new();
        b2.put(Space::Instance, "second-a", &b"2"[..])
            .put(Space::Instance, "second-b", &b"3"[..]);
        let frame1_len = wal::encode_frame(&b1.ops).len() as u64;

        let (disk, store) = open_mem();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(frame1_len + 5, true)));
        assert!(store.apply_many([b1, b2]).is_err());
        assert!(store.is_poisoned());
        disk.reboot();

        let recovered = Store::open_with(disk, None).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        assert_eq!(
            recovered.get(Space::Instance, "first").unwrap().unwrap(),
            &b"1"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "second-a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "second-b").unwrap(), None);
    }

    #[test]
    fn compaction_policy_rolls_the_wal_automatically() {
        let (disk, store) = open_mem();
        store.set_compaction_policy(Some(CompactionPolicy {
            wal_bytes_threshold: 256,
            min_wal_batches: 2,
        }));
        let epoch0 = store.stats().epoch;
        for i in 0..32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:03}"),
                    Bytes::from(vec![0u8; 64]),
                )
                .unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.epoch > epoch0,
            "policy must have compacted at least once"
        );
        assert!(
            stats.wal_bytes < 256 + 2 * 128,
            "live WAL stays near the threshold, got {}",
            stats.wal_bytes
        );
        assert_eq!(stats.records, 32);
        // Everything survives recovery regardless of where the epoch rolled.
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 32);
    }

    #[test]
    fn len_agrees_with_scan_prefix_across_mutations_and_reopen() {
        let (disk, store) = open_mem();
        let check = |store: &Store<MemDisk>| {
            for space in Space::ALL {
                assert_eq!(
                    store.len(space).unwrap(),
                    store.scan_prefix(space, "").unwrap().len(),
                    "len diverged from scan in {}",
                    space.name()
                );
                assert_eq!(
                    store.is_empty(space).unwrap(),
                    store.scan_prefix(space, "").unwrap().is_empty()
                );
            }
        };
        check(&store);
        for i in 0..50 {
            store
                .put(Space::History, format!("k{i}"), Bytes::from(vec![i as u8]))
                .unwrap();
            store
                .put(Space::Instance, format!("k{}", i % 7), &b"x"[..])
                .unwrap();
            if i % 3 == 0 {
                store.delete(Space::History, format!("k{}", i / 2)).unwrap();
            }
            check(&store);
        }
        store.compact().unwrap();
        check(&store);
        store.delete(Space::Instance, "k0").unwrap();
        check(&store);
        drop(store);
        let recovered = Store::open_with(disk, None).unwrap();
        check(&recovered);
        assert_eq!(recovered.len(Space::Instance).unwrap(), 6);
    }

    #[test]
    fn pre_overhaul_disk_image_reopens_byte_compatibly() {
        // A literal on-disk image in the frozen format (magic B1 0A, LE
        // length, LE CRC-32, op-count payload), built byte-by-byte rather
        // than through the current encoder, exactly as the pre-overhaul
        // engine laid it down: MANIFEST at epoch 2, a snapshot with two
        // records, a WAL with one further batch (an overwrite + a delete).
        let disk = legacy_image();
        let store = Store::open_with(disk, None).unwrap();
        let stats = store.stats();
        assert_eq!(stats.epoch, 2);
        assert!(!stats.recovered_torn_tail);
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(store.get(Space::Template, "tmpl/blast").unwrap(), None);
        assert_eq!(
            store.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        assert_eq!(
            store.get(Space::Instance, "inst/7").unwrap().unwrap(),
            &b"running"[..]
        );
        // And the new engine's own output round-trips on top of it.
        store.put(Space::History, "ev/002", &b"post"[..]).unwrap();
        store.compact().unwrap();
    }

    /// Frozen WAL frame laid down byte-by-byte, exactly as the
    /// pre-overhaul engine encoded it.
    fn legacy_frame(ops: &[(u8, u8, &str, &[u8])]) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
        for (tag, space, key, value) in ops {
            payload.push(*tag);
            payload.push(*space);
            payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
            payload.extend_from_slice(key.as_bytes());
            if *tag == 0 {
                payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                payload.extend_from_slice(value);
            }
        }
        let mut out = vec![0xB1, 0x0A];
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// A literal pre-overhaul on-disk image: MANIFEST at epoch 2, a
    /// snapshot with two records, a WAL with one further batch.
    fn legacy_image() -> MemDisk {
        let disk = MemDisk::new();
        disk.write_atomic(MANIFEST, b"2").unwrap();
        disk.write_atomic(
            "snapshot-000002",
            &legacy_frame(&[
                (0, 0, "tmpl/blast", b"{\"tasks\":3}"),
                (0, 3, "ev/001", b"started"),
            ]),
        )
        .unwrap();
        let mut log = legacy_frame(&[(0, 3, "ev/001", b"finished"), (0, 1, "inst/7", b"running")]);
        log.extend_from_slice(&legacy_frame(&[(1, 0, "tmpl/blast", b"")]));
        disk.write_atomic("wal-000002", &log).unwrap();
        disk
    }

    #[test]
    fn pre_overhaul_disk_image_upgrades_to_tiered_strictly_additively() {
        // Opening the frozen image under a tiered policy must not rewrite,
        // rename or delete a single legacy byte — tiering only ever *adds*
        // file kinds (run-* plus manifest lines) once a spill happens.
        let disk = legacy_image();
        let before: std::collections::BTreeMap<String, Vec<u8>> = disk
            .list()
            .unwrap()
            .into_iter()
            .map(|n| {
                let bytes = disk.read(&n).unwrap().unwrap();
                (n, bytes)
            })
            .collect();

        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        assert_eq!(
            store.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        let after: std::collections::BTreeMap<String, Vec<u8>> = disk
            .list()
            .unwrap()
            .into_iter()
            .map(|n| {
                let bytes = disk.read(&n).unwrap().unwrap();
                (n, bytes)
            })
            .collect();
        assert_eq!(before, after, "tiered open modified a legacy file");

        // Drive it over the budget: the resulting directory may only hold
        // the frozen kinds (MANIFEST, wal-<epoch>) plus run files the
        // manifest lists, and every record — legacy and new — stays
        // readable, including through an untiered-policy reopen.
        for i in 0..60u32 {
            store
                .put(Space::History, format!("bulk/{i:04}"), vec![i as u8; 64])
                .unwrap();
        }
        assert!(store.stats().spills > 0, "workload never spilled");
        assert_only_live_files(&disk, "tiered upgrade");
        assert!(disk.list().unwrap().iter().any(|n| n.starts_with("run-")));
        drop(store);

        let reopened = Store::open_with(disk, None).unwrap();
        assert_eq!(
            reopened.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        assert_eq!(
            reopened.get(Space::Instance, "inst/7").unwrap().unwrap(),
            &b"running"[..]
        );
        assert_eq!(reopened.get(Space::Template, "tmpl/blast").unwrap(), None);
        assert_eq!(
            reopened.get(Space::History, "bulk/0059").unwrap().unwrap(),
            &[59u8; 64][..]
        );
        assert_eq!(reopened.len(Space::History).unwrap(), 61);
    }

    fn tiny_tiered() -> TieredPolicy {
        TieredPolicy {
            memtable_budget_bytes: 2048,
            run_merge_threshold: 3,
            ..TieredPolicy::default()
        }
    }

    /// Every file on `disk` must be the manifest, the live WAL, or a run
    /// the manifest actually lists.
    fn assert_only_live_files(disk: &MemDisk, ctx: &str) {
        let manifest = match disk.read(MANIFEST).unwrap() {
            Some(bytes) => {
                parse_manifest(bytes).unwrap_or_else(|_| panic!("{ctx}: manifest unreadable"))
            }
            None => ManifestState::empty(),
        };
        let no_runs = manifest.run_names.is_empty() && manifest.level_runs.is_empty();
        for name in disk.list().unwrap() {
            let ok = name == MANIFEST
                || name == wal_name(manifest.epoch)
                || (no_runs && name == snapshot_name(manifest.epoch))
                || manifest.run_names.contains(&name)
                || manifest.level_runs.iter().any(|(_, n)| *n == name);
            assert!(ok, "{ctx}: stale file `{name}` survived recovery");
        }
    }

    #[test]
    fn tiny_budget_spills_and_reads_merge_across_tiers() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        let mut model: BTreeMap<(u8, String), Vec<u8>> = BTreeMap::new();
        for i in 0..120u32 {
            let space = Space::from_u8((i % 4) as u8).unwrap();
            let key = format!("k/{:03}", i % 40);
            let value = vec![i as u8; 80];
            store
                .put(space, key.clone(), Bytes::from(value.clone()))
                .unwrap();
            model.insert((space.as_u8(), key), value);
            if i % 11 == 5 {
                let dk = format!("k/{:03}", (i + 3) % 40);
                store.delete(space, dk.clone()).unwrap();
                model.remove(&(space.as_u8(), dk));
            }
        }
        let stats = store.stats();
        assert!(stats.spills > 0, "budget never triggered a spill");
        assert!(stats.runs >= 1);
        assert!(
            stats.memtable_bytes <= tiny_tiered().memtable_budget_bytes + 512,
            "memtable grew unboundedly: {}",
            stats.memtable_bytes
        );

        let check = |store: &Store<MemDisk>| {
            for space in [
                Space::Template,
                Space::Instance,
                Space::Configuration,
                Space::History,
            ] {
                let expect: Vec<(String, Bytes)> = model
                    .range((space.as_u8(), String::new())..((space.as_u8() + 1), String::new()))
                    .map(|((_, k), v)| (k.clone(), Bytes::from(v.clone())))
                    .collect();
                assert_eq!(store.scan_prefix(space, "").unwrap(), expect, "{space:?}");
                assert_eq!(store.len(space).unwrap(), expect.len(), "{space:?}");
                for (k, v) in &expect {
                    assert_eq!(
                        store.get(space, k).unwrap().as_ref(),
                        Some(v),
                        "{space:?}/{k}"
                    );
                }
                // scan_from mid-range agrees with the model's tail.
                let tail: Vec<(String, Bytes)> = expect
                    .iter()
                    .filter(|(k, _)| k.as_str() >= "k/020")
                    .cloned()
                    .collect();
                assert_eq!(store.scan_from(space, "k/020").unwrap(), tail);
            }
        };
        check(&store);

        // Point lookups for keys no run holds must be answered without
        // reading run data from disk: range/bloom gates skip runs, and
        // any block consulted must already sit in the cache.
        let before = store.stats();
        let reads_before = disk.bytes_read();
        for i in 0..50 {
            assert_eq!(
                store.get(Space::History, &format!("absent/{i}")).unwrap(),
                None
            );
        }
        let after = store.stats();
        assert!(
            after.bloom_skips > before.bloom_skips || after.cache_hits > before.cache_hits,
            "absent keys consulted neither the gates nor the cache"
        );
        assert_eq!(
            disk.bytes_read(),
            reads_before,
            "an absent-key lookup read run data from disk"
        );

        // The exact same state is visible after recovery.
        let reopened = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        check(&reopened);
        assert_eq!(reopened.stats().records, store.stats().records);
        assert_only_live_files(&disk, "after clean reopen");
    }

    #[test]
    fn deletes_tombstone_runs_until_merge_drops_them() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        for i in 0..10 {
            store
                .put(
                    Space::Configuration,
                    format!("c/{i}"),
                    Bytes::from(vec![1u8; 32]),
                )
                .unwrap();
        }
        store.spill().unwrap();
        assert_eq!(store.stats().runs, 1);

        // Deleting a spilled key leaves a tombstone in the memtable …
        store.delete(Space::Configuration, "c/3").unwrap();
        assert_eq!(store.get(Space::Configuration, "c/3").unwrap(), None);
        assert_eq!(store.len(Space::Configuration).unwrap(), 9);

        // … the tombstone rides the next spill into a run …
        store.spill().unwrap();
        let runs = store.levels.read().l0.clone();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].tombstones, 1);

        // … and the merge folds it away for good.
        store.merge_runs().unwrap();
        let runs = store.levels.read().l0.clone();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].tombstones, 0);
        assert_eq!(runs[0].entries, 9);
        assert_eq!(store.get(Space::Configuration, "c/3").unwrap(), None);
        assert_eq!(store.len(Space::Configuration).unwrap(), 9);

        // A reopen agrees, and deleting a key no run may contain never
        // creates a tombstone at all.
        let reopened = Store::open_with(disk, Some(tiny_tiered())).unwrap();
        assert_eq!(reopened.len(Space::Configuration).unwrap(), 9);
        reopened.put(Space::Template, "t/x", &b"v"[..]).unwrap();
        reopened.delete(Space::Template, "t/x").unwrap();
        assert!(reopened.mem.read().spaces[Space::Template.as_u8() as usize].is_empty());
    }

    #[test]
    fn crash_at_every_spill_mutation_recovers() {
        use crate::disk::CrashEffect;
        // spill() performs 4 mutations: run write, manifest write,
        // old-WAL delete, old-snapshot delete.  Crash at each, with
        // every effect, and verify recovery sees exactly the pre-spill
        // records and leaves no stale files behind.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let disk = MemDisk::new();
                let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                for i in 0..20 {
                    store
                        .put(Space::History, format!("ev/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.delete(Space::History, "ev/00").unwrap();
                let expected: Vec<(String, Bytes)> = store.scan_prefix(Space::History, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.spill().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::History, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                assert_only_live_files(&disk, &format!("spill mutation {idx} {effect:?}"));
                // The recovered store keeps working — including the very
                // operation that crashed.
                recovered
                    .put(Space::History, "ev/99", &b"post"[..])
                    .unwrap();
                recovered.spill().unwrap();
            }
        }
    }

    #[test]
    fn crash_at_every_merge_mutation_recovers() {
        use crate::disk::CrashEffect;
        // merge_runs() over two runs performs 4 mutations: merged-run
        // write, manifest write, and one delete per input run.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let disk = MemDisk::new();
                let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                for i in 0..12 {
                    store
                        .put(Space::Instance, format!("a/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.spill().unwrap();
                for i in 0..12 {
                    if i % 3 == 0 {
                        store.delete(Space::Instance, format!("a/{i:02}")).unwrap();
                    } else {
                        store
                            .put(Space::Instance, format!("b/{i:02}"), Bytes::from(vec![i]))
                            .unwrap();
                    }
                }
                store.spill().unwrap();
                assert_eq!(store.stats().runs, 2);
                let expected: Vec<(String, Bytes)> =
                    store.scan_prefix(Space::Instance, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.merge_runs().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::Instance, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                assert_only_live_files(&disk, &format!("merge mutation {idx} {effect:?}"));
                recovered.merge_runs().unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::Instance, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged after re-merge"
                );
            }
        }
    }

    #[test]
    fn reopen_after_spill_reads_only_the_tail() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        // A long history, fully spilled, plus a short live WAL tail.
        for i in 0..2000u32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:08}"),
                    Bytes::from(vec![i as u8; 100]),
                )
                .unwrap();
        }
        store.compact().unwrap(); // everything into one run, empty WAL
        for i in 2000..2010u32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:08}"),
                    Bytes::from(vec![i as u8; 100]),
                )
                .unwrap();
        }
        drop(store);

        let total = disk.total_file_bytes();
        let before = disk.bytes_read();
        let reopened = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        let opened_bytes = disk.bytes_read() - before;
        assert_eq!(reopened.len(Space::History).unwrap(), 2010);
        // O(tail): open reads the manifest, the run's footer/meta and the
        // short WAL — never the run's data blocks.  The data region is
        // ~230 KiB here; the open must touch only a small fraction.
        assert!(
            opened_bytes < total / 4,
            "open read {opened_bytes} of {total} bytes"
        );
        // And the reopened store answers a point get with a single block
        // read, not a full-file scan.
        let before = disk.bytes_read();
        assert!(reopened
            .get(Space::History, "ev/00000042")
            .unwrap()
            .is_some());
        let get_bytes = disk.bytes_read() - before;
        assert!(
            get_bytes < 2 * crate::runs::BLOCK_TARGET_BYTES as u64,
            "point get read {get_bytes} bytes"
        );
    }

    #[test]
    fn never_spilling_tiered_store_matches_legacy_bytes() {
        // The same workload through an untiered store and a tiered store
        // whose budget is never crossed must leave byte-identical
        // directories: tiering is strictly additive on disk.
        let run = |tiered: Option<TieredPolicy>| -> MemDisk {
            let disk = MemDisk::new();
            let store = Store::open_with(disk.clone(), tiered).unwrap();
            for i in 0..30 {
                store
                    .put(
                        Space::Instance,
                        format!("i/{i:02}"),
                        Bytes::from(vec![i; 64]),
                    )
                    .unwrap();
            }
            store.delete(Space::Instance, "i/07").unwrap();
            store
                .apply_many((0..5).map(|i| {
                    let mut b = Batch::new();
                    b.put(Space::History, format!("ev/{i}"), &b"x"[..]);
                    b
                }))
                .unwrap();
            drop(store);
            // Reopen mid-workload: recovery must not diverge either.
            let store = Store::open_with(disk.clone(), tiered).unwrap();
            store.put(Space::Configuration, "c", &b"v"[..]).unwrap();
            disk
        };
        let legacy = run(None);
        let tiered = run(Some(TieredPolicy::default())); // 4 MiB budget, never hit
        let mut legacy_files = legacy.list().unwrap();
        let mut tiered_files = tiered.list().unwrap();
        legacy_files.sort();
        tiered_files.sort();
        assert_eq!(legacy_files, tiered_files);
        for name in &legacy_files {
            assert_eq!(
                legacy.read(name).unwrap(),
                tiered.read(name).unwrap(),
                "file `{name}` diverged"
            );
        }
    }

    #[test]
    fn compact_in_tiered_mode_spills_and_merges_to_one_run() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        for round in 0..3 {
            for i in 0..8 {
                store
                    .put(
                        Space::History,
                        format!("ev/{round}/{i}"),
                        Bytes::from(vec![i; 40]),
                    )
                    .unwrap();
            }
            store.spill().unwrap();
        }
        assert_eq!(store.stats().runs, 3);
        store.put(Space::History, "ev/tail", &b"t"[..]).unwrap();
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.runs, 1, "compact must fold the tier to one run");
        assert_eq!(stats.wal_bytes, 0);
        assert_eq!(store.len(Space::History).unwrap(), 25);
        // Quiescent compact is a no-op: no new run, no epoch churn.
        let epoch = store.stats().epoch;
        store.compact().unwrap();
        assert_eq!(store.stats().epoch, epoch);
        assert_eq!(store.stats().runs, 1);
    }

    /// Thresholds small enough that a few hundred records cascade past L1.
    fn tiny_leveled() -> TieredPolicy {
        TieredPolicy {
            memtable_budget_bytes: 512,
            run_merge_threshold: 2,
            level_base_bytes: 1024,
            level_growth: 2,
            level_run_bytes: 768,
            ..TieredPolicy::default()
        }
    }

    #[test]
    fn leveled_push_down_keeps_levels_disjoint_and_model_equivalent() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_leveled())).unwrap();
        let mut model: BTreeMap<(u8, String), Vec<u8>> = BTreeMap::new();
        for i in 0..300u32 {
            let space = if i % 3 == 0 {
                Space::History
            } else {
                Space::Instance
            };
            let key = format!("k/{:03}", (i * 7) % 120);
            let value = vec![i as u8; 90];
            store
                .put(space, key.clone(), Bytes::from(value.clone()))
                .unwrap();
            model.insert((space.as_u8(), key), value);
            if i % 13 == 4 {
                let dk = format!("k/{:03}", (i * 7 + 7) % 120);
                store.delete(space, dk.clone()).unwrap();
                model.remove(&(space.as_u8(), dk));
            }
        }
        let stats = store.stats();
        assert!(stats.spills > 2, "workload never spilled");
        assert!(stats.run_merges > 0, "workload never pushed a run down");
        let ranges = store.level_ranges();
        assert!(
            ranges.iter().any(|level| !level.is_empty()),
            "no run ever reached L1+"
        );
        // Every deeper level holds runs with valid, sorted, pairwise
        // disjoint composite-key ranges.
        for (li, level) in ranges.iter().enumerate() {
            for (lo, hi) in level {
                assert!(lo <= hi, "L{}: inverted range", li + 1);
            }
            for pair in level.windows(2) {
                assert!(
                    pair[0].1 < pair[1].0,
                    "L{}: runs overlap or are unsorted: {:?} vs {:?}",
                    li + 1,
                    pair[0],
                    pair[1]
                );
            }
        }

        let check = |store: &Store<MemDisk>| {
            for space in [Space::History, Space::Instance] {
                let expect: Vec<(String, Bytes)> = model
                    .range((space.as_u8(), String::new())..((space.as_u8() + 1), String::new()))
                    .map(|((_, k), v)| (k.clone(), Bytes::from(v.clone())))
                    .collect();
                assert_eq!(store.scan_prefix(space, "").unwrap(), expect, "{space:?}");
                for (k, v) in &expect {
                    assert_eq!(
                        store.get(space, k).unwrap().as_ref(),
                        Some(v),
                        "{space:?}/{k}"
                    );
                }
            }
        };
        check(&store);
        drop(store);
        let reopened = Store::open_with(disk.clone(), Some(tiny_leveled())).unwrap();
        check(&reopened);
        assert_only_live_files(&disk, "leveled reopen");
    }

    #[test]
    fn retention_drops_covered_prefix_and_survives_reopen() {
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        for i in 0..30u32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:04}"),
                    Bytes::from(vec![i as u8; 60]),
                )
                .unwrap();
        }
        store.put(Space::Instance, "keepme", &b"v"[..]).unwrap();
        store.spill().unwrap();
        assert_eq!(store.len(Space::History).unwrap(), 30);

        let retired = store
            .retain_below(Space::History, "ev/", "ev/0020")
            .unwrap();
        assert_eq!(retired, 20, "exactly the covered records retire");
        assert_eq!(store.len(Space::History).unwrap(), 10);
        assert_eq!(store.get(Space::History, "ev/0005").unwrap(), None);
        assert_eq!(
            store.get(Space::History, "ev/0025").unwrap().unwrap(),
            &[25u8; 60][..]
        );
        assert_eq!(
            store.retention(Space::History),
            Some(("ev/".to_string(), "ev/0020".to_string()))
        );
        // Other spaces are untouched.
        assert_eq!(
            store.get(Space::Instance, "keepme").unwrap().unwrap(),
            &b"v"[..]
        );
        // Scans start past the watermark.
        let scanned = store.scan_prefix(Space::History, "ev/").unwrap();
        assert_eq!(scanned.len(), 10);
        assert_eq!(scanned[0].0, "ev/0020");

        // A write below the watermark is accepted but never becomes
        // visible — the retention contract is a floor, not a suggestion.
        store
            .put(Space::History, "ev/0003", &b"zombie"[..])
            .unwrap();
        assert_eq!(store.get(Space::History, "ev/0003").unwrap(), None);
        assert_eq!(store.len(Space::History).unwrap(), 10);

        // Re-retaining an already-covered window is a no-op.
        assert_eq!(
            store
                .retain_below(Space::History, "ev/", "ev/0010")
                .unwrap(),
            0
        );

        drop(store);
        let reopened = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        assert_eq!(
            reopened.retention(Space::History),
            Some(("ev/".to_string(), "ev/0020".to_string()))
        );
        assert_eq!(reopened.len(Space::History).unwrap(), 10);
        assert_eq!(reopened.get(Space::History, "ev/0003").unwrap(), None);
        assert_eq!(reopened.get(Space::History, "ev/0005").unwrap(), None);
        assert_eq!(
            reopened.get(Space::History, "ev/0025").unwrap().unwrap(),
            &[25u8; 60][..]
        );
        assert_only_live_files(&disk, "after retention reopen");
    }

    #[test]
    fn crash_at_retention_manifest_recovers_to_old_or_new_watermark() {
        use crate::disk::CrashEffect;
        // retain_below commits through exactly one disk mutation (the
        // manifest rewrite).  Crash on it with every effect: recovery
        // must land on either the old state or the new one, never a mix.
        for effect in [
            CrashEffect::Drop,
            CrashEffect::Torn { keep: 9 },
            CrashEffect::AfterApply,
        ] {
            let disk = MemDisk::new();
            let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
            for i in 0..20u32 {
                store
                    .put(
                        Space::History,
                        format!("ev/{i:04}"),
                        Bytes::from(vec![i as u8; 60]),
                    )
                    .unwrap();
            }
            store.spill().unwrap();

            disk.set_fault_plan(Some(FaultPlan::at_mutation(0, effect)));
            assert!(
                store
                    .retain_below(Space::History, "ev/", "ev/0010")
                    .is_err(),
                "{effect:?}: crash must surface"
            );
            assert!(store.is_poisoned(), "{effect:?}");
            disk.reboot();

            let recovered = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
            match recovered.retention(Space::History) {
                None => {
                    // Old state: nothing retired.
                    assert_eq!(recovered.len(Space::History).unwrap(), 20, "{effect:?}");
                    assert!(
                        recovered.get(Space::History, "ev/0005").unwrap().is_some(),
                        "{effect:?}"
                    );
                }
                Some((start, below)) => {
                    // New state: the full watermark, with every covered
                    // record invisible.
                    assert_eq!(
                        (start.as_str(), below.as_str()),
                        ("ev/", "ev/0010"),
                        "{effect:?}"
                    );
                    assert_eq!(recovered.len(Space::History).unwrap(), 10, "{effect:?}");
                    assert_eq!(
                        recovered.get(Space::History, "ev/0005").unwrap(),
                        None,
                        "{effect:?}"
                    );
                }
            }
            assert!(
                recovered.get(Space::History, "ev/0015").unwrap().is_some(),
                "{effect:?}: record above the watermark vanished"
            );
            assert_only_live_files(&disk, "retention crash recovery");
            // The recovered store keeps working, including a clean retry.
            recovered
                .retain_below(Space::History, "ev/", "ev/0010")
                .unwrap();
            assert_eq!(recovered.len(Space::History).unwrap(), 10, "{effect:?}");
        }
    }

    #[test]
    fn manifest_retention_watermark_escaping_roundtrips() {
        // Watermark bounds with spaces, percent signs, newlines and
        // control bytes must survive the manifest's escaped encoding.
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(tiny_tiered())).unwrap();
        let start = "a b%1\t\u{1}";
        let below = "a b%2\nz 100%";
        let retired = store.retain_below(Space::Template, start, below).unwrap();
        assert_eq!(retired, 0);
        assert_eq!(
            store.retention(Space::Template),
            Some((start.to_string(), below.to_string()))
        );
        drop(store);
        let reopened = Store::open_with(disk, Some(tiny_tiered())).unwrap();
        assert_eq!(
            reopened.retention(Space::Template),
            Some((start.to_string(), below.to_string())),
            "watermark bounds did not roundtrip through the manifest"
        );
    }
}
