//! The storage engine proper: record spaces, atomic batches, snapshots.
//!
//! A [`Store`] keeps the full record set in memory (a `BTreeMap` per space)
//! and makes every mutation durable through the WAL before applying it.
//! [`Store::compact`] rolls the log into a snapshot so that recovery time and
//! disk usage stay bounded over month-long runs.

use crate::disk::Disk;
use crate::error::{StoreError, StoreResult};
use crate::wal::{self, WalOp};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The four persistent spaces of the BioOpera data layer (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Space {
    /// Process templates as defined by users.
    Template,
    /// Processes currently executing (the navigator's durable state).
    Instance,
    /// Hardware/software configuration of the computing infrastructure.
    Configuration,
    /// Historical information about executed processes, load samples, events.
    History,
}

impl Space {
    /// All spaces, in stable order.
    pub const ALL: [Space; 4] = [
        Space::Template,
        Space::Instance,
        Space::Configuration,
        Space::History,
    ];

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Space::Template => 0,
            Space::Instance => 1,
            Space::Configuration => 2,
            Space::History => 3,
        }
    }

    /// Inverse of the WAL encoding of a space tag; rejects unknown tags.
    pub fn from_u8(v: u8) -> StoreResult<Space> {
        match v {
            0 => Ok(Space::Template),
            1 => Ok(Space::Instance),
            2 => Ok(Space::Configuration),
            3 => Ok(Space::History),
            other => Err(StoreError::Corruption(format!("unknown space {other}"))),
        }
    }

    /// Human-readable name, used in debug dumps.
    pub fn name(self) -> &'static str {
        match self {
            Space::Template => "template",
            Space::Instance => "instance",
            Space::Configuration => "configuration",
            Space::History => "history",
        }
    }
}

/// An atomic batch of mutations.  All operations in a batch become visible
/// together or not at all, across crashes.
#[derive(Debug, Default, Clone)]
pub struct Batch {
    ops: Vec<WalOp>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert/replace.
    pub fn put(
        &mut self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> &mut Self {
        self.ops.push(WalOp::Put {
            space: space.as_u8(),
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, space: Space, key: impl Into<String>) -> &mut Self {
        self.ops.push(WalOp::Delete {
            space: space.as_u8(),
            key: key.into(),
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Counters describing the store's physical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Current snapshot/WAL epoch.
    pub epoch: u64,
    /// Bytes appended to the live WAL since the last compaction.
    pub wal_bytes: u64,
    /// Batches applied since open (including replayed ones).
    pub batches_applied: u64,
    /// Total records across all spaces.
    pub records: usize,
    /// Whether the last open discarded a torn tail.
    pub recovered_torn_tail: bool,
    /// Bytes of torn tail the last open discarded.
    pub recovered_truncated_bytes: u64,
}

struct Inner<D: Disk> {
    disk: D,
    mem: BTreeMap<(u8, String), Bytes>,
    epoch: u64,
    wal_bytes: u64,
    batches_applied: u64,
    recovered_torn_tail: bool,
    recovered_truncated_bytes: u64,
    poisoned: bool,
}

/// The storage engine.  Cheap to clone (shared handle); all methods are
/// thread-safe.
pub struct Store<D: Disk> {
    inner: Arc<Mutex<Inner<D>>>,
}

impl<D: Disk> Clone for Store<D> {
    fn clone(&self) -> Self {
        Store {
            inner: Arc::clone(&self.inner),
        }
    }
}

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}")
}

fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:06}")
}

const MANIFEST: &str = "MANIFEST";

impl<D: Disk> Store<D> {
    /// Open a store on `disk`, running crash recovery: load the newest
    /// committed snapshot, then replay the live WAL, discarding any torn
    /// tail left by a crash.
    pub fn open(disk: D) -> StoreResult<Self> {
        let epoch = match disk.read(MANIFEST)? {
            Some(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| StoreError::Corruption("manifest not utf-8".into()))?;
                text.trim()
                    .parse::<u64>()
                    .map_err(|_| StoreError::Corruption("manifest not a number".into()))?
            }
            None => 0,
        };

        let mut mem: BTreeMap<(u8, String), Bytes> = BTreeMap::new();
        let mut batches_applied = 0u64;

        // Snapshots are written atomically, so a torn snapshot is corruption.
        if let Some(snap) = disk.read(&snapshot_name(epoch))? {
            let replay = wal::replay(&snap)?;
            if replay.torn_tail {
                return Err(StoreError::Corruption("snapshot has torn frames".into()));
            }
            for batch in replay.batches {
                batches_applied += 1;
                apply_ops(&mut mem, batch);
            }
        }

        let (wal_bytes, recovered_torn_tail, recovered_truncated_bytes) =
            match disk.read(&wal_name(epoch))? {
                Some(log) => {
                    let replay = wal::replay(&log)?;
                    for batch in replay.batches {
                        batches_applied += 1;
                        apply_ops(&mut mem, batch);
                    }
                    if replay.torn_tail {
                        // Repair: drop the torn tail *on disk*, not just in
                        // memory.  Future appends must continue at the end
                        // of the valid prefix — appending after the torn
                        // bytes would make every post-recovery batch appear
                        // to follow an invalid frame on the next open, and
                        // be discarded.
                        disk.write_atomic(&wal_name(epoch), &log[..replay.valid_len])?;
                    }
                    (
                        replay.valid_len as u64,
                        replay.torn_tail,
                        replay.truncated_bytes as u64,
                    )
                }
                None => (0, false, 0),
            };

        // Crash hygiene: a crash can leave partially-written temp files
        // (torn `write_atomic`) and orphan snapshot/WAL files of adjacent
        // epochs (crash inside `compact` between the snapshot write, the
        // manifest commit and the old-epoch GC).  Remove them so they can
        // never be mistaken for live state.  These deletes are themselves
        // crash points (recovery-during-recovery) and are idempotent: a
        // crash here leaves a state this same pass cleans on the next open.
        let keep_wal = wal_name(epoch);
        let keep_snap = snapshot_name(epoch);
        for name in disk.list()? {
            let stale = name.ends_with(".tmp")
                || (name.starts_with("wal-") && name != keep_wal)
                || (name.starts_with("snapshot-") && name != keep_snap);
            if stale {
                disk.delete(&name)?;
            }
        }

        Ok(Store {
            inner: Arc::new(Mutex::new(Inner {
                disk,
                mem,
                epoch,
                wal_bytes,
                batches_applied,
                recovered_torn_tail,
                recovered_truncated_bytes,
                poisoned: false,
            })),
        })
    }

    /// Apply a batch atomically: durable in the WAL first, then visible.
    pub fn apply(&self, batch: Batch) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return Err(StoreError::Poisoned);
        }
        if batch.is_empty() {
            return Ok(());
        }
        let frame = wal::encode_frame(&batch.ops);
        let name = wal_name(inner.epoch);
        if let Err(e) = inner.disk.append(&name, &frame) {
            inner.poisoned = true;
            return Err(e);
        }
        inner.wal_bytes += frame.len() as u64;
        inner.batches_applied += 1;
        apply_ops(&mut inner.mem, batch.ops);
        Ok(())
    }

    /// Convenience single-record put.
    pub fn put(
        &self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> StoreResult<()> {
        let mut b = Batch::new();
        b.put(space, key, value);
        self.apply(b)
    }

    /// Convenience single-record delete.
    pub fn delete(&self, space: Space, key: impl Into<String>) -> StoreResult<()> {
        let mut b = Batch::new();
        b.delete(space, key);
        self.apply(b)
    }

    /// Fetch a record.
    pub fn get(&self, space: Space, key: &str) -> StoreResult<Option<Bytes>> {
        let inner = self.inner.lock();
        if inner.poisoned {
            return Err(StoreError::Poisoned);
        }
        Ok(inner.mem.get(&(space.as_u8(), key.to_string())).cloned())
    }

    /// All `(key, value)` pairs in `space` whose key starts with `prefix`,
    /// in key order.
    pub fn scan_prefix(&self, space: Space, prefix: &str) -> StoreResult<Vec<(String, Bytes)>> {
        let inner = self.inner.lock();
        if inner.poisoned {
            return Err(StoreError::Poisoned);
        }
        let lo = (space.as_u8(), prefix.to_string());
        Ok(inner
            .mem
            .range(lo..)
            .take_while(|((s, k), _)| *s == space.as_u8() && k.starts_with(prefix))
            .map(|((_, k), v)| (k.clone(), v.clone()))
            .collect())
    }

    /// Number of records in `space`.
    pub fn len(&self, space: Space) -> StoreResult<usize> {
        Ok(self.scan_prefix(space, "")?.len())
    }

    /// True when `space` holds no records.
    pub fn is_empty(&self, space: Space) -> StoreResult<bool> {
        Ok(self.len(space)? == 0)
    }

    /// Roll the WAL into a snapshot: write `snapshot-{e+1}` atomically, bump
    /// the manifest (the commit point), start an empty `wal-{e+1}`, then
    /// garbage-collect the previous epoch's files.  A crash at any point
    /// leaves either the old epoch or the new epoch fully recoverable.
    pub fn compact(&self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return Err(StoreError::Poisoned);
        }
        let next = inner.epoch + 1;
        let ops: Vec<WalOp> = inner
            .mem
            .iter()
            .map(|((s, k), v)| WalOp::Put {
                space: *s,
                key: k.clone(),
                value: v.clone(),
            })
            .collect();
        // One frame per 1024 records keeps individual frames reasonable.
        let mut snap = Vec::new();
        for chunk in ops.chunks(1024) {
            snap.extend_from_slice(&wal::encode_frame(chunk));
        }
        if ops.is_empty() {
            // Still write an (empty) snapshot so recovery has a file to find.
            snap.extend_from_slice(&wal::encode_frame(&[]));
        }
        // Any disk failure mid-compaction leaves the on-disk epoch state
        // ambiguous from this handle's point of view: poison it so every
        // further call fails until a re-open re-establishes the truth
        // (recovery handles both the committed and the uncommitted case).
        let io: StoreResult<()> = (|| {
            inner.disk.write_atomic(&snapshot_name(next), &snap)?;
            inner
                .disk
                .write_atomic(MANIFEST, next.to_string().as_bytes())?;
            let old_wal = wal_name(inner.epoch);
            let old_snap = snapshot_name(inner.epoch);
            inner.disk.delete(&old_wal)?;
            inner.disk.delete(&old_snap)?;
            Ok(())
        })();
        if let Err(e) = io {
            inner.poisoned = true;
            return Err(e);
        }
        inner.epoch = next;
        inner.wal_bytes = 0;
        Ok(())
    }

    /// Physical statistics.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            epoch: inner.epoch,
            wal_bytes: inner.wal_bytes,
            batches_applied: inner.batches_applied,
            records: inner.mem.len(),
            recovered_torn_tail: inner.recovered_torn_tail,
            recovered_truncated_bytes: inner.recovered_truncated_bytes,
        }
    }

    /// True once a disk failure has poisoned this handle; all further calls
    /// fail until the store is re-opened (recovery).
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Mark the handle as failed. Used by the runtime to model a BioOpera
    /// server crash: the in-memory half dies, the disk survives.
    pub fn poison(&self) {
        self.inner.lock().poisoned = true;
    }
}

fn apply_ops(mem: &mut BTreeMap<(u8, String), Bytes>, ops: Vec<WalOp>) {
    for op in ops {
        match op {
            WalOp::Put { space, key, value } => {
                mem.insert((space, key), value);
            }
            WalOp::Delete { space, key } => {
                mem.remove(&(space, key));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{FaultPlan, MemDisk};

    fn open_mem() -> (MemDisk, Store<MemDisk>) {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        (disk, store)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_d, store) = open_mem();
        store.put(Space::Instance, "p1", &b"alpha"[..]).unwrap();
        assert_eq!(
            store.get(Space::Instance, "p1").unwrap().unwrap(),
            &b"alpha"[..]
        );
        // Spaces are disjoint namespaces.
        assert_eq!(store.get(Space::Template, "p1").unwrap(), None);
        store.delete(Space::Instance, "p1").unwrap();
        assert_eq!(store.get(Space::Instance, "p1").unwrap(), None);
    }

    #[test]
    fn scan_prefix_is_ordered_and_scoped() {
        let (_d, store) = open_mem();
        for k in ["inst/2/b", "inst/1/a", "inst/1/b", "inst/10/c", "other"] {
            store
                .put(Space::Instance, k, Bytes::from(k.to_string()))
                .unwrap();
        }
        let hits = store.scan_prefix(Space::Instance, "inst/1").unwrap();
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["inst/1/a", "inst/1/b", "inst/10/c"]);
    }

    #[test]
    fn reopen_replays_wal() {
        let (disk, store) = open_mem();
        store.put(Space::Template, "t", &b"T"[..]).unwrap();
        store.put(Space::History, "h", &b"H"[..]).unwrap();
        drop(store);
        let store2 = Store::open(disk).unwrap();
        assert_eq!(
            store2.get(Space::Template, "t").unwrap().unwrap(),
            &b"T"[..]
        );
        assert_eq!(store2.get(Space::History, "h").unwrap().unwrap(), &b"H"[..]);
        assert_eq!(store2.stats().batches_applied, 2);
    }

    #[test]
    fn batch_is_atomic_across_crash() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        // Crash 10 bytes into the next append, leaving a torn frame.
        // (set_fault_plan restarts the byte accounting at zero.)
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        let mut batch = Batch::new();
        batch
            .put(Space::Instance, "a", &b"1"[..])
            .put(Space::Instance, "b", &b"2"[..]);
        assert!(matches!(
            store.apply(batch),
            Err(StoreError::SimulatedCrash)
        ));
        assert!(store.is_poisoned());
        assert!(matches!(
            store.get(Space::Instance, "a"),
            Err(StoreError::Poisoned)
        ));

        disk.reboot();
        let recovered = Store::open(disk).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        // Neither half of the batch is visible; the earlier record is.
        assert_eq!(recovered.get(Space::Instance, "a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "b").unwrap(), None);
        assert_eq!(
            recovered
                .get(Space::Instance, "committed")
                .unwrap()
                .unwrap(),
            &b"yes"[..]
        );
    }

    #[test]
    fn compact_then_recover() {
        let (disk, store) = open_mem();
        for i in 0..100 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:04}"),
                    Bytes::from(vec![i as u8]),
                )
                .unwrap();
        }
        store.delete(Space::History, "ev/0000").unwrap();
        let pre = store.stats();
        assert!(pre.wal_bytes > 0);
        store.compact().unwrap();
        let post = store.stats();
        assert_eq!(post.epoch, pre.epoch + 1);
        assert_eq!(post.wal_bytes, 0);
        assert_eq!(post.records, 99);

        // Post-compaction writes land in the new WAL.
        store.put(Space::History, "ev/9999", &b"new"[..]).unwrap();
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 100);
        assert_eq!(recovered.get(Space::History, "ev/0000").unwrap(), None);
        assert_eq!(
            recovered.get(Space::History, "ev/9999").unwrap().unwrap(),
            &b"new"[..]
        );
    }

    #[test]
    fn compact_empty_store() {
        let (disk, store) = open_mem();
        store.compact().unwrap();
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(recovered.stats().records, 0);
    }

    #[test]
    fn poison_models_server_crash() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        assert!(matches!(
            store.put(Space::Instance, "k2", &b"v"[..]),
            Err(StoreError::Poisoned)
        ));
        let recovered = Store::open(disk).unwrap();
        assert_eq!(
            recovered.get(Space::Instance, "k").unwrap().unwrap(),
            &b"v"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "k2").unwrap(), None);
    }

    #[test]
    fn overwrite_takes_latest_value_across_recovery() {
        let (disk, store) = open_mem();
        store.put(Space::Configuration, "node", &b"v1"[..]).unwrap();
        store.put(Space::Configuration, "node", &b"v2"[..]).unwrap();
        store.compact().unwrap();
        store.put(Space::Configuration, "node", &b"v3"[..]).unwrap();
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(
            recovered
                .get(Space::Configuration, "node")
                .unwrap()
                .unwrap(),
            &b"v3"[..]
        );
    }

    #[test]
    fn torn_tail_is_truncated_on_disk_at_open() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        assert!(store.put(Space::Instance, "lost", &b"no"[..]).is_err());
        disk.reboot();

        let recovered = Store::open(disk.clone()).unwrap();
        let stats = recovered.stats();
        assert!(stats.recovered_torn_tail);
        assert!(stats.recovered_truncated_bytes > 0);
        // The torn bytes are gone from the device, so post-recovery appends
        // continue the valid prefix…
        recovered.put(Space::Instance, "after", &b"ok"[..]).unwrap();
        drop(recovered);
        // …and a *second* open replays every post-recovery batch instead of
        // discarding them as trailing garbage (regression: recovery used to
        // leave the torn tail on disk and append after it).
        let again = Store::open(disk).unwrap();
        assert!(!again.stats().recovered_torn_tail);
        assert_eq!(
            again.get(Space::Instance, "after").unwrap().unwrap(),
            &b"ok"[..]
        );
        assert_eq!(
            again.get(Space::Instance, "committed").unwrap().unwrap(),
            &b"yes"[..]
        );
        assert_eq!(again.get(Space::Instance, "lost").unwrap(), None);
    }

    #[test]
    fn crash_at_every_compact_mutation_recovers() {
        use crate::disk::CrashEffect;
        // compact() performs 4 mutations: snapshot write, manifest write,
        // old-WAL delete, old-snapshot delete.  Crash at each, with every
        // effect, and verify recovery sees exactly the pre-compact records
        // and leaves no stale files behind.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let (disk, store) = open_mem();
                for i in 0..20 {
                    store
                        .put(Space::History, format!("ev/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.delete(Space::History, "ev/00").unwrap();
                let expected: Vec<(String, Bytes)> = store.scan_prefix(Space::History, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.compact().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open(disk.clone()).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::History, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                // Open's hygiene pass removed temp files and orphan epochs.
                let epoch = recovered.stats().epoch;
                for name in disk.list().unwrap() {
                    assert!(
                        name == MANIFEST || name == wal_name(epoch) || name == snapshot_name(epoch),
                        "mutation {idx} {effect:?}: stale file `{name}` survived recovery"
                    );
                }
                // The recovered store keeps working.
                recovered
                    .put(Space::History, "ev/99", &b"post"[..])
                    .unwrap();
                recovered.compact().unwrap();
            }
        }
    }

    #[test]
    fn poisoned_store_rejects_every_public_op_without_touching_disk() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        let mutations_before = disk.mutation_count();

        let mut batch = Batch::new();
        batch.put(Space::Instance, "x", &b"1"[..]);
        assert!(matches!(store.apply(batch), Err(StoreError::Poisoned)));
        // Even a no-op batch is rejected: the handle is dead.
        assert!(matches!(
            store.apply(Batch::new()),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.put(Space::Instance, "x", &b"1"[..]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.delete(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.get(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.scan_prefix(Space::Instance, ""),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.len(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.is_empty(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(store.compact(), Err(StoreError::Poisoned)));
        assert_eq!(
            disk.mutation_count(),
            mutations_before,
            "a poisoned handle must never touch the disk"
        );
        assert!(store.is_poisoned());
    }

    #[test]
    fn file_disk_end_to_end() {
        let dir = std::env::temp_dir().join(format!("bioopera-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open(disk).unwrap();
            store.put(Space::Template, "t", &b"body"[..]).unwrap();
            store.compact().unwrap();
            store.put(Space::Template, "u", &b"more"[..]).unwrap();
        }
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open(disk).unwrap();
            assert_eq!(
                store.get(Space::Template, "t").unwrap().unwrap(),
                &b"body"[..]
            );
            assert_eq!(
                store.get(Space::Template, "u").unwrap().unwrap(),
                &b"more"[..]
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
