//! The storage engine proper: record spaces, atomic batches, snapshots.
//!
//! A [`Store`] keeps the full record set in memory (a `BTreeMap` per space)
//! and makes every mutation durable through the WAL before applying it.
//! [`Store::compact`] rolls the log into a snapshot so that recovery time and
//! disk usage stay bounded over month-long runs.
//!
//! # Locking model
//!
//! The engine splits its state in two so readers never contend with the
//! disk:
//!
//! * `wal: Mutex<WalState>` — the disk handle, epoch and WAL counters.
//!   Only writers (`apply`, `apply_many`, `compact`) take it.
//! * `mem: RwLock<MemTables>` — the four per-space memtables.  Readers
//!   (`get`, `scan_prefix`, `len`) take only the read lock; a write lock
//!   is held just for the in-memory application of an already-durable
//!   batch.
//!
//! Writers acquire `wal` first and keep holding it while they take the
//! `mem` write lock, so the order in which batches become durable in the
//! WAL is exactly the order in which they become visible — recovery can
//! never disagree with what a reader observed.  Frame encoding happens
//! *before* any lock is taken.

use crate::disk::Disk;
use crate::error::{StoreError, StoreResult};
use crate::wal::{self, WalOp, WalOpRef};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The four persistent spaces of the BioOpera data layer (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Space {
    /// Process templates as defined by users.
    Template,
    /// Processes currently executing (the navigator's durable state).
    Instance,
    /// Hardware/software configuration of the computing infrastructure.
    Configuration,
    /// Historical information about executed processes, load samples, events.
    History,
}

impl Space {
    /// All spaces, in stable order.
    pub const ALL: [Space; 4] = [
        Space::Template,
        Space::Instance,
        Space::Configuration,
        Space::History,
    ];

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Space::Template => 0,
            Space::Instance => 1,
            Space::Configuration => 2,
            Space::History => 3,
        }
    }

    /// Inverse of the WAL encoding of a space tag; rejects unknown tags.
    pub fn from_u8(v: u8) -> StoreResult<Space> {
        match v {
            0 => Ok(Space::Template),
            1 => Ok(Space::Instance),
            2 => Ok(Space::Configuration),
            3 => Ok(Space::History),
            other => Err(StoreError::Corruption(format!("unknown space {other}"))),
        }
    }

    /// Human-readable name, used in debug dumps.
    pub fn name(self) -> &'static str {
        match self {
            Space::Template => "template",
            Space::Instance => "instance",
            Space::Configuration => "configuration",
            Space::History => "history",
        }
    }
}

/// An atomic batch of mutations.  All operations in a batch become visible
/// together or not at all, across crashes.
#[derive(Debug, Default, Clone)]
pub struct Batch {
    ops: Vec<WalOp>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert/replace.
    pub fn put(
        &mut self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> &mut Self {
        self.ops.push(WalOp::Put {
            space: space.as_u8(),
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, space: Space, key: impl Into<String>) -> &mut Self {
        self.ops.push(WalOp::Delete {
            space: space.as_u8(),
            key: key.into(),
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Counters describing the store's physical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Current snapshot/WAL epoch.
    pub epoch: u64,
    /// Bytes appended to the live WAL since the last compaction.
    pub wal_bytes: u64,
    /// Batches applied since open (including replayed ones).
    pub batches_applied: u64,
    /// Total records across all spaces.
    pub records: usize,
    /// Whether the last open discarded a torn tail.
    pub recovered_torn_tail: bool,
    /// Bytes of torn tail the last open discarded.
    pub recovered_truncated_bytes: u64,
}

/// When to roll the WAL into a snapshot automatically.  Installed with
/// [`Store::set_compaction_policy`]; the store then compacts itself right
/// after the commit that crosses the threshold, so month-long runs bound
/// their recovery cost without the caller sprinkling `compact()` calls.
///
/// With no policy installed (the default) the store never compacts on its
/// own — mutation sequences are exactly the caller's calls, which is what
/// the crash-point torture harness enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the live WAL exceeds this many bytes.
    pub wal_bytes_threshold: u64,
    /// …but only after at least this many batches in the current epoch,
    /// so a single oversized batch doesn't trigger a pointless roll.
    pub min_wal_batches: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            wal_bytes_threshold: 8 * 1024 * 1024,
            min_wal_batches: 4,
        }
    }
}

/// Everything a writer needs: the disk plus WAL/epoch accounting.
struct WalState<D: Disk> {
    disk: D,
    epoch: u64,
    wal_bytes: u64,
    batches_applied: u64,
    batches_in_epoch: u64,
    recovered_torn_tail: bool,
    recovered_truncated_bytes: u64,
    policy: Option<CompactionPolicy>,
}

impl<D: Disk> WalState<D> {
    fn over_threshold(&self) -> bool {
        self.policy.is_some_and(|p| {
            self.wal_bytes >= p.wal_bytes_threshold && self.batches_in_epoch >= p.min_wal_batches
        })
    }
}

/// The four per-space memtables.  Keys are plain `String`s so lookups can
/// borrow the caller's `&str` (no per-`get` allocation) and `len` is the
/// map's O(1) length.
#[derive(Default)]
struct MemTables {
    spaces: [BTreeMap<String, Bytes>; 4],
}

impl MemTables {
    fn apply_ops(&mut self, ops: Vec<WalOp>) {
        for op in ops {
            match op {
                WalOp::Put { space, key, value } => {
                    // Unknown space tags can only come from a corrupted
                    // frame that still passed its CRC; drop them rather
                    // than panic — they were never addressable anyway.
                    if let Some(map) = self.spaces.get_mut(space as usize) {
                        map.insert(key, value);
                    }
                }
                WalOp::Delete { space, key } => {
                    if let Some(map) = self.spaces.get_mut(space as usize) {
                        map.remove(&key);
                    }
                }
            }
        }
    }

    fn records(&self) -> usize {
        self.spaces.iter().map(BTreeMap::len).sum()
    }
}

/// The storage engine.  Cheap to clone (shared handle); all methods are
/// thread-safe, and readers never block other readers.
pub struct Store<D: Disk> {
    wal: Arc<Mutex<WalState<D>>>,
    mem: Arc<RwLock<MemTables>>,
    poisoned: Arc<AtomicBool>,
}

impl<D: Disk> Clone for Store<D> {
    fn clone(&self) -> Self {
        Store {
            wal: Arc::clone(&self.wal),
            mem: Arc::clone(&self.mem),
            poisoned: Arc::clone(&self.poisoned),
        }
    }
}

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}")
}

fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:06}")
}

const MANIFEST: &str = "MANIFEST";

/// Records per snapshot frame: keeps individual frames reasonable and is
/// part of the on-disk format compatibility surface (snapshots written by
/// earlier engine versions used the same chunking).
const SNAPSHOT_CHUNK: usize = 1024;

impl<D: Disk> Store<D> {
    /// Open a store on `disk`, running crash recovery: load the newest
    /// committed snapshot, then replay the live WAL, discarding any torn
    /// tail left by a crash.
    pub fn open(disk: D) -> StoreResult<Self> {
        let epoch = match disk.read(MANIFEST)? {
            Some(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| StoreError::Corruption("manifest not utf-8".into()))?;
                text.trim()
                    .parse::<u64>()
                    .map_err(|_| StoreError::Corruption("manifest not a number".into()))?
            }
            None => 0,
        };

        let mut mem = MemTables::default();
        let mut batches_applied = 0u64;

        // Snapshots are written atomically, so a torn snapshot is corruption.
        if let Some(snap) = disk.read(&snapshot_name(epoch))? {
            let replay = wal::replay_shared(Bytes::from(snap))?;
            if replay.torn_tail {
                return Err(StoreError::Corruption("snapshot has torn frames".into()));
            }
            for batch in replay.batches {
                batches_applied += 1;
                mem.apply_ops(batch);
            }
        }

        let mut batches_in_epoch = 0u64;
        let (wal_bytes, recovered_torn_tail, recovered_truncated_bytes) =
            match disk.read(&wal_name(epoch))? {
                Some(log) => {
                    // The log image becomes one shared buffer; replay
                    // slices every value out of it without copying.
                    let log = Bytes::from(log);
                    let replay = wal::replay_shared(log.clone())?;
                    for batch in replay.batches {
                        batches_applied += 1;
                        batches_in_epoch += 1;
                        mem.apply_ops(batch);
                    }
                    if replay.torn_tail {
                        // Repair: drop the torn tail *on disk*, not just in
                        // memory.  Future appends must continue at the end
                        // of the valid prefix — appending after the torn
                        // bytes would make every post-recovery batch appear
                        // to follow an invalid frame on the next open, and
                        // be discarded.
                        disk.write_atomic(&wal_name(epoch), &log.as_slice()[..replay.valid_len])?;
                    }
                    (
                        replay.valid_len as u64,
                        replay.torn_tail,
                        replay.truncated_bytes as u64,
                    )
                }
                None => (0, false, 0),
            };

        // Crash hygiene: a crash can leave partially-written temp files
        // (torn `write_atomic`) and orphan snapshot/WAL files of adjacent
        // epochs (crash inside `compact` between the snapshot write, the
        // manifest commit and the old-epoch GC).  Remove them so they can
        // never be mistaken for live state.  These deletes are themselves
        // crash points (recovery-during-recovery) and are idempotent: a
        // crash here leaves a state this same pass cleans on the next open.
        let keep_wal = wal_name(epoch);
        let keep_snap = snapshot_name(epoch);
        for name in disk.list()? {
            let stale = name.ends_with(".tmp")
                || (name.starts_with("wal-") && name != keep_wal)
                || (name.starts_with("snapshot-") && name != keep_snap);
            if stale {
                disk.delete(&name)?;
            }
        }

        Ok(Store {
            wal: Arc::new(Mutex::new(WalState {
                disk,
                epoch,
                wal_bytes,
                batches_applied,
                batches_in_epoch,
                recovered_torn_tail,
                recovered_truncated_bytes,
                policy: None,
            })),
            mem: Arc::new(RwLock::new(mem)),
            poisoned: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Install (or clear) the automatic compaction policy.
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        self.wal.lock().policy = policy;
    }

    /// Apply a batch atomically: durable in the WAL first, then visible.
    pub fn apply(&self, batch: Batch) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        if batch.is_empty() {
            return Ok(());
        }
        // Encode outside the critical section: concurrent committers
        // serialize only on the disk append itself, not the CPU work.
        let frame = wal::encode_frame(&batch.ops);
        let auto = {
            let mut wal = self.wal.lock();
            let name = wal_name(wal.epoch);
            if let Err(e) = wal.disk.append(&name, &frame) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            wal.wal_bytes += frame.len() as u64;
            wal.batches_applied += 1;
            wal.batches_in_epoch += 1;
            // Still holding the WAL lock: visibility order == durable order.
            self.mem.write().apply_ops(batch.ops);
            wal.over_threshold()
        };
        if auto {
            self.compact_if_over_threshold()?;
        }
        Ok(())
    }

    /// Group commit: apply several batches with **one** disk append.
    ///
    /// Each batch stays its own WAL frame, so per-batch atomicity across
    /// crashes is untouched — a torn write leaves a whole-batch prefix,
    /// exactly as if the batches had been applied one call at a time.
    /// What is amortized is everything else: one lock acquisition, one
    /// append syscall, one visibility pass.
    pub fn apply_many(&self, batches: impl IntoIterator<Item = Batch>) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        let mut pending: Vec<Vec<WalOp>> = Vec::new();
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            let refs: Vec<WalOpRef<'_>> = batch.ops.iter().map(WalOp::as_op_ref).collect();
            wal::encode_frame_into(&mut buf, &mut scratch, &refs);
            pending.push(batch.ops);
        }
        if pending.is_empty() {
            return Ok(());
        }
        let auto = {
            let mut wal = self.wal.lock();
            let name = wal_name(wal.epoch);
            if let Err(e) = wal.disk.append(&name, &buf) {
                self.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
            wal.wal_bytes += buf.len() as u64;
            wal.batches_applied += pending.len() as u64;
            wal.batches_in_epoch += pending.len() as u64;
            let mut mem = self.mem.write();
            for ops in pending {
                mem.apply_ops(ops);
            }
            wal.over_threshold()
        };
        if auto {
            self.compact_if_over_threshold()?;
        }
        Ok(())
    }

    /// Convenience single-record put.
    pub fn put(
        &self,
        space: Space,
        key: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> StoreResult<()> {
        let mut b = Batch::new();
        b.put(space, key, value);
        self.apply(b)
    }

    /// Convenience single-record delete.
    pub fn delete(&self, space: Space, key: impl Into<String>) -> StoreResult<()> {
        let mut b = Batch::new();
        b.delete(space, key);
        self.apply(b)
    }

    /// Fetch a record.  Allocation-free on the lookup path (the key is
    /// borrowed, the value handle is a reference-counted slice).
    pub fn get(&self, space: Space, key: &str) -> StoreResult<Option<Bytes>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        Ok(self.mem.read().spaces[space.as_u8() as usize]
            .get(key)
            .cloned())
    }

    /// All `(key, value)` pairs in `space` whose key starts with `prefix`,
    /// in key order.
    pub fn scan_prefix(&self, space: Space, prefix: &str) -> StoreResult<Vec<(String, Bytes)>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        Ok(self.mem.read().spaces[space.as_u8() as usize]
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }

    /// Number of records in `space`.  O(1).
    pub fn len(&self, space: Space) -> StoreResult<usize> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        Ok(self.mem.read().spaces[space.as_u8() as usize].len())
    }

    /// True when `space` holds no records.  O(1).
    pub fn is_empty(&self, space: Space) -> StoreResult<bool> {
        Ok(self.len(space)? == 0)
    }

    /// Roll the WAL into a snapshot: write `snapshot-{e+1}` atomically, bump
    /// the manifest (the commit point), start an empty `wal-{e+1}`, then
    /// garbage-collect the previous epoch's files.  A crash at any point
    /// leaves either the old epoch or the new epoch fully recoverable.
    pub fn compact(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        self.compact_locked(&mut wal)
    }

    /// Re-check the policy threshold and compact if still over it.  Called
    /// after a commit observed the threshold crossed *and released its
    /// locks*; the re-check under the lock means two racing committers
    /// trigger exactly one compaction (the second sees `wal_bytes == 0`).
    fn compact_if_over_threshold(&self) -> StoreResult<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StoreError::Poisoned);
        }
        let mut wal = self.wal.lock();
        if !wal.over_threshold() {
            return Ok(());
        }
        self.compact_locked(&mut wal)
    }

    /// The compaction body; the caller holds the WAL lock, which also
    /// freezes the memtables (every writer needs that lock), so the
    /// snapshot is a consistent image while readers proceed untouched.
    fn compact_locked(&self, wal: &mut WalState<D>) -> StoreResult<()> {
        let next = wal.epoch + 1;
        // Stream the snapshot out of the memtables: encode in place, in
        // chunks, borrowing keys and values — no owned clone of the record
        // set is ever materialized.
        let mut snap = Vec::new();
        {
            let mem = self.mem.read();
            let mut scratch = Vec::new();
            let mut refs: Vec<WalOpRef<'_>> = Vec::with_capacity(SNAPSHOT_CHUNK);
            let mut total = 0usize;
            for (space, map) in mem.spaces.iter().enumerate() {
                for (key, value) in map {
                    refs.push(WalOpRef::Put {
                        space: space as u8,
                        key,
                        value,
                    });
                    total += 1;
                    if refs.len() == SNAPSHOT_CHUNK {
                        wal::encode_frame_into(&mut snap, &mut scratch, &refs);
                        refs.clear();
                    }
                }
            }
            if !refs.is_empty() {
                wal::encode_frame_into(&mut snap, &mut scratch, &refs);
            }
            if total == 0 {
                // Still write an (empty) snapshot so recovery has a file
                // to find.
                wal::encode_frame_into(&mut snap, &mut scratch, &[]);
            }
        }
        // Any disk failure mid-compaction leaves the on-disk epoch state
        // ambiguous from this handle's point of view: poison it so every
        // further call fails until a re-open re-establishes the truth
        // (recovery handles both the committed and the uncommitted case).
        let io: StoreResult<()> = (|| {
            wal.disk.write_atomic(&snapshot_name(next), &snap)?;
            wal.disk
                .write_atomic(MANIFEST, next.to_string().as_bytes())?;
            let old_wal = wal_name(wal.epoch);
            let old_snap = snapshot_name(wal.epoch);
            wal.disk.delete(&old_wal)?;
            wal.disk.delete(&old_snap)?;
            Ok(())
        })();
        if let Err(e) = io {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(e);
        }
        wal.epoch = next;
        wal.wal_bytes = 0;
        wal.batches_in_epoch = 0;
        Ok(())
    }

    /// Physical statistics.
    pub fn stats(&self) -> StoreStats {
        let wal = self.wal.lock();
        StoreStats {
            epoch: wal.epoch,
            wal_bytes: wal.wal_bytes,
            batches_applied: wal.batches_applied,
            records: self.mem.read().records(),
            recovered_torn_tail: wal.recovered_torn_tail,
            recovered_truncated_bytes: wal.recovered_truncated_bytes,
        }
    }

    /// True once a disk failure has poisoned this handle; all further calls
    /// fail until the store is re-opened (recovery).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Mark the handle as failed. Used by the runtime to model a BioOpera
    /// server crash: the in-memory half dies, the disk survives.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{FaultPlan, MemDisk};

    fn open_mem() -> (MemDisk, Store<MemDisk>) {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        (disk, store)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_d, store) = open_mem();
        store.put(Space::Instance, "p1", &b"alpha"[..]).unwrap();
        assert_eq!(
            store.get(Space::Instance, "p1").unwrap().unwrap(),
            &b"alpha"[..]
        );
        // Spaces are disjoint namespaces.
        assert_eq!(store.get(Space::Template, "p1").unwrap(), None);
        store.delete(Space::Instance, "p1").unwrap();
        assert_eq!(store.get(Space::Instance, "p1").unwrap(), None);
    }

    #[test]
    fn scan_prefix_is_ordered_and_scoped() {
        let (_d, store) = open_mem();
        for k in ["inst/2/b", "inst/1/a", "inst/1/b", "inst/10/c", "other"] {
            store
                .put(Space::Instance, k, Bytes::from(k.to_string()))
                .unwrap();
        }
        let hits = store.scan_prefix(Space::Instance, "inst/1").unwrap();
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["inst/1/a", "inst/1/b", "inst/10/c"]);
    }

    #[test]
    fn reopen_replays_wal() {
        let (disk, store) = open_mem();
        store.put(Space::Template, "t", &b"T"[..]).unwrap();
        store.put(Space::History, "h", &b"H"[..]).unwrap();
        drop(store);
        let store2 = Store::open(disk).unwrap();
        assert_eq!(
            store2.get(Space::Template, "t").unwrap().unwrap(),
            &b"T"[..]
        );
        assert_eq!(store2.get(Space::History, "h").unwrap().unwrap(), &b"H"[..]);
        assert_eq!(store2.stats().batches_applied, 2);
    }

    #[test]
    fn batch_is_atomic_across_crash() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        // Crash 10 bytes into the next append, leaving a torn frame.
        // (set_fault_plan restarts the byte accounting at zero.)
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        let mut batch = Batch::new();
        batch
            .put(Space::Instance, "a", &b"1"[..])
            .put(Space::Instance, "b", &b"2"[..]);
        assert!(matches!(
            store.apply(batch),
            Err(StoreError::SimulatedCrash)
        ));
        assert!(store.is_poisoned());
        assert!(matches!(
            store.get(Space::Instance, "a"),
            Err(StoreError::Poisoned)
        ));

        disk.reboot();
        let recovered = Store::open(disk).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        // Neither half of the batch is visible; the earlier record is.
        assert_eq!(recovered.get(Space::Instance, "a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "b").unwrap(), None);
        assert_eq!(
            recovered
                .get(Space::Instance, "committed")
                .unwrap()
                .unwrap(),
            &b"yes"[..]
        );
    }

    #[test]
    fn compact_then_recover() {
        let (disk, store) = open_mem();
        for i in 0..100 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:04}"),
                    Bytes::from(vec![i as u8]),
                )
                .unwrap();
        }
        store.delete(Space::History, "ev/0000").unwrap();
        let pre = store.stats();
        assert!(pre.wal_bytes > 0);
        store.compact().unwrap();
        let post = store.stats();
        assert_eq!(post.epoch, pre.epoch + 1);
        assert_eq!(post.wal_bytes, 0);
        assert_eq!(post.records, 99);

        // Post-compaction writes land in the new WAL.
        store.put(Space::History, "ev/9999", &b"new"[..]).unwrap();
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 100);
        assert_eq!(recovered.get(Space::History, "ev/0000").unwrap(), None);
        assert_eq!(
            recovered.get(Space::History, "ev/9999").unwrap().unwrap(),
            &b"new"[..]
        );
    }

    #[test]
    fn compact_empty_store() {
        let (disk, store) = open_mem();
        store.compact().unwrap();
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(recovered.stats().records, 0);
    }

    #[test]
    fn poison_models_server_crash() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        assert!(matches!(
            store.put(Space::Instance, "k2", &b"v"[..]),
            Err(StoreError::Poisoned)
        ));
        let recovered = Store::open(disk).unwrap();
        assert_eq!(
            recovered.get(Space::Instance, "k").unwrap().unwrap(),
            &b"v"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "k2").unwrap(), None);
    }

    #[test]
    fn overwrite_takes_latest_value_across_recovery() {
        let (disk, store) = open_mem();
        store.put(Space::Configuration, "node", &b"v1"[..]).unwrap();
        store.put(Space::Configuration, "node", &b"v2"[..]).unwrap();
        store.compact().unwrap();
        store.put(Space::Configuration, "node", &b"v3"[..]).unwrap();
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(
            recovered
                .get(Space::Configuration, "node")
                .unwrap()
                .unwrap(),
            &b"v3"[..]
        );
    }

    #[test]
    fn torn_tail_is_truncated_on_disk_at_open() {
        let (disk, store) = open_mem();
        store
            .put(Space::Instance, "committed", &b"yes"[..])
            .unwrap();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(10, true)));
        assert!(store.put(Space::Instance, "lost", &b"no"[..]).is_err());
        disk.reboot();

        let recovered = Store::open(disk.clone()).unwrap();
        let stats = recovered.stats();
        assert!(stats.recovered_torn_tail);
        assert!(stats.recovered_truncated_bytes > 0);
        // The torn bytes are gone from the device, so post-recovery appends
        // continue the valid prefix…
        recovered.put(Space::Instance, "after", &b"ok"[..]).unwrap();
        drop(recovered);
        // …and a *second* open replays every post-recovery batch instead of
        // discarding them as trailing garbage (regression: recovery used to
        // leave the torn tail on disk and append after it).
        let again = Store::open(disk).unwrap();
        assert!(!again.stats().recovered_torn_tail);
        assert_eq!(
            again.get(Space::Instance, "after").unwrap().unwrap(),
            &b"ok"[..]
        );
        assert_eq!(
            again.get(Space::Instance, "committed").unwrap().unwrap(),
            &b"yes"[..]
        );
        assert_eq!(again.get(Space::Instance, "lost").unwrap(), None);
    }

    #[test]
    fn crash_at_every_compact_mutation_recovers() {
        use crate::disk::CrashEffect;
        // compact() performs 4 mutations: snapshot write, manifest write,
        // old-WAL delete, old-snapshot delete.  Crash at each, with every
        // effect, and verify recovery sees exactly the pre-compact records
        // and leaves no stale files behind.
        for idx in 0..4u64 {
            for effect in [
                CrashEffect::Drop,
                CrashEffect::Torn { keep: 7 },
                CrashEffect::AfterApply,
            ] {
                let (disk, store) = open_mem();
                for i in 0..20 {
                    store
                        .put(Space::History, format!("ev/{i:02}"), Bytes::from(vec![i]))
                        .unwrap();
                }
                store.delete(Space::History, "ev/00").unwrap();
                let expected: Vec<(String, Bytes)> = store.scan_prefix(Space::History, "").unwrap();

                disk.set_fault_plan(Some(FaultPlan::at_mutation(idx, effect)));
                assert!(
                    store.compact().is_err(),
                    "mutation {idx} {effect:?} must surface the crash"
                );
                assert!(store.is_poisoned(), "mutation {idx} {effect:?}");
                disk.reboot();

                let recovered = Store::open(disk.clone()).unwrap();
                assert_eq!(
                    recovered.scan_prefix(Space::History, "").unwrap(),
                    expected,
                    "mutation {idx} {effect:?}: records diverged"
                );
                // Open's hygiene pass removed temp files and orphan epochs.
                let epoch = recovered.stats().epoch;
                for name in disk.list().unwrap() {
                    assert!(
                        name == MANIFEST || name == wal_name(epoch) || name == snapshot_name(epoch),
                        "mutation {idx} {effect:?}: stale file `{name}` survived recovery"
                    );
                }
                // The recovered store keeps working.
                recovered
                    .put(Space::History, "ev/99", &b"post"[..])
                    .unwrap();
                recovered.compact().unwrap();
            }
        }
    }

    #[test]
    fn poisoned_store_rejects_every_public_op_without_touching_disk() {
        let (disk, store) = open_mem();
        store.put(Space::Instance, "k", &b"v"[..]).unwrap();
        store.poison();
        let mutations_before = disk.mutation_count();

        let mut batch = Batch::new();
        batch.put(Space::Instance, "x", &b"1"[..]);
        assert!(matches!(store.apply(batch), Err(StoreError::Poisoned)));
        // Even a no-op batch is rejected: the handle is dead.
        assert!(matches!(
            store.apply(Batch::new()),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.apply_many([Batch::new()]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.put(Space::Instance, "x", &b"1"[..]),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.delete(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.get(Space::Instance, "k"),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.scan_prefix(Space::Instance, ""),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.len(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(
            store.is_empty(Space::Instance),
            Err(StoreError::Poisoned)
        ));
        assert!(matches!(store.compact(), Err(StoreError::Poisoned)));
        assert_eq!(
            disk.mutation_count(),
            mutations_before,
            "a poisoned handle must never touch the disk"
        );
        assert!(store.is_poisoned());
    }

    #[test]
    fn file_disk_end_to_end() {
        let dir = std::env::temp_dir().join(format!("bioopera-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open(disk).unwrap();
            store.put(Space::Template, "t", &b"body"[..]).unwrap();
            store.compact().unwrap();
            store.put(Space::Template, "u", &b"more"[..]).unwrap();
        }
        {
            let disk = crate::disk::FileDisk::open(&dir).unwrap();
            let store = Store::open(disk).unwrap();
            assert_eq!(
                store.get(Space::Template, "t").unwrap().unwrap(),
                &b"body"[..]
            );
            assert_eq!(
                store.get(Space::Template, "u").unwrap().unwrap(),
                &b"more"[..]
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_many_coalesces_batches_into_one_append() {
        let (disk, store) = open_mem();
        let before = disk.mutation_count();
        let mut b1 = Batch::new();
        b1.put(Space::Instance, "a", &b"1"[..]);
        let mut b2 = Batch::new();
        b2.put(Space::History, "h", &b"2"[..])
            .delete(Space::Instance, "missing");
        store.apply_many([b1, b2, Batch::new()]).unwrap();
        assert_eq!(
            disk.mutation_count(),
            before + 1,
            "group commit must cost exactly one disk append"
        );
        assert_eq!(store.stats().batches_applied, 2);
        assert_eq!(store.get(Space::Instance, "a").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(store.get(Space::History, "h").unwrap().unwrap(), &b"2"[..]);
        // Reopen replays both frames independently.
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(recovered.stats().batches_applied, 2);
        assert_eq!(
            recovered.get(Space::History, "h").unwrap().unwrap(),
            &b"2"[..]
        );
    }

    #[test]
    fn apply_many_crash_preserves_whole_batch_prefix() {
        // Tear the coalesced append inside the *second* frame: recovery
        // must surface batch 1 completely and batch 2 not at all.
        let mut b1 = Batch::new();
        b1.put(Space::Instance, "first", &b"1"[..]);
        let mut b2 = Batch::new();
        b2.put(Space::Instance, "second-a", &b"2"[..])
            .put(Space::Instance, "second-b", &b"3"[..]);
        let frame1_len = wal::encode_frame(&b1.ops).len() as u64;

        let (disk, store) = open_mem();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(frame1_len + 5, true)));
        assert!(store.apply_many([b1, b2]).is_err());
        assert!(store.is_poisoned());
        disk.reboot();

        let recovered = Store::open(disk).unwrap();
        assert!(recovered.stats().recovered_torn_tail);
        assert_eq!(
            recovered.get(Space::Instance, "first").unwrap().unwrap(),
            &b"1"[..]
        );
        assert_eq!(recovered.get(Space::Instance, "second-a").unwrap(), None);
        assert_eq!(recovered.get(Space::Instance, "second-b").unwrap(), None);
    }

    #[test]
    fn compaction_policy_rolls_the_wal_automatically() {
        let (disk, store) = open_mem();
        store.set_compaction_policy(Some(CompactionPolicy {
            wal_bytes_threshold: 256,
            min_wal_batches: 2,
        }));
        let epoch0 = store.stats().epoch;
        for i in 0..32 {
            store
                .put(
                    Space::History,
                    format!("ev/{i:03}"),
                    Bytes::from(vec![0u8; 64]),
                )
                .unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.epoch > epoch0,
            "policy must have compacted at least once"
        );
        assert!(
            stats.wal_bytes < 256 + 2 * 128,
            "live WAL stays near the threshold, got {}",
            stats.wal_bytes
        );
        assert_eq!(stats.records, 32);
        // Everything survives recovery regardless of where the epoch rolled.
        drop(store);
        let recovered = Store::open(disk).unwrap();
        assert_eq!(recovered.len(Space::History).unwrap(), 32);
    }

    #[test]
    fn len_agrees_with_scan_prefix_across_mutations_and_reopen() {
        let (disk, store) = open_mem();
        let check = |store: &Store<MemDisk>| {
            for space in Space::ALL {
                assert_eq!(
                    store.len(space).unwrap(),
                    store.scan_prefix(space, "").unwrap().len(),
                    "len diverged from scan in {}",
                    space.name()
                );
                assert_eq!(
                    store.is_empty(space).unwrap(),
                    store.scan_prefix(space, "").unwrap().is_empty()
                );
            }
        };
        check(&store);
        for i in 0..50 {
            store
                .put(Space::History, format!("k{i}"), Bytes::from(vec![i as u8]))
                .unwrap();
            store
                .put(Space::Instance, format!("k{}", i % 7), &b"x"[..])
                .unwrap();
            if i % 3 == 0 {
                store.delete(Space::History, format!("k{}", i / 2)).unwrap();
            }
            check(&store);
        }
        store.compact().unwrap();
        check(&store);
        store.delete(Space::Instance, "k0").unwrap();
        check(&store);
        drop(store);
        let recovered = Store::open(disk).unwrap();
        check(&recovered);
        assert_eq!(recovered.len(Space::Instance).unwrap(), 6);
    }

    #[test]
    fn pre_overhaul_disk_image_reopens_byte_compatibly() {
        // A literal on-disk image in the frozen format (magic B1 0A, LE
        // length, LE CRC-32, op-count payload), built byte-by-byte rather
        // than through the current encoder, exactly as the pre-overhaul
        // engine laid it down: MANIFEST at epoch 2, a snapshot with two
        // records, a WAL with one further batch (an overwrite + a delete).
        fn frame(ops: &[(u8, u8, &str, &[u8])]) -> Vec<u8> {
            let mut payload = Vec::new();
            payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for (tag, space, key, value) in ops {
                payload.push(*tag);
                payload.push(*space);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key.as_bytes());
                if *tag == 0 {
                    payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    payload.extend_from_slice(value);
                }
            }
            let mut out = vec![0xB1, 0x0A];
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
            out
        }

        let disk = MemDisk::new();
        disk.write_atomic(MANIFEST, b"2").unwrap();
        disk.write_atomic(
            "snapshot-000002",
            &frame(&[
                (0, 0, "tmpl/blast", b"{\"tasks\":3}"),
                (0, 3, "ev/001", b"started"),
            ]),
        )
        .unwrap();
        let mut log = frame(&[(0, 3, "ev/001", b"finished"), (0, 1, "inst/7", b"running")]);
        log.extend_from_slice(&frame(&[(1, 0, "tmpl/blast", b"")]));
        disk.write_atomic("wal-000002", &log).unwrap();

        let store = Store::open(disk).unwrap();
        let stats = store.stats();
        assert_eq!(stats.epoch, 2);
        assert!(!stats.recovered_torn_tail);
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(store.get(Space::Template, "tmpl/blast").unwrap(), None);
        assert_eq!(
            store.get(Space::History, "ev/001").unwrap().unwrap(),
            &b"finished"[..]
        );
        assert_eq!(
            store.get(Space::Instance, "inst/7").unwrap().unwrap(),
            &b"running"[..]
        );
        // And the new engine's own output round-trips on top of it.
        store.put(Space::History, "ev/002", &b"post"[..]).unwrap();
        store.compact().unwrap();
    }
}
