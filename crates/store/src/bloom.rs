//! **Per-run bloom filter** — a compact membership summary written into
//! each sorted-run file's metadata so point lookups can skip runs that
//! cannot contain a key without touching their data blocks.
//!
//! Double hashing (Kirsch–Mitzenmacher): two independent 64-bit FNV-1a
//! style hashes `h1`, `h2` derive all `k` probe positions as
//! `h1 + i * h2`.  `h2` is forced odd so the probe sequence cycles
//! through the whole bit array.  Keys are inserted as `(space, key)`
//! pairs, matching the run lookup granularity.
//!
//! Guarantees:
//! * **Zero false negatives by construction** — `may_contain` returns
//!   `true` for every inserted pair (property-tested).
//! * At the default ~10 bits/key with `k = 7` probes the false-positive
//!   rate is below ~2% in expectation; the measured rate is asserted
//!   under [`FP_BOUND`] in the property tests.

/// Bits reserved per expected key.  10 bits/key with 7 probes gives a
/// theoretical false-positive rate of about 0.8%.
pub const BITS_PER_KEY: usize = 10;

/// Number of probe positions per key.
pub const PROBES: u32 = 7;

/// Stated upper bound on the measured false-positive rate at
/// [`BITS_PER_KEY`] density (generous headroom over the ~0.8%
/// expectation; asserted by the property tests).
pub const FP_BOUND: f64 = 0.03;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent hashes of `(space, key)` for double hashing.
/// Public so a point lookup probing many runs can hash the key once
/// and reuse the pair via [`Bloom::may_contain_hashed`].
pub fn hash_pair(space: u8, key: &str) -> (u64, u64) {
    let mut h1 = FNV_OFFSET;
    let mut h2 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
    h1 = (h1 ^ space as u64).wrapping_mul(FNV_PRIME);
    h2 = (h2 ^ space as u64).wrapping_mul(FNV_PRIME ^ 0xff);
    for &b in key.as_bytes() {
        h1 = (h1 ^ b as u64).wrapping_mul(FNV_PRIME);
        h2 = (h2 ^ b as u64).wrapping_mul(FNV_PRIME ^ 0xff);
    }
    // Final avalanche so short keys still spread across the bit array.
    h1 ^= h1 >> 33;
    h1 = h1.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h1 ^= h1 >> 33;
    h2 ^= h2 >> 29;
    h2 = h2.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h2 ^= h2 >> 29;
    (h1, h2 | 1)
}

/// A fixed-size bloom filter over `(space, key)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    k: u32,
    words: Vec<u64>,
}

impl Bloom {
    /// An empty filter sized for `expected_keys` insertions at
    /// [`BITS_PER_KEY`] density (minimum one word so the probe math
    /// never divides by zero).
    pub fn with_capacity(expected_keys: usize) -> Bloom {
        let bits = (expected_keys * BITS_PER_KEY).max(64);
        Bloom {
            k: PROBES,
            words: vec![0u64; bits.div_ceil(64)],
        }
    }

    /// Total bits in the array.
    pub fn bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Map a probe hash onto a bit index without a division: Lemire's
    /// multiply-shift reduction, uniform over `0..nbits` (a u64 modulo
    /// costs tens of cycles and sits on the hot read path 7x per run).
    #[inline]
    fn reduce(h: u64, nbits: u64) -> u64 {
        ((h as u128 * nbits as u128) >> 64) as u64
    }

    pub fn insert(&mut self, space: u8, key: &str) {
        let nbits = self.bits() as u64;
        let (h1, h2) = hash_pair(space, key);
        for i in 0..self.k as u64 {
            let bit = Self::reduce(h1.wrapping_add(i.wrapping_mul(h2)), nbits);
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// `false` means the pair was definitely never inserted; `true`
    /// means it *may* have been.
    pub fn may_contain(&self, space: u8, key: &str) -> bool {
        self.may_contain_hashed(hash_pair(space, key))
    }

    /// [`Bloom::may_contain`] with the hash pair precomputed — a lookup
    /// across many runs hashes the key once and probes every filter.
    pub fn may_contain_hashed(&self, (h1, h2): (u64, u64)) -> bool {
        let nbits = self.bits() as u64;
        for i in 0..self.k as u64 {
            let bit = Self::reduce(h1.wrapping_add(i.wrapping_mul(h2)), nbits);
            if self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Append the wire encoding: `k` (u32 LE), word count (u32 LE),
    /// then each word as u64 LE.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decode from the front of `input`, returning the filter and the
    /// number of bytes consumed, or `None` when the input is truncated
    /// or degenerate (zero probes / zero words).
    pub fn decode(input: &[u8]) -> Option<(Bloom, usize)> {
        if input.len() < 8 {
            return None;
        }
        let k = u32::from_le_bytes(input[0..4].try_into().ok()?);
        let nwords = u32::from_le_bytes(input[4..8].try_into().ok()?) as usize;
        if k == 0 || nwords == 0 {
            return None;
        }
        let need = 8 + nwords * 8;
        if input.len() < need {
            return None;
        }
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let at = 8 + i * 8;
            words.push(u64::from_le_bytes(input[at..at + 8].try_into().ok()?));
        }
        Some((Bloom { k, words }, need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_the_wire_encoding() {
        let mut b = Bloom::with_capacity(100);
        for i in 0..100 {
            b.insert((i % 4) as u8, &format!("key/{i}"));
        }
        let mut buf = vec![0xAA]; // leading garbage the decoder must skip past
        b.encode_into(&mut buf);
        buf.extend_from_slice(&[0xBB, 0xCC]); // trailing bytes ignored
        let (decoded, consumed) = Bloom::decode(&buf[1..]).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(consumed, buf.len() - 3);
    }

    #[test]
    fn truncated_or_degenerate_encodings_are_rejected() {
        let mut b = Bloom::with_capacity(10);
        b.insert(0, "x");
        let mut buf = Vec::new();
        b.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Bloom::decode(&buf[..cut]).is_none(), "cut at {cut}");
        }
        assert!(Bloom::decode(&[0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_none());
        assert!(Bloom::decode(&[7, 0, 0, 0, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn spaces_are_part_of_the_identity() {
        let mut b = Bloom::with_capacity(4);
        b.insert(1, "same-key");
        assert!(b.may_contain(1, "same-key"));
        // A single insertion in a generously-sized filter must not alias
        // the identical key under a different space.
        assert!(!b.may_contain(2, "same-key"));
    }
}
