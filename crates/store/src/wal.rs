//! Write-ahead log framing and replay.
//!
//! The WAL is a sequence of **frames**, each carrying one atomic batch of
//! operations:
//!
//! ```text
//! +--------+--------+----------+-----------------+
//! | magic  | len    | crc32    | payload (len B) |
//! | 2 B    | 4 B LE | 4 B LE   |                 |
//! +--------+--------+----------+-----------------+
//! ```
//!
//! Replay stops at the first frame whose header or checksum is invalid *and*
//! after which no complete valid frame exists — that is a torn tail left by
//! a crash and is discarded (its exact byte count is reported), as in any
//! production WAL.  An invalid frame *followed by a later valid frame* is
//! genuine mid-log corruption: skipping it would silently drop committed
//! batches, so replay reports a typed [`StoreError::Corruption`] instead.
//!
//! Replay is **zero-copy**: [`replay_shared`] takes the whole log image as
//! one shared [`Bytes`] buffer and every decoded value is a slice into it
//! (no per-record allocation or copy), which is what keeps recovery time
//! and peak memory linear in the log size rather than record count.

use crate::crc::crc32;
use crate::error::{StoreError, StoreResult};
use bytes::{Buf, BufMut, Bytes};

/// Frame magic: distinguishes frame starts from arbitrary garbage with high
/// probability and guards against replaying a file that is not a WAL.
pub const MAGIC: [u8; 2] = [0xB1, 0x0A];

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 2 + 4 + 4;

/// Maximum payload accepted on replay; guards against a corrupted length
/// field causing an absurd allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A single logical operation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or replace `key` in `space` with `value`.
    Put {
        space: u8,
        key: String,
        value: Bytes,
    },
    /// Remove `key` from `space`.
    Delete { space: u8, key: String },
}

impl WalOp {
    /// Borrowed view, for encoding without cloning.
    pub fn as_op_ref(&self) -> WalOpRef<'_> {
        match self {
            WalOp::Put { space, key, value } => WalOpRef::Put {
                space: *space,
                key,
                value,
            },
            WalOp::Delete { space, key } => WalOpRef::Delete { space: *space, key },
        }
    }
}

/// A borrowed operation: what [`encode_frame_into`] consumes.  Lets the
/// engine stream a snapshot straight out of the memtable without first
/// materializing owned [`WalOp`]s for every record.
#[derive(Debug, Clone, Copy)]
pub enum WalOpRef<'a> {
    /// Insert or replace `key` in `space` with `value`.
    Put {
        space: u8,
        key: &'a str,
        value: &'a [u8],
    },
    /// Remove `key` from `space`.
    Delete { space: u8, key: &'a str },
}

/// Encode one batch of operations as a framed WAL record appended to
/// `out`.  `scratch` is a reusable payload buffer (cleared on entry) so a
/// caller encoding many frames — group commit, snapshot streaming — does
/// one allocation total, not one per frame.
pub fn encode_frame_into(out: &mut Vec<u8>, scratch: &mut Vec<u8>, ops: &[WalOpRef<'_>]) {
    scratch.clear();
    scratch.put_u32_le(ops.len() as u32);
    for op in ops {
        match op {
            WalOpRef::Put { space, key, value } => {
                scratch.put_u8(0);
                scratch.put_u8(*space);
                scratch.put_u32_le(key.len() as u32);
                scratch.put_slice(key.as_bytes());
                scratch.put_u32_le(value.len() as u32);
                scratch.put_slice(value);
            }
            WalOpRef::Delete { space, key } => {
                scratch.put_u8(1);
                scratch.put_u8(*space);
                scratch.put_u32_le(key.len() as u32);
                scratch.put_slice(key.as_bytes());
            }
        }
    }
    out.reserve(HEADER_LEN + scratch.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(scratch).to_le_bytes());
    out.extend_from_slice(scratch);
}

/// Encode one batch of operations into a framed WAL record.
pub fn encode_frame(ops: &[WalOp]) -> Vec<u8> {
    let refs: Vec<WalOpRef<'_>> = ops.iter().map(WalOp::as_op_ref).collect();
    let mut frame = Vec::new();
    let mut scratch = Vec::with_capacity(64 * ops.len());
    encode_frame_into(&mut frame, &mut scratch, &refs);
    frame
}

/// Decode the payload at `log[start..start + len]`.  Values are zero-copy
/// slices of `log`; keys are validated in place and copied once into their
/// owned `String` (they become map keys and must own their bytes).
fn decode_payload(log: &Bytes, start: usize, len: usize) -> StoreResult<Vec<WalOp>> {
    let corrupt = |m: &str| StoreError::Corruption(m.to_string());
    let mut cursor = &log.as_slice()[start..start + len];
    // Absolute offset of the cursor head within `log`, for slice() calls.
    let abs = |cursor: &[u8]| start + len - cursor.remaining();
    if cursor.remaining() < 4 {
        return Err(corrupt("payload shorter than op count"));
    }
    let count = cursor.get_u32_le() as usize;
    let mut ops = Vec::with_capacity(count.min(len / 2 + 1));
    for _ in 0..count {
        if cursor.remaining() < 2 {
            return Err(corrupt("truncated op header"));
        }
        let tag = cursor.get_u8();
        let space = cursor.get_u8();
        if cursor.remaining() < 4 {
            return Err(corrupt("truncated key length"));
        }
        let klen = cursor.get_u32_le() as usize;
        if cursor.remaining() < klen {
            return Err(corrupt("truncated key"));
        }
        let key = std::str::from_utf8(&cursor[..klen])
            .map_err(|_| corrupt("key is not utf-8"))?
            .to_string();
        cursor.advance(klen);
        match tag {
            0 => {
                if cursor.remaining() < 4 {
                    return Err(corrupt("truncated value length"));
                }
                let vlen = cursor.get_u32_le() as usize;
                if cursor.remaining() < vlen {
                    return Err(corrupt("truncated value"));
                }
                let at = abs(cursor);
                let value = log.slice(at..at + vlen);
                cursor.advance(vlen);
                ops.push(WalOp::Put { space, key, value });
            }
            1 => ops.push(WalOp::Delete { space, key }),
            t => return Err(corrupt(&format!("unknown op tag {t}"))),
        }
    }
    if cursor.has_remaining() {
        return Err(corrupt("trailing bytes in payload"));
    }
    Ok(ops)
}

/// Outcome of a WAL replay.
#[derive(Debug)]
pub struct Replay {
    /// The decoded batches, in log order.
    pub batches: Vec<Vec<WalOp>>,
    /// Number of bytes of valid log consumed; any torn tail is past this.
    pub valid_len: usize,
    /// Bytes discarded past `valid_len` (the torn tail's size; 0 when the
    /// whole image replayed).
    pub truncated_bytes: usize,
    /// True when a torn tail was discarded.
    pub torn_tail: bool,
}

/// Validate the frame header at the start of `rest`: `(payload_len,
/// consumed)`, or `None` when the header, length or checksum is invalid.
fn parse_frame(rest: &[u8]) -> Option<(usize, usize)> {
    if rest.len() < HEADER_LEN || rest[..2] != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes([rest[2], rest[3], rest[4], rest[5]]);
    let crc = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]);
    if len > MAX_PAYLOAD || rest.len() < HEADER_LEN + len as usize {
        return None;
    }
    let payload = &rest[HEADER_LEN..HEADER_LEN + len as usize];
    (crc32(payload) == crc).then_some((len as usize, HEADER_LEN + len as usize))
}

/// Classify the malformed region at `tail` (the log past the last valid
/// frame): `Ok(())` when it is a torn tail, `Err` when a complete valid
/// frame exists inside it (mid-log corruption).
///
/// The scan is memchr-style — it jumps between occurrences of the magic
/// byte pair instead of re-probing every offset — and the expensive CRC
/// verification of plausible-looking candidates is bounded by a linear
/// byte budget.  A crash-generated torn tail is a byte prefix of one
/// frame and essentially never contains CRC-plausible candidates, so the
/// budget is only ever exhausted by at-rest corruption patterns; in that
/// case we classify as corruption, the conservative direction (refuse to
/// silently drop possibly-committed batches).
fn classify_tail(off: usize, tail: &[u8]) -> StoreResult<()> {
    // CRC work allowed before giving up: a few full-tail passes.
    let mut crc_budget = tail.len().saturating_mul(4).max(64 * 1024);
    let mut probe = 1usize;
    while probe + HEADER_LEN <= tail.len() {
        // Jump to the next occurrence of the first magic byte.
        match tail[probe..].iter().position(|&b| b == MAGIC[0]) {
            Some(d) => probe += d,
            None => break,
        }
        if probe + HEADER_LEN > tail.len() {
            break;
        }
        if tail[probe + 1] != MAGIC[1] {
            probe += 1;
            continue;
        }
        // Plausible header?  Only then is a CRC check worth paying for.
        let len = u32::from_le_bytes([
            tail[probe + 2],
            tail[probe + 3],
            tail[probe + 4],
            tail[probe + 5],
        ]) as usize;
        if len <= MAX_PAYLOAD as usize && probe + HEADER_LEN + len <= tail.len() {
            if crc_budget < len {
                return Err(StoreError::Corruption(format!(
                    "invalid frame at byte {off} followed by {} bytes of \
                     repeated frame-like data: classification budget exhausted, \
                     refusing to drop possibly-committed batches",
                    tail.len()
                )));
            }
            crc_budget -= len;
            if parse_frame(&tail[probe..]).is_some() {
                return Err(StoreError::Corruption(format!(
                    "invalid frame at byte {off} followed by a valid frame at byte {}: \
                     mid-log corruption, refusing to drop committed batches",
                    off + probe
                )));
            }
        }
        probe += 2;
    }
    Ok(())
}

/// Replay a WAL byte image into its batches, zero-copy: every decoded
/// value is a slice of `log`.
///
/// A malformed region at the very end of the image is treated as a torn
/// write and discarded, with the number of discarded bytes reported in
/// [`Replay::truncated_bytes`].  A malformed region *followed by a later
/// valid frame* indicates corruption of the middle of the log and produces
/// a typed [`StoreError::Corruption`], because silently skipping committed
/// batches would break atomicity and durability guarantees.
pub fn replay_shared(log: Bytes) -> StoreResult<Replay> {
    let mut batches = Vec::new();
    let mut off = 0usize;
    let image = log.as_slice();
    while off < image.len() {
        match parse_frame(&image[off..]) {
            Some((payload_len, consumed)) => {
                batches.push(decode_payload(&log, off + HEADER_LEN, payload_len)?);
                off += consumed;
            }
            None => {
                // Invalid frame.  If any complete valid frame exists later
                // in the image, this is mid-log corruption, not a torn
                // tail: a crash tears only the *last* write, so committed
                // frames can never follow the tear.
                classify_tail(off, &image[off..])?;
                return Ok(Replay {
                    batches,
                    valid_len: off,
                    truncated_bytes: image.len() - off,
                    torn_tail: true,
                });
            }
        }
    }
    Ok(Replay {
        batches,
        valid_len: off,
        truncated_bytes: 0,
        torn_tail: false,
    })
}

/// Replay a borrowed WAL byte image (copies it once into a shared buffer,
/// then decodes zero-copy).  Callers holding an owned image should prefer
/// [`replay_shared`].
pub fn replay(log: &[u8]) -> StoreResult<Replay> {
    replay_shared(Bytes::copy_from_slice(log))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Put {
                space: 1,
                key: "inst/1/task/a".into(),
                value: Bytes::from_static(b"{\"state\":\"running\"}"),
            },
            WalOp::Delete {
                space: 3,
                key: "old".into(),
            },
            WalOp::Put {
                space: 0,
                key: "tmpl/allvsall".into(),
                value: Bytes::from_static(b"..."),
            },
        ]
    }

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(&sample_ops());
        let replay = replay(&frame).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0], sample_ops());
        assert_eq!(replay.valid_len, frame.len());
    }

    #[test]
    fn roundtrip_many_frames() {
        let mut log = Vec::new();
        for i in 0..50 {
            let ops = vec![WalOp::Put {
                space: (i % 4) as u8,
                key: format!("k{i}"),
                value: Bytes::from(vec![i as u8; i]),
            }];
            log.extend_from_slice(&encode_frame(&ops));
        }
        let replay = replay(&log).unwrap();
        assert_eq!(replay.batches.len(), 50);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn encode_frame_into_is_bit_identical_and_reuses_buffers() {
        let ops = sample_ops();
        let oracle = encode_frame(&ops);
        let refs: Vec<WalOpRef<'_>> = ops.iter().map(WalOp::as_op_ref).collect();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        encode_frame_into(&mut out, &mut scratch, &refs);
        assert_eq!(out, oracle);
        // A second frame appends after the first with the same scratch.
        encode_frame_into(&mut out, &mut scratch, &refs);
        assert_eq!(out.len(), 2 * oracle.len());
        assert_eq!(&out[oracle.len()..], oracle.as_slice());
    }

    #[test]
    fn replay_shared_values_are_zero_copy_slices() {
        let big = vec![0xAB; 4096];
        let frame = encode_frame(&[WalOp::Put {
            space: 2,
            key: "fat".into(),
            value: Bytes::from(big.clone()),
        }]);
        let shared = Bytes::from(frame);
        let base = shared.as_slice().as_ptr() as usize;
        let end = base + shared.len();
        let replay = replay_shared(shared.clone()).unwrap();
        let WalOp::Put { value, .. } = &replay.batches[0][0] else {
            panic!("expected put");
        };
        assert_eq!(value.as_slice(), big.as_slice());
        // The decoded value points into the shared log image.
        let vptr = value.as_slice().as_ptr() as usize;
        assert!(
            vptr >= base && vptr + value.len() <= end,
            "value was copied out of the shared buffer"
        );
    }

    #[test]
    fn empty_batch_roundtrip() {
        let frame = encode_frame(&[]);
        let replay = replay(&frame).unwrap();
        assert_eq!(replay.batches, vec![Vec::<WalOp>::new()]);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut_point() {
        let mut log = encode_frame(&sample_ops());
        let first_len = log.len();
        log.extend_from_slice(&encode_frame(&[WalOp::Delete {
            space: 2,
            key: "x".into(),
        }]));
        for cut in first_len + 1..log.len() {
            let replay = replay(&log[..cut]).unwrap();
            assert_eq!(replay.batches.len(), 1, "cut at {cut}");
            assert!(replay.torn_tail, "cut at {cut}");
            assert_eq!(replay.valid_len, first_len);
            assert_eq!(replay.truncated_bytes, cut - first_len);
        }
    }

    #[test]
    fn bitflip_in_tail_frame_is_torn_tail() {
        let mut log = encode_frame(&sample_ops());
        let n = log.len();
        log[n - 1] ^= 0x40;
        let replay = replay(&log).unwrap();
        assert_eq!(replay.batches.len(), 0);
        assert!(replay.torn_tail);
        assert_eq!(replay.truncated_bytes, n);
    }

    #[test]
    fn bitflip_mid_log_is_typed_corruption() {
        let mut log = encode_frame(&sample_ops());
        let first_len = log.len();
        log.extend_from_slice(&encode_frame(&sample_ops()));
        // Flip a payload byte of the first frame: it fails CRC, but the
        // intact second frame proves this is corruption rather than a torn
        // tail, and replay must refuse to silently drop committed batches.
        for off in [2, HEADER_LEN + 2, first_len - 1] {
            let mut bad = log.clone();
            bad[off] ^= 0x01;
            assert!(
                matches!(replay(&bad), Err(StoreError::Corruption(_))),
                "flip at byte {off} must be typed corruption"
            );
        }
    }

    #[test]
    fn large_torn_tail_of_repeated_magic_bytes_replays_linearly() {
        // Regression for the O(n²) corruption probe: a 1 MiB torn tail
        // consisting entirely of repeated MAGIC bytes.  Every even offset
        // is a candidate frame start, but each one's length field decodes
        // to ~0x0AB10AB1 (> MAX_PAYLOAD), so the scan must skip each in
        // O(1) and classify the whole region as a torn tail near-instantly.
        let mut log = encode_frame(&sample_ops());
        let first_len = log.len();
        let tail_len = 1 << 20;
        for _ in 0..tail_len / 2 {
            log.extend_from_slice(&MAGIC);
        }
        let start = std::time::Instant::now();
        let replay = replay(&log).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.valid_len, first_len);
        assert_eq!(replay.truncated_bytes, tail_len);
        // Generous wall-clock bound: the linear scan takes microseconds;
        // the old per-offset re-probe took visibly long under slow CI.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "corruption probe is not linear: took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn crc_plausible_header_spam_exhausts_budget_into_typed_corruption() {
        // A tail of many headers whose length fields are plausible (they
        // fit in the remaining bytes) but whose CRCs are wrong forces the
        // classifier to spend CRC work per candidate.  The linear budget
        // must cut this off with a typed corruption error — never a hang,
        // never a silent drop.
        let mut log = encode_frame(&sample_ops());
        let unit = 64usize;
        let repeats = 4096usize;
        let total = unit * repeats;
        for i in 0..repeats {
            let mut header = Vec::with_capacity(unit);
            header.extend_from_slice(&MAGIC);
            // Claim a payload spanning most of the remaining tail.
            let remaining = total - i * unit - HEADER_LEN;
            header.extend_from_slice(&(remaining as u32).to_le_bytes());
            header.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // wrong CRC
            header.resize(unit, 0x55);
            log.extend_from_slice(&header);
        }
        let start = std::time::Instant::now();
        assert!(matches!(replay(&log), Err(StoreError::Corruption(_))));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "classification budget did not bound the probe: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn absurd_length_field_rejected() {
        let mut frame = encode_frame(&sample_ops());
        // Overwrite the length with something huge.
        frame[2..6].copy_from_slice(&(u32::MAX).to_le_bytes());
        let replay = replay(&frame).unwrap();
        assert_eq!(replay.batches.len(), 0);
        assert!(replay.torn_tail);
    }

    #[test]
    fn garbage_prefix_rejected() {
        let log = b"not a wal at all".to_vec();
        let replay = replay(&log).unwrap();
        assert!(replay.batches.is_empty());
        assert!(replay.torn_tail);
    }

    #[test]
    fn unknown_tag_is_corruption() {
        // Hand-build a payload with a bad tag.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(9); // bad tag
        payload.push(0);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(b'k');
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(replay(&frame), Err(StoreError::Corruption(_))));
    }
}
