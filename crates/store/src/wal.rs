//! Write-ahead log framing and replay.
//!
//! The WAL is a sequence of **frames**, each carrying one atomic batch of
//! operations:
//!
//! ```text
//! +--------+--------+----------+-----------------+
//! | magic  | len    | crc32    | payload (len B) |
//! | 2 B    | 4 B LE | 4 B LE   |                 |
//! +--------+--------+----------+-----------------+
//! ```
//!
//! Replay stops at the first frame whose header or checksum is invalid *and*
//! after which no complete valid frame exists — that is a torn tail left by
//! a crash and is discarded (its exact byte count is reported), as in any
//! production WAL.  An invalid frame *followed by a later valid frame* is
//! genuine mid-log corruption: skipping it would silently drop committed
//! batches, so replay reports a typed [`StoreError::Corruption`] instead.

use crate::crc::crc32;
use crate::error::{StoreError, StoreResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic: distinguishes frame starts from arbitrary garbage with high
/// probability and guards against replaying a file that is not a WAL.
pub const MAGIC: [u8; 2] = [0xB1, 0x0A];

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 2 + 4 + 4;

/// Maximum payload accepted on replay; guards against a corrupted length
/// field causing an absurd allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A single logical operation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or replace `key` in `space` with `value`.
    Put {
        space: u8,
        key: String,
        value: Bytes,
    },
    /// Remove `key` from `space`.
    Delete { space: u8, key: String },
}

/// Encode one batch of operations into a framed WAL record.
pub fn encode_frame(ops: &[WalOp]) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(64 * ops.len());
    payload.put_u32_le(ops.len() as u32);
    for op in ops {
        match op {
            WalOp::Put { space, key, value } => {
                payload.put_u8(0);
                payload.put_u8(*space);
                payload.put_u32_le(key.len() as u32);
                payload.put_slice(key.as_bytes());
                payload.put_u32_le(value.len() as u32);
                payload.put_slice(value);
            }
            WalOp::Delete { space, key } => {
                payload.put_u8(1);
                payload.put_u8(*space);
                payload.put_u32_le(key.len() as u32);
                payload.put_slice(key.as_bytes());
            }
        }
    }
    let payload = payload.freeze();
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(mut payload: &[u8]) -> StoreResult<Vec<WalOp>> {
    let corrupt = |m: &str| StoreError::Corruption(m.to_string());
    if payload.remaining() < 4 {
        return Err(corrupt("payload shorter than op count"));
    }
    let count = payload.get_u32_le() as usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        if payload.remaining() < 2 {
            return Err(corrupt("truncated op header"));
        }
        let tag = payload.get_u8();
        let space = payload.get_u8();
        if payload.remaining() < 4 {
            return Err(corrupt("truncated key length"));
        }
        let klen = payload.get_u32_le() as usize;
        if payload.remaining() < klen {
            return Err(corrupt("truncated key"));
        }
        let key =
            String::from_utf8(payload[..klen].to_vec()).map_err(|_| corrupt("key is not utf-8"))?;
        payload.advance(klen);
        match tag {
            0 => {
                if payload.remaining() < 4 {
                    return Err(corrupt("truncated value length"));
                }
                let vlen = payload.get_u32_le() as usize;
                if payload.remaining() < vlen {
                    return Err(corrupt("truncated value"));
                }
                let value = Bytes::copy_from_slice(&payload[..vlen]);
                payload.advance(vlen);
                ops.push(WalOp::Put { space, key, value });
            }
            1 => ops.push(WalOp::Delete { space, key }),
            t => return Err(corrupt(&format!("unknown op tag {t}"))),
        }
    }
    if payload.has_remaining() {
        return Err(corrupt("trailing bytes in payload"));
    }
    Ok(ops)
}

/// Outcome of a WAL replay.
#[derive(Debug)]
pub struct Replay {
    /// The decoded batches, in log order.
    pub batches: Vec<Vec<WalOp>>,
    /// Number of bytes of valid log consumed; any torn tail is past this.
    pub valid_len: usize,
    /// Bytes discarded past `valid_len` (the torn tail's size; 0 when the
    /// whole image replayed).
    pub truncated_bytes: usize,
    /// True when a torn tail was discarded.
    pub torn_tail: bool,
}

/// Parse one frame at the start of `rest`: `(payload, bytes consumed)`, or
/// `None` when the header, length or checksum is invalid.
fn parse_frame(rest: &[u8]) -> Option<(&[u8], usize)> {
    if rest.len() < HEADER_LEN || rest[..2] != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes([rest[2], rest[3], rest[4], rest[5]]);
    let crc = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]);
    if len > MAX_PAYLOAD || rest.len() < HEADER_LEN + len as usize {
        return None;
    }
    let payload = &rest[HEADER_LEN..HEADER_LEN + len as usize];
    (crc32(payload) == crc).then_some((payload, HEADER_LEN + len as usize))
}

/// Replay a WAL byte image into its batches.
///
/// A malformed region at the very end of the image is treated as a torn
/// write and discarded, with the number of discarded bytes reported in
/// [`Replay::truncated_bytes`].  A malformed region *followed by a later
/// valid frame* indicates corruption of the middle of the log and produces
/// a typed [`StoreError::Corruption`], because silently skipping committed
/// batches would break atomicity and durability guarantees.
pub fn replay(log: &[u8]) -> StoreResult<Replay> {
    let mut batches = Vec::new();
    let mut off = 0usize;
    while off < log.len() {
        match parse_frame(&log[off..]) {
            Some((payload, consumed)) => {
                batches.push(decode_payload(payload)?);
                off += consumed;
            }
            None => {
                // Invalid frame.  If any complete valid frame exists later
                // in the image, this is mid-log corruption, not a torn
                // tail: a crash tears only the *last* write, so committed
                // frames can never follow the tear.
                let tail = &log[off..];
                let mut probe = 1usize;
                while probe + HEADER_LEN <= tail.len() {
                    if tail[probe..probe + 2] == MAGIC && parse_frame(&tail[probe..]).is_some() {
                        return Err(StoreError::Corruption(format!(
                            "invalid frame at byte {off} followed by a valid frame at byte {}: \
                             mid-log corruption, refusing to drop committed batches",
                            off + probe
                        )));
                    }
                    probe += 1;
                }
                return Ok(Replay {
                    batches,
                    valid_len: off,
                    truncated_bytes: log.len() - off,
                    torn_tail: true,
                });
            }
        }
    }
    Ok(Replay {
        batches,
        valid_len: off,
        truncated_bytes: 0,
        torn_tail: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Put {
                space: 1,
                key: "inst/1/task/a".into(),
                value: Bytes::from_static(b"{\"state\":\"running\"}"),
            },
            WalOp::Delete {
                space: 3,
                key: "old".into(),
            },
            WalOp::Put {
                space: 0,
                key: "tmpl/allvsall".into(),
                value: Bytes::from_static(b"..."),
            },
        ]
    }

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(&sample_ops());
        let replay = replay(&frame).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0], sample_ops());
        assert_eq!(replay.valid_len, frame.len());
    }

    #[test]
    fn roundtrip_many_frames() {
        let mut log = Vec::new();
        for i in 0..50 {
            let ops = vec![WalOp::Put {
                space: (i % 4) as u8,
                key: format!("k{i}"),
                value: Bytes::from(vec![i as u8; i]),
            }];
            log.extend_from_slice(&encode_frame(&ops));
        }
        let replay = replay(&log).unwrap();
        assert_eq!(replay.batches.len(), 50);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let frame = encode_frame(&[]);
        let replay = replay(&frame).unwrap();
        assert_eq!(replay.batches, vec![Vec::<WalOp>::new()]);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut_point() {
        let mut log = encode_frame(&sample_ops());
        let first_len = log.len();
        log.extend_from_slice(&encode_frame(&[WalOp::Delete {
            space: 2,
            key: "x".into(),
        }]));
        for cut in first_len + 1..log.len() {
            let replay = replay(&log[..cut]).unwrap();
            assert_eq!(replay.batches.len(), 1, "cut at {cut}");
            assert!(replay.torn_tail, "cut at {cut}");
            assert_eq!(replay.valid_len, first_len);
            assert_eq!(replay.truncated_bytes, cut - first_len);
        }
    }

    #[test]
    fn bitflip_in_tail_frame_is_torn_tail() {
        let mut log = encode_frame(&sample_ops());
        let n = log.len();
        log[n - 1] ^= 0x40;
        let replay = replay(&log).unwrap();
        assert_eq!(replay.batches.len(), 0);
        assert!(replay.torn_tail);
        assert_eq!(replay.truncated_bytes, n);
    }

    #[test]
    fn bitflip_mid_log_is_typed_corruption() {
        let mut log = encode_frame(&sample_ops());
        let first_len = log.len();
        log.extend_from_slice(&encode_frame(&sample_ops()));
        // Flip a payload byte of the first frame: it fails CRC, but the
        // intact second frame proves this is corruption rather than a torn
        // tail, and replay must refuse to silently drop committed batches.
        for off in [2, HEADER_LEN + 2, first_len - 1] {
            let mut bad = log.clone();
            bad[off] ^= 0x01;
            assert!(
                matches!(replay(&bad), Err(StoreError::Corruption(_))),
                "flip at byte {off} must be typed corruption"
            );
        }
    }

    #[test]
    fn absurd_length_field_rejected() {
        let mut frame = encode_frame(&sample_ops());
        // Overwrite the length with something huge.
        frame[2..6].copy_from_slice(&(u32::MAX).to_le_bytes());
        let replay = replay(&frame).unwrap();
        assert_eq!(replay.batches.len(), 0);
        assert!(replay.torn_tail);
    }

    #[test]
    fn garbage_prefix_rejected() {
        let log = b"not a wal at all".to_vec();
        let replay = replay(&log).unwrap();
        assert!(replay.batches.is_empty());
        assert!(replay.torn_tail);
    }

    #[test]
    fn unknown_tag_is_corruption() {
        // Hand-build a payload with a bad tag.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(9); // bad tag
        payload.push(0);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(b'k');
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(replay(&frame), Err(StoreError::Corruption(_))));
    }
}
