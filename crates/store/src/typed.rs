//! Typed views over a record space.
//!
//! The engine stores raw bytes; higher layers (navigator, awareness model,
//! planner) deal in serde-serializable records.  [`TypedSpace`] pairs a
//! [`Space`] with a record type and handles the JSON codec, so call sites
//! read like a typed table.

use crate::engine::{Batch, Space, Store};
use crate::error::StoreResult;
use crate::Disk;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;

/// A typed facade over one space of a [`Store`].
pub struct TypedSpace<T> {
    space: Space,
    prefix: String,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Serialize + DeserializeOwned> TypedSpace<T> {
    /// Create a typed view with a key prefix (e.g. `"task/"`) inside `space`.
    pub fn new(space: Space, prefix: impl Into<String>) -> Self {
        TypedSpace {
            space,
            prefix: prefix.into(),
            _marker: PhantomData,
        }
    }

    fn full_key(&self, key: &str) -> String {
        format!("{}{}", self.prefix, key)
    }

    /// Serialize and store `value` under `key`.
    pub fn put<D: Disk>(&self, store: &Store<D>, key: &str, value: &T) -> StoreResult<()> {
        store.put(self.space, self.full_key(key), serde_json::to_vec(value)?)
    }

    /// Queue a put into an existing batch (for multi-record atomicity).
    pub fn put_in<'b>(
        &self,
        batch: &'b mut Batch,
        key: &str,
        value: &T,
    ) -> StoreResult<&'b mut Batch> {
        Ok(batch.put(self.space, self.full_key(key), serde_json::to_vec(value)?))
    }

    /// Fetch and deserialize `key`.
    pub fn get<D: Disk>(&self, store: &Store<D>, key: &str) -> StoreResult<Option<T>> {
        match store.get(self.space, &self.full_key(key))? {
            Some(bytes) => Ok(Some(serde_json::from_slice(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Delete `key`.
    pub fn delete<D: Disk>(&self, store: &Store<D>, key: &str) -> StoreResult<()> {
        store.delete(self.space, self.full_key(key))
    }

    /// Queue a delete into an existing batch.
    pub fn delete_in<'b>(&self, batch: &'b mut Batch, key: &str) -> &'b mut Batch {
        batch.delete(self.space, self.full_key(key))
    }

    /// All records under this view's prefix, `(suffix-key, value)` pairs in
    /// key order.
    pub fn scan<D: Disk>(&self, store: &Store<D>) -> StoreResult<Vec<(String, T)>> {
        let mut out = Vec::new();
        for (k, v) in store.scan_prefix(self.space, &self.prefix)? {
            let suffix = k[self.prefix.len()..].to_string();
            out.push((suffix, serde_json::from_slice(&v)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct NodeRecord {
        host: String,
        cpus: u32,
        mhz: u32,
    }

    #[test]
    fn typed_roundtrip_and_scan() {
        let store = Store::open(MemDisk::new()).unwrap();
        let nodes: TypedSpace<NodeRecord> = TypedSpace::new(Space::Configuration, "node/");
        let a = NodeRecord {
            host: "linneus1".into(),
            cpus: 2,
            mhz: 500,
        };
        let b = NodeRecord {
            host: "ik-sun3".into(),
            cpus: 1,
            mhz: 360,
        };
        nodes.put(&store, "linneus1", &a).unwrap();
        nodes.put(&store, "ik-sun3", &b).unwrap();
        assert_eq!(nodes.get(&store, "linneus1").unwrap().unwrap(), a);
        let all = nodes.scan(&store).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "ik-sun3");
        nodes.delete(&store, "ik-sun3").unwrap();
        assert_eq!(nodes.get(&store, "ik-sun3").unwrap(), None);
    }

    #[test]
    fn typed_batched_atomicity() {
        let store = Store::open(MemDisk::new()).unwrap();
        let nodes: TypedSpace<NodeRecord> = TypedSpace::new(Space::Configuration, "node/");
        let mut batch = Batch::new();
        nodes
            .put_in(
                &mut batch,
                "n1",
                &NodeRecord {
                    host: "n1".into(),
                    cpus: 1,
                    mhz: 300,
                },
            )
            .unwrap();
        nodes
            .put_in(
                &mut batch,
                "n2",
                &NodeRecord {
                    host: "n2".into(),
                    cpus: 2,
                    mhz: 600,
                },
            )
            .unwrap();
        store.apply(batch).unwrap();
        assert_eq!(nodes.scan(&store).unwrap().len(), 2);
    }

    #[test]
    fn prefixes_do_not_collide() {
        let store = Store::open(MemDisk::new()).unwrap();
        let a: TypedSpace<u32> = TypedSpace::new(Space::History, "load/");
        let b: TypedSpace<u32> = TypedSpace::new(Space::History, "loaded/");
        a.put(&store, "x", &1).unwrap();
        b.put(&store, "x", &2).unwrap();
        assert_eq!(a.get(&store, "x").unwrap(), Some(1));
        assert_eq!(b.get(&store, "x").unwrap(), Some(2));
        // The "load/" scan must not swallow "loaded/" keys: the separator is
        // part of the prefix string, so only "load/x" matches.
        let hits = a.scan(&store).unwrap();
        assert_eq!(hits, vec![("x".to_string(), 1)]);
    }
}
