//! Error types for the storage engine.

use std::fmt;

/// Result alias used throughout the store.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure from the disk backend.
    Io(std::io::Error),
    /// The disk backend simulated a crash (fault injection).
    ///
    /// Any bytes written before the crash point may or may not be durable;
    /// the store instance must be discarded and re-opened to recover.
    SimulatedCrash,
    /// A WAL frame failed its CRC or length check somewhere *before* the
    /// tail of the log, i.e. genuine corruption rather than a torn write.
    Corruption(String),
    /// A record could not be (de)serialized.
    Codec(String),
    /// The store was used after a crash without re-opening.
    Poisoned,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::SimulatedCrash => write!(f, "simulated disk crash"),
            StoreError::Corruption(m) => write!(f, "log corruption: {m}"),
            StoreError::Codec(m) => write!(f, "codec error: {m}"),
            StoreError::Poisoned => write!(f, "store used after crash without recovery"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Codec(e.to_string())
    }
}
