//! CRC-32 (IEEE 802.3 polynomial) used to frame WAL records.
//!
//! Implemented locally so the store has no external checksum dependency.
//! Uses the slicing-by-8 technique (eight 256-entry tables, one 8-byte
//! block per iteration): every frame append, WAL replay and snapshot
//! compaction checksums its full payload, so this *is* a storage hot
//! path — the byte-at-a-time loop dominated replay time for large
//! History spaces.  The computed values are identical to the classic
//! table-driven implementation (checked by a property test below).

/// Polynomial 0xEDB88320 (reflected IEEE).
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables, computed at compile time.
/// `TABLES[0]` is the classic single-byte table; `TABLES[k][i]` extends a
/// byte's contribution through `k` further zero bytes, which is what lets
/// eight bytes be folded in one step.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Compute the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The reference byte-at-a-time implementation, kept as the oracle for
/// the slicing-by-8 fast path (and used by the store benchmark's
/// "before" baseline).
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the navigator persists every transition".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), original, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn differs_for_prefix() {
        let data = b"abcdef";
        assert_ne!(crc32(&data[..5]), crc32(data));
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length_and_alignment() {
        // Deterministic pseudo-random buffer; check every length 0..=257
        // so all chunk remainders (0..8) and multi-block paths are hit.
        let mut state = 0x9E37_79B9u32;
        let data: Vec<u8> = (0..257)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "mismatch at len {len}"
            );
        }
        // Unaligned starts too.
        for start in 1..16.min(data.len()) {
            assert_eq!(crc32(&data[start..]), crc32_bytewise(&data[start..]));
        }
    }
}
