//! CRC-32 (IEEE 802.3 polynomial) used to frame WAL records.
//!
//! Implemented locally so the store has no external checksum dependency.
//! Table-driven, one byte at a time — WAL frames are small and this is far
//! from any hot path (the navigator batches its writes).

/// Polynomial 0xEDB88320 (reflected IEEE).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Compute the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the navigator persists every transition".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), original, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn differs_for_prefix() {
        let data = b"abcdef";
        assert_ne!(crc32(&data[..5]), crc32(data));
    }
}
