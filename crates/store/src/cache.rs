//! Budgeted shared **block cache** for the sorted-run tier.
//!
//! Point reads against a run must read and CRC-check one ~4 KiB data
//! block and decode it into ops before the key can even be compared —
//! that decode, not the (in-memory-disk) read, dominates tiered `get`
//! latency.  The cache keeps *decoded* blocks — the sorted op vector,
//! whose `Bytes` values still alias the original zero-copy block read —
//! and answers point lookups *under its lock*, so a warm hit is one
//! mutex round-trip, a hash probe and a binary search; no block handle
//! or refcount traffic ever escapes.
//!
//! Entries are keyed `(run id, block offset)`.  Run files are immutable
//! and run ids never repeat within a store lifetime, so a cached block
//! can never go stale; when a compaction deletes a run its blocks are
//! purged eagerly ([`BlockCache::purge_run`]) to free budget early.
//!
//! Eviction is CLOCK (second chance): a fixed hand sweeps the slot
//! table, clearing reference bits until it finds an unreferenced victim.
//! No linked list, no per-hit mutation beyond setting a bit — the whole
//! structure is one mutex around a `HashMap` + slot vector, which is
//! plenty for a cache consulted only after a bloom filter and a sparse
//! index have already narrowed the lookup to one block.
//!
//! Blooms and sparse block indexes are **pinned** by construction: they
//! live inside [`crate::runs::Run`] for the lifetime of the opened run
//! and are never subject to this budget.
//!
//! Blocks are inserted only *after* their frame CRC verified, so the
//! cache can never serve bytes that corruption detection would have
//! rejected.  Merge compactions stream runs via `load_all` and bypass
//! the cache entirely — a merge touches every block once and would only
//! evict the read-path working set.

use crate::error::StoreResult;
use crate::wal::WalOp;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default cache budget when neither the policy nor
/// `BIOOPERA_BLOCK_CACHE_BUDGET` says otherwise.
pub const DEFAULT_BLOCK_CACHE_BUDGET: u64 = 8 * 1024 * 1024;

/// One decoded, CRC-verified data block: ops sorted by key (a block
/// never mixes spaces).
pub struct DecodedBlock {
    ops: Vec<WalOp>,
    /// Estimated resident bytes, charged against the cache budget.
    bytes: u64,
}

fn op_key(op: &WalOp) -> &str {
    match op {
        WalOp::Put { key, .. } => key,
        WalOp::Delete { key, .. } => key,
    }
}

impl DecodedBlock {
    pub fn new(ops: Vec<WalOp>) -> Self {
        let bytes: u64 = ops
            .iter()
            .map(|op| match op {
                WalOp::Put { key, value, .. } => key.len() as u64 + value.len() as u64 + 64,
                WalOp::Delete { key, .. } => key.len() as u64 + 64,
            })
            .sum();
        DecodedBlock { ops, bytes }
    }

    /// Binary-searched point lookup within the block.  `None` — key not
    /// in this block; `Some(None)` — tombstoned here; `Some(Some(v))` —
    /// live value (a cheap `Bytes` clone of the shared block image).
    pub fn lookup(&self, key: &str) -> Option<Option<Bytes>> {
        let idx = self.ops.partition_point(|op| op_key(op) < key);
        match self.ops.get(idx) {
            Some(WalOp::Put { key: k, value, .. }) if k == key => Some(Some(value.clone())),
            Some(WalOp::Delete { key: k, .. }) if k == key => Some(None),
            _ => None,
        }
    }
}

struct Slot {
    key: (u64, u64),
    block: DecodedBlock,
    referenced: bool,
}

/// Map hasher: the keys are `(run id, block offset)` pairs with no
/// adversarial structure, so a murmur-style finalizer mixes them fine —
/// SipHash resistance buys nothing on this hot read path.
#[derive(Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut x = self.0 ^ n;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
    }
}

type BlockMap = HashMap<(u64, u64), usize, std::hash::BuildHasherDefault<MixHasher>>;

#[derive(Default)]
struct Inner {
    map: BlockMap,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
    bytes: u64,
    hits: u64,
    misses: u64,
}

/// The budgeted CLOCK cache shared by every handle of one store.
pub struct BlockCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl BlockCache {
    /// A cache bounded to `budget` estimated bytes.  `budget == 0`
    /// disables caching (every lookup decodes from disk).
    pub fn new(budget: u64) -> Self {
        BlockCache {
            budget,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Lookups that had to decode the block from disk.
    pub fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    /// Estimated bytes currently cached.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Probe-only point lookup: `None` — block `(run, offset)` is not
    /// cached; `Some(found)` — it is, and `found` is the block's answer
    /// for `key` (as in [`BlockCache::lookup_or_load`]).  Lets the read
    /// path consult a warm cache *before* paying for a bloom check —
    /// the bloom exists to avoid decode I/O, not cache probes.
    pub fn lookup(&self, run: u64, offset: u64, key: &str) -> Option<Option<Option<Bytes>>> {
        let mut inner = self.inner.lock();
        let slot = inner.map.get(&(run, offset)).copied();
        if let Some(idx) = slot {
            if let Some(s) = inner.slots[idx].as_mut() {
                s.referenced = true;
                let found = s.block.lookup(key);
                inner.hits += 1;
                return Some(found);
            }
        }
        None
    }

    /// Point-look `key` up in block `(run, offset)`, decoding via
    /// `load` on a miss.  The search runs *under the cache lock* on a
    /// hit — no refcount traffic, no block handle escapes — and the
    /// decoded block is kept only when it fits the budget (a block
    /// larger than the whole budget is searched and dropped).
    pub fn lookup_or_load(
        &self,
        run: u64,
        offset: u64,
        key: &str,
        load: impl FnOnce() -> StoreResult<Vec<WalOp>>,
    ) -> StoreResult<Option<Option<Bytes>>> {
        let mkey = (run, offset);
        {
            let mut inner = self.inner.lock();
            let slot = inner.map.get(&mkey).copied();
            if let Some(idx) = slot {
                if let Some(s) = inner.slots[idx].as_mut() {
                    s.referenced = true;
                    let found = s.block.lookup(key);
                    inner.hits += 1;
                    return Ok(found);
                }
            }
        }
        let block = DecodedBlock::new(load()?);
        let found = block.lookup(key);
        let mut inner = self.inner.lock();
        inner.misses += 1;
        // A racing loader may have inserted the same block; keep the
        // existing entry rather than double-charging the budget.
        if block.bytes <= self.budget && !inner.map.contains_key(&mkey) {
            Self::evict_until(&mut inner, self.budget.saturating_sub(block.bytes));
            inner.bytes += block.bytes;
            let slot = Slot {
                key: mkey,
                block,
                referenced: true,
            };
            let idx = match inner.free.pop() {
                Some(idx) => {
                    inner.slots[idx] = Some(slot);
                    idx
                }
                None => {
                    inner.slots.push(Some(slot));
                    inner.slots.len() - 1
                }
            };
            inner.map.insert(mkey, idx);
        }
        Ok(found)
    }

    /// CLOCK sweep: clear reference bits until enough unreferenced
    /// victims have been dropped to bring residency down to `target`.
    fn evict_until(inner: &mut Inner, target: u64) {
        if inner.bytes <= target {
            return;
        }
        // Two full sweeps always find a victim (first sweep clears every
        // reference bit); the occupancy check stops an empty-table spin.
        let mut sweeps = 2 * inner.slots.len();
        while inner.bytes > target && sweeps > 0 {
            sweeps -= 1;
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % inner.slots.len().max(1);
            match inner.slots[idx].as_mut() {
                Some(s) if s.referenced => s.referenced = false,
                Some(_) => {
                    let s = inner.slots[idx].take().unwrap();
                    inner.bytes -= s.block.bytes;
                    inner.map.remove(&s.key);
                    inner.free.push(idx);
                }
                None => {}
            }
        }
    }

    /// Drop every cached block of `run` — called when a compaction
    /// deletes the run file, so dead blocks free budget immediately.
    pub fn purge_run(&self, run: u64) {
        let mut inner = self.inner.lock();
        let stale: Vec<(u64, u64)> = inner
            .map
            .keys()
            .filter(|(r, _)| *r == run)
            .copied()
            .collect();
        for key in stale {
            if let Some(idx) = inner.map.remove(&key) {
                if let Some(s) = inner.slots[idx].take() {
                    inner.bytes -= s.block.bytes;
                    inner.free.push(idx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, val_len: usize) -> Vec<WalOp> {
        (0..n)
            .map(|i| WalOp::Put {
                space: 0,
                key: format!("k{i:04}"),
                value: Bytes::from(vec![0u8; val_len]),
            })
            .collect()
    }

    #[test]
    fn hit_after_miss_and_budget_bounds_residency() {
        let cache = BlockCache::new(4096);
        let hit = cache
            .lookup_or_load(1, 0, "k0001", || Ok(block(4, 100)))
            .unwrap();
        assert!(hit.is_some());
        assert_eq!(cache.misses(), 1);
        let hit = cache
            .lookup_or_load(1, 0, "k0001", || panic!("must hit"))
            .unwrap();
        assert!(hit.is_some());
        assert_eq!(cache.hits(), 1);
        // Many distinct blocks: residency never exceeds the budget.
        for i in 0..64 {
            cache
                .lookup_or_load(2, i * 4096, "k0000", || Ok(block(4, 100)))
                .unwrap();
        }
        assert!(cache.resident_bytes() <= 4096);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = BlockCache::new(0);
        cache
            .lookup_or_load(1, 0, "k0000", || Ok(block(2, 8)))
            .unwrap();
        cache
            .lookup_or_load(1, 0, "k0000", || Ok(block(2, 8)))
            .unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn purge_run_drops_only_that_runs_blocks() {
        let cache = BlockCache::new(1 << 20);
        cache
            .lookup_or_load(1, 0, "k0000", || Ok(block(2, 8)))
            .unwrap();
        cache
            .lookup_or_load(2, 0, "k0000", || Ok(block(2, 8)))
            .unwrap();
        cache.purge_run(1);
        cache
            .lookup_or_load(1, 0, "k0000", || Ok(block(2, 8)))
            .unwrap();
        assert_eq!(cache.misses(), 3, "run 1 was purged");
        cache
            .lookup_or_load(2, 0, "k0000", || panic!("run 2 must stay"))
            .unwrap();
    }

    #[test]
    fn lookup_distinguishes_tombstones() {
        let ops = vec![
            WalOp::Put {
                space: 0,
                key: "a".into(),
                value: Bytes::from_static(b"1"),
            },
            WalOp::Delete {
                space: 0,
                key: "b".into(),
            },
        ];
        let b = DecodedBlock::new(ops);
        assert_eq!(b.lookup("a"), Some(Some(Bytes::from_static(b"1"))));
        assert_eq!(b.lookup("b"), Some(None));
        assert_eq!(b.lookup("c"), None);
    }
}
