//! Property tests for the per-run bloom filter.
//!
//! Two invariants back the read path's right to skip a run:
//!
//! 1. **Zero false negatives, by construction**: every `(space, key)` ever
//!    inserted answers `may_contain == true`, for any key set and any
//!    capacity — including after an encode/decode round trip, since the
//!    filter the reader consults is the decoded one.
//! 2. **Bounded false positives**: at the sized-for capacity the measured
//!    false-positive rate over a large disjoint probe set stays under the
//!    stated [`FP_BOUND`], so bloom-gated reads actually skip most runs
//!    that do not hold the key.

use bioopera_store::bloom::{Bloom, FP_BOUND};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_false_negatives_for_any_key_set(
        raw_keys in prop::collection::vec(("[a-z]{1,12}", 0u8..4), 0..200),
        oversize in 0usize..3,
    ) {
        let keys: std::collections::BTreeSet<(String, u8)> = raw_keys.into_iter().collect();
        // Capacity below, at, or above the actual key count: an overfull
        // filter may lie about absent keys, never about present ones.
        let capacity = match oversize {
            0 => keys.len() / 2,
            1 => keys.len(),
            _ => keys.len() * 2 + 8,
        };
        let mut bloom = Bloom::with_capacity(capacity);
        for (key, space) in &keys {
            bloom.insert(*space, key);
        }
        for (key, space) in &keys {
            prop_assert!(bloom.may_contain(*space, key), "false negative for {space}/{key}");
        }

        // The decoded filter — the one run readers actually consult — must
        // preserve the guarantee bit-for-bit.
        let mut encoded = Vec::new();
        bloom.encode_into(&mut encoded);
        let (decoded, used) = Bloom::decode(&encoded).expect("round trip");
        prop_assert_eq!(used, encoded.len());
        for (key, space) in &keys {
            prop_assert!(decoded.may_contain(*space, key), "false negative after decode");
        }
    }

    #[test]
    fn absent_space_tag_is_not_a_false_negative_vector(
        raw_keys in prop::collection::vec("[a-z]{1,10}", 1..64),
    ) {
        let keys: std::collections::BTreeSet<String> = raw_keys.into_iter().collect();
        // The same key inserted under one space must still be reported for
        // that space; the hash must mix the space tag rather than ignore it.
        let mut bloom = Bloom::with_capacity(keys.len());
        for key in &keys {
            bloom.insert(1, key);
        }
        for key in &keys {
            prop_assert!(bloom.may_contain(1, key));
        }
        // Not required to miss on other spaces (that is an FP question),
        // but the filter must distinguish spaces at least sometimes.
        let misses = keys.iter().filter(|k| !bloom.may_contain(3, k)).count();
        prop_assert!(misses > 0, "space tag ignored: every cross-space probe hit");
    }
}

#[test]
fn measured_false_positive_rate_is_under_the_stated_bound() {
    // Deterministic volume test: 4 000 member keys at exactly the sized-for
    // capacity, probed with 40 000 disjoint keys.  BITS_PER_KEY=10 /
    // PROBES=7 has a theoretical FP rate just under 1%; FP_BOUND=0.03
    // leaves margin for hash imperfection without masking a regression.
    const MEMBERS: usize = 4_000;
    const PROBES_ABSENT: usize = 40_000;
    let mut bloom = Bloom::with_capacity(MEMBERS);
    for i in 0..MEMBERS {
        bloom.insert((i % 4) as u8, &format!("member/{i:08}"));
    }
    for i in 0..MEMBERS {
        assert!(
            bloom.may_contain((i % 4) as u8, &format!("member/{i:08}")),
            "false negative at {i}"
        );
    }
    let false_positives = (0..PROBES_ABSENT)
        .filter(|i| bloom.may_contain((i % 4) as u8, &format!("absent/{i:08}")))
        .count();
    let rate = false_positives as f64 / PROBES_ABSENT as f64;
    assert!(
        rate < FP_BOUND,
        "measured FP rate {rate:.4} exceeds bound {FP_BOUND}"
    );
    // And it is not trivially zero — a filter answering false for
    // everything absent would mean the probe set never exercised it.
    assert!(bloom.bits() > 0);
}
