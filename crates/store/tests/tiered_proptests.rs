//! Differential model tests for the tiered engine.
//!
//! The tiered store — memtables over immutable sorted runs, with spills,
//! bloom-gated reads and merge compactions — must stay observationally
//! identical to a plain per-space `BTreeMap` under *any* interleaving of
//! commits, explicit spills, run merges, compactions and reopens.  The
//! memtable budget is deliberately tiny (≤ 4 KiB) so nearly every sequence
//! crosses the spill threshold several times and most reads have to merge
//! the memtable with multiple runs.

use bioopera_store::{Batch, MemDisk, Space, Store, TieredPolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put {
        space: u8,
        key: String,
        value: Vec<u8>,
    },
    Delete {
        space: u8,
        key: String,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::sample::select(vec!["a", "b", "c", "inst/1", "inst/2", "tmpl/x", "h/1"])
        .prop_map(|s| s.to_string());
    let space = 0u8..4;
    prop_oneof![
        (
            space.clone(),
            key.clone(),
            prop::collection::vec(any::<u8>(), 0..48)
        )
            .prop_map(|(space, key, value)| Op::Put { space, key, value }),
        (space, key).prop_map(|(space, key)| Op::Delete { space, key }),
    ]
}

fn space_of(v: u8) -> Space {
    Space::ALL[v as usize]
}

fn apply_model(model: &mut BTreeMap<(u8, String), Vec<u8>>, batch: &[Op]) {
    for op in batch {
        match op {
            Op::Put { space, key, value } => {
                model.insert((*space, key.clone()), value.clone());
            }
            Op::Delete { space, key } => {
                model.remove(&(*space, key.clone()));
            }
        }
    }
}

fn to_batch(ops: &[Op]) -> Batch {
    let mut b = Batch::new();
    for op in ops {
        match op {
            Op::Put { space, key, value } => {
                b.put(space_of(*space), key.clone(), value.clone());
            }
            Op::Delete { space, key } => {
                b.delete(space_of(*space), key.clone());
            }
        }
    }
    b
}

/// One step of the interleaving: commits, explicit tier transitions
/// (spill, run merge, full compaction) and close/reopen cycles.
#[derive(Debug, Clone)]
enum Action {
    Apply(Vec<Op>),
    ApplyMany(Vec<Vec<Op>>),
    Spill,
    MergeRuns,
    Compact,
    Reopen,
}

fn actions_strategy() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            5 => prop::collection::vec(op_strategy(), 1..5).prop_map(Action::Apply),
            2 => prop::collection::vec(prop::collection::vec(op_strategy(), 1..4), 1..4)
                .prop_map(Action::ApplyMany),
            1 => Just(Action::Spill),
            1 => Just(Action::MergeRuns),
            1 => Just(Action::Compact),
            1 => Just(Action::Reopen),
        ],
        1..40,
    )
}

fn dump(store: &Store<MemDisk>) -> BTreeMap<(u8, String), Vec<u8>> {
    let mut out = BTreeMap::new();
    for (i, space) in Space::ALL.iter().enumerate() {
        for (k, v) in store.scan_prefix(*space, "").unwrap() {
            out.insert((i as u8, k), v.to_vec());
        }
    }
    out
}

/// Assert full observational equivalence with the oracle: scan contents,
/// per-space O(1) lengths, and point reads for every key the model holds.
fn assert_matches_model(
    store: &Store<MemDisk>,
    model: &BTreeMap<(u8, String), Vec<u8>>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(dump(store), model.clone());
    for (i, space) in Space::ALL.iter().enumerate() {
        let expect = model.keys().filter(|(s, _)| *s == i as u8).count();
        prop_assert_eq!(store.len(*space).unwrap(), expect);
        prop_assert_eq!(store.is_empty(*space).unwrap(), expect == 0);
    }
    for ((s, k), v) in model {
        let got = store.get(space_of(*s), k).unwrap();
        prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiered_store_matches_model_under_any_interleaving(
        actions in actions_strategy(),
        budget in prop::sample::select(vec![256u64, 1024, 4096]),
        threshold in 2usize..5,
    ) {
        let policy = TieredPolicy {
            memtable_budget_bytes: budget,
            run_merge_threshold: threshold,
            ..TieredPolicy::default()
        };
        let disk = MemDisk::new();
        let mut store = Store::open_with(disk.clone(), Some(policy)).unwrap();
        let mut model = BTreeMap::new();
        for action in &actions {
            match action {
                Action::Apply(ops) => {
                    store.apply(to_batch(ops)).unwrap();
                    apply_model(&mut model, ops);
                }
                Action::ApplyMany(list) => {
                    store.apply_many(list.iter().map(|ops| to_batch(ops))).unwrap();
                    for ops in list {
                        apply_model(&mut model, ops);
                    }
                }
                Action::Spill => store.spill().unwrap(),
                Action::MergeRuns => store.merge_runs().unwrap(),
                Action::Compact => store.compact().unwrap(),
                Action::Reopen => {
                    drop(store);
                    store = Store::open_with(disk.clone(), Some(policy)).unwrap();
                }
            }
            assert_matches_model(&store, &model)?;
        }

        // The budget is actually enforced: after the final action the
        // memtable estimate sits at or below one batch past the budget.
        let stats = store.stats();
        prop_assert!(
            stats.memtable_bytes <= budget + 4096,
            "memtable {} bytes exceeds budget {} plus one-batch slack",
            stats.memtable_bytes,
            budget
        );

        // Equivalence must survive a clean close/reopen, and reopening
        // must not lose tier state (runs stay readable, spill counters
        // monotone within a handle's lifetime).
        drop(store);
        let reopened = Store::open_with(disk, Some(policy)).unwrap();
        assert_matches_model(&reopened, &model)?;
    }

    #[test]
    fn tiered_and_untiered_stores_agree_on_any_batch_sequence(
        batches in prop::collection::vec(prop::collection::vec(op_strategy(), 1..5), 1..25),
    ) {
        // The same batch sequence through a constantly-spilling tiered
        // store and through the untiered engine must produce identical
        // visible state — tiering is a resource policy, not a semantic.
        let tiered_disk = MemDisk::new();
        let tiered = Store::open_with(
            tiered_disk.clone(),
            Some(TieredPolicy {
                memtable_budget_bytes: 256,
                run_merge_threshold: 2,
                ..TieredPolicy::default()
            }),
        )
        .unwrap();
        let plain_disk = MemDisk::new();
        let plain = Store::open_with(plain_disk, None).unwrap();
        for batch in &batches {
            tiered.apply(to_batch(batch)).unwrap();
            plain.apply(to_batch(batch)).unwrap();
        }
        prop_assert_eq!(dump(&tiered), dump(&plain));
        for space in Space::ALL {
            prop_assert_eq!(tiered.len(space).unwrap(), plain.len(space).unwrap());
        }
    }
}
