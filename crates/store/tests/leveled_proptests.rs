//! Differential model tests for leveled compaction and windowed retention.
//!
//! Beyond the flat-tier equivalence suite (`tiered_proptests.rs`), the
//! leveled engine makes three structural promises that must hold under any
//! interleaving of commits, spills, merges, retention advances and reopens:
//!
//! 1. Every level below L0 holds runs whose composite `(space, key)` ranges
//!    are sorted and pairwise disjoint — point reads may binary-search one
//!    run per level.
//! 2. Reads always observe the newest version of a key, and a deletion is
//!    never resurrected by a push-down, no matter how deep the old value
//!    sits (tombstones survive until the bottom level drops them).
//! 3. Retention deletes exactly the records covered by the watermark hull —
//!    never a record outside it — and writes below the watermark stay
//!    invisible forever, including across crashes and reopens.
//!
//! Level thresholds here are tiny (1–4 KiB) so sequences of a few dozen
//! batches routinely cascade runs into L2 and beyond.

use bioopera_store::{Batch, MemDisk, Space, Store, TieredPolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put {
        space: u8,
        key: String,
        value: Vec<u8>,
    },
    Delete {
        space: u8,
        key: String,
    },
}

fn key_pool() -> Vec<&'static str> {
    vec![
        "a", "b", "c", "ev/01", "ev/02", "ev/03", "ev/04", "ev/09", "inst/1", "inst/2", "zz",
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::sample::select(key_pool()).prop_map(|s| s.to_string());
    let space = 0u8..4;
    prop_oneof![
        3 => (
            space.clone(),
            key.clone(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(space, key, value)| Op::Put { space, key, value }),
        1 => (space, key).prop_map(|(space, key)| Op::Delete { space, key }),
    ]
}

fn space_of(v: u8) -> Space {
    Space::ALL[v as usize]
}

fn to_batch(ops: &[Op]) -> Batch {
    let mut b = Batch::new();
    for op in ops {
        match op {
            Op::Put { space, key, value } => {
                b.put(space_of(*space), key.clone(), value.clone());
            }
            Op::Delete { space, key } => {
                b.delete(space_of(*space), key.clone());
            }
        }
    }
    b
}

/// Oracle: per-space sorted map plus the retention watermark hull, with
/// writes below the watermark dropped exactly as the engine drops them.
#[derive(Default)]
struct Model {
    data: BTreeMap<(u8, String), Vec<u8>>,
    retain: [Option<(String, String)>; 4],
}

impl Model {
    fn retired(&self, space: u8, key: &str) -> bool {
        match &self.retain[space as usize] {
            Some((start, below)) => start.as_str() <= key && key < below.as_str(),
            None => false,
        }
    }

    fn apply(&mut self, batch: &[Op]) {
        for op in batch {
            match op {
                Op::Put { space, key, value } => {
                    if !self.retired(*space, key) {
                        self.data.insert((*space, key.clone()), value.clone());
                    }
                }
                Op::Delete { space, key } => {
                    self.data.remove(&(*space, key.clone()));
                }
            }
        }
    }

    /// Advance the watermark to the convex hull of the old window and
    /// `[start, below)`.  Returns the number of records newly retired, or
    /// `None` when the request is degenerate / already covered (the engine
    /// answers `Ok(0)` without touching the watermark).
    fn retain_below(&mut self, space: u8, start: &str, below: &str) -> Option<usize> {
        if below <= start {
            return None;
        }
        let hull = match &self.retain[space as usize] {
            Some((s, b)) => (
                s.as_str().min(start).to_string(),
                b.as_str().max(below).to_string(),
            ),
            None => (start.to_string(), below.to_string()),
        };
        if self.retain[space as usize].as_ref() == Some(&hull) {
            return None;
        }
        let doomed: Vec<(u8, String)> = self
            .data
            .range((space, hull.0.clone())..(space, hull.1.clone()))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            self.data.remove(k);
        }
        self.retain[space as usize] = Some(hull);
        Some(doomed.len())
    }
}

#[derive(Debug, Clone)]
enum Action {
    Apply(Vec<Op>),
    Spill,
    MergeRuns,
    Compact,
    Retain {
        space: u8,
        start: String,
        below: String,
    },
    Reopen,
}

fn actions_strategy() -> impl Strategy<Value = Vec<Action>> {
    let boundary = prop::sample::select(vec!["a", "ev/", "ev/02", "ev/05", "ev/10", "inst/", "z"])
        .prop_map(|s| s.to_string());
    prop::collection::vec(
        prop_oneof![
            6 => prop::collection::vec(op_strategy(), 1..6).prop_map(Action::Apply),
            2 => Just(Action::Spill),
            1 => Just(Action::MergeRuns),
            1 => Just(Action::Compact),
            2 => (0u8..4, boundary.clone(), boundary)
                .prop_map(|(space, start, below)| Action::Retain { space, start, below }),
            1 => Just(Action::Reopen),
        ],
        1..40,
    )
}

fn dump(store: &Store<MemDisk>) -> BTreeMap<(u8, String), Vec<u8>> {
    let mut out = BTreeMap::new();
    for (i, space) in Space::ALL.iter().enumerate() {
        for (k, v) in store.scan_prefix(*space, "").unwrap() {
            out.insert((i as u8, k), v.to_vec());
        }
    }
    out
}

/// Structural invariant: every level below L0 is sorted by range and
/// pairwise disjoint on composite keys.
fn assert_levels_disjoint(store: &Store<MemDisk>) -> Result<(), TestCaseError> {
    for (li, level) in store.level_ranges().iter().enumerate() {
        for (lo, hi) in level {
            prop_assert!(lo <= hi, "L{}: inverted run range", li + 1);
        }
        for pair in level.windows(2) {
            prop_assert!(
                pair[0].1 < pair[1].0,
                "L{}: overlapping or unsorted runs: {:?} vs {:?}",
                li + 1,
                pair[0],
                pair[1]
            );
        }
    }
    Ok(())
}

fn assert_matches_model(store: &Store<MemDisk>, model: &Model) -> Result<(), TestCaseError> {
    prop_assert_eq!(dump(store), model.data.clone());
    for (i, space) in Space::ALL.iter().enumerate() {
        let expect = model.data.keys().filter(|(s, _)| *s == i as u8).count();
        prop_assert_eq!(store.len(*space).unwrap(), expect);
        prop_assert_eq!(
            store.retention(*space),
            model.retain[i].clone(),
            "space {} watermark diverged",
            i
        );
    }
    // Newest-version point reads for every live key, and definite absence
    // for every retired boundary key the pool could have produced.
    for ((s, k), v) in &model.data {
        let got = store.get(space_of(*s), k).unwrap();
        prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
    }
    for (i, space) in Space::ALL.iter().enumerate() {
        for key in key_pool() {
            if model.retired(i as u8, key) {
                prop_assert_eq!(
                    store.get(*space, key).unwrap(),
                    None,
                    "retired key {}/{} resurfaced",
                    i,
                    key
                );
            }
        }
    }
    assert_levels_disjoint(store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The leveled store stays observationally identical to the oracle —
    /// including retention semantics — under any interleaving, and its
    /// level structure never violates the disjointness invariant.
    #[test]
    fn leveled_store_matches_model_under_any_interleaving(
        actions in actions_strategy(),
        budget in prop::sample::select(vec![256u64, 512]),
        threshold in 2usize..4,
        level_base in prop::sample::select(vec![1024u64, 4096]),
    ) {
        let policy = TieredPolicy {
            memtable_budget_bytes: budget,
            run_merge_threshold: threshold,
            level_base_bytes: level_base,
            level_growth: 2,
            level_run_bytes: 768,
            ..TieredPolicy::default()
        };
        let disk = MemDisk::new();
        let mut store = Store::open_with(disk.clone(), Some(policy)).unwrap();
        let mut model = Model::default();
        for action in &actions {
            match action {
                Action::Apply(ops) => {
                    store.apply(to_batch(ops)).unwrap();
                    model.apply(ops);
                }
                Action::Spill => store.spill().unwrap(),
                Action::MergeRuns => store.merge_runs().unwrap(),
                Action::Compact => store.compact().unwrap(),
                Action::Retain { space, start, below } => {
                    let got = store
                        .retain_below(space_of(*space), start, below)
                        .unwrap();
                    match model.retain_below(*space, start, below) {
                        Some(expect) => prop_assert_eq!(
                            got as usize, expect,
                            "retain_below({}, {:?}, {:?}) retired count diverged",
                            space, start, below
                        ),
                        None => prop_assert_eq!(got, 0),
                    }
                }
                Action::Reopen => {
                    drop(store);
                    store = Store::open_with(disk.clone(), Some(policy)).unwrap();
                }
            }
            assert_matches_model(&store, &model)?;
        }
        // Equivalence and the level invariant survive a final reopen.
        drop(store);
        let reopened = Store::open_with(disk, Some(policy)).unwrap();
        assert_matches_model(&reopened, &model)?;
    }

    /// Deep tombstones: delete keys whose live values sit in the deepest
    /// level, then force every merge path — the deletion must never be
    /// undone by a push-down or a reopen.
    #[test]
    fn deletions_survive_cascading_merges(
        seed_rounds in 3usize..8,
        doomed in prop::collection::vec(prop::sample::select(key_pool()), 1..5),
    ) {
        let doomed: std::collections::BTreeSet<&str> = doomed.into_iter().collect();
        let policy = TieredPolicy {
            memtable_budget_bytes: 256,
            run_merge_threshold: 2,
            level_base_bytes: 1024,
            level_growth: 2,
            level_run_bytes: 512,
            ..TieredPolicy::default()
        };
        let disk = MemDisk::new();
        let store = Store::open_with(disk.clone(), Some(policy)).unwrap();
        // Bury every key under several generations of runs.
        for round in 0..seed_rounds {
            for key in key_pool() {
                store
                    .put(Space::History, key, vec![round as u8; 48])
                    .unwrap();
            }
            store.spill().unwrap();
        }
        for key in &doomed {
            store.delete(Space::History, *key).unwrap();
        }
        // Push the tombstones down through the hierarchy.
        store.spill().unwrap();
        store.spill().unwrap();
        for key in &doomed {
            prop_assert_eq!(store.get(Space::History, key).unwrap(), None);
        }
        assert_levels_disjoint(&store)?;
        // Folding everything to one run drops the tombstones for good —
        // and still does not resurrect the old values.
        store.merge_runs().unwrap();
        drop(store);
        let reopened = Store::open_with(disk, Some(policy)).unwrap();
        for key in key_pool() {
            let got = reopened.get(Space::History, key).unwrap();
            if doomed.contains(key) {
                prop_assert_eq!(got, None, "deleted key `{}` resurrected", key);
            } else {
                prop_assert_eq!(
                    got.as_deref(),
                    Some(&[seed_rounds as u8 - 1; 48][..]),
                    "key `{}` lost its newest version",
                    key
                );
            }
        }
    }
}
