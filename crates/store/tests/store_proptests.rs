//! Property-based tests for the storage engine.
//!
//! Invariants:
//! 1. The store behaves like a per-space `BTreeMap` under any sequence of
//!    batched operations (model-based test).
//! 2. Re-opening after any clean shutdown yields the identical record set.
//! 3. Crashing the disk at an **arbitrary byte position** during the run and
//!    recovering yields exactly the records produced by a *prefix of whole
//!    batches* — never a partial batch (atomicity), never a missing
//!    acknowledged batch before the crash point boundary.

use bioopera_store::{Batch, CompactionPolicy, FaultPlan, MemDisk, Space, Store};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put {
        space: u8,
        key: String,
        value: Vec<u8>,
    },
    Delete {
        space: u8,
        key: String,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::sample::select(vec!["a", "b", "c", "inst/1", "inst/2", "tmpl/x", "h/1"])
        .prop_map(|s| s.to_string());
    let space = 0u8..4;
    prop_oneof![
        (
            space.clone(),
            key.clone(),
            prop::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(space, key, value)| Op::Put { space, key, value }),
        (space, key).prop_map(|(space, key)| Op::Delete { space, key }),
    ]
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 1..5), 1..30)
}

fn space_of(v: u8) -> Space {
    Space::ALL[v as usize]
}

fn apply_model(model: &mut BTreeMap<(u8, String), Vec<u8>>, batch: &[Op]) {
    for op in batch {
        match op {
            Op::Put { space, key, value } => {
                model.insert((*space, key.clone()), value.clone());
            }
            Op::Delete { space, key } => {
                model.remove(&(*space, key.clone()));
            }
        }
    }
}

fn to_batch(ops: &[Op]) -> Batch {
    let mut b = Batch::new();
    for op in ops {
        match op {
            Op::Put { space, key, value } => {
                b.put(space_of(*space), key.clone(), value.clone());
            }
            Op::Delete { space, key } => {
                b.delete(space_of(*space), key.clone());
            }
        }
    }
    b
}

/// One step of the interleaving test: single commits, group commits,
/// explicit compactions and full close/reopen cycles, in any order.
#[derive(Debug, Clone)]
enum Action {
    Apply(Vec<Op>),
    ApplyMany(Vec<Vec<Op>>),
    Compact,
    Reopen,
}

fn actions_strategy() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            4 => prop::collection::vec(op_strategy(), 1..5).prop_map(Action::Apply),
            2 => prop::collection::vec(prop::collection::vec(op_strategy(), 1..4), 1..4)
                .prop_map(Action::ApplyMany),
            1 => Just(Action::Compact),
            1 => Just(Action::Reopen),
        ],
        1..40,
    )
}

fn dump(store: &Store<MemDisk>) -> BTreeMap<(u8, String), Vec<u8>> {
    let mut out = BTreeMap::new();
    for (i, space) in Space::ALL.iter().enumerate() {
        for (k, v) in store.scan_prefix(*space, "").unwrap() {
            out.insert((i as u8, k), v.to_vec());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_model_and_survives_reopen(batches in batches_strategy(), compact_at in any::<prop::sample::Index>()) {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut model = BTreeMap::new();
        let compact_idx = compact_at.index(batches.len());
        for (i, batch) in batches.iter().enumerate() {
            store.apply(to_batch(batch)).unwrap();
            apply_model(&mut model, batch);
            if i == compact_idx {
                store.compact().unwrap();
            }
            prop_assert_eq!(dump(&store), model.clone());
        }
        drop(store);
        let reopened = Store::open(disk).unwrap();
        prop_assert_eq!(dump(&reopened), model);
    }

    #[test]
    fn interleaved_commits_compactions_and_reopens_match_the_model(
        actions in actions_strategy(),
        policy_on in any::<bool>(),
    ) {
        // The concurrent engine's visible state must stay equivalent to
        // the sequential apply-ops model under any interleaving of single
        // commits, group commits, compactions and reopens — with and
        // without the auto-compaction policy injecting extra epoch rolls
        // at commit boundaries.
        let policy = policy_on.then_some(CompactionPolicy {
            wal_bytes_threshold: 512,
            min_wal_batches: 2,
        });
        let disk = MemDisk::new();
        let mut store = Store::open(disk.clone()).unwrap();
        store.set_compaction_policy(policy);
        let mut model = BTreeMap::new();
        for action in &actions {
            match action {
                Action::Apply(ops) => {
                    store.apply(to_batch(ops)).unwrap();
                    apply_model(&mut model, ops);
                }
                Action::ApplyMany(list) => {
                    store.apply_many(list.iter().map(|ops| to_batch(ops))).unwrap();
                    for ops in list {
                        apply_model(&mut model, ops);
                    }
                }
                Action::Compact => store.compact().unwrap(),
                Action::Reopen => {
                    drop(store);
                    store = Store::open(disk.clone()).unwrap();
                    store.set_compaction_policy(policy);
                }
            }
            prop_assert_eq!(dump(&store), model.clone());
            // O(1) len agrees with the model's per-space cardinality.
            for (i, space) in Space::ALL.iter().enumerate() {
                let expect = model.keys().filter(|(s, _)| *s == i as u8).count();
                prop_assert_eq!(store.len(*space).unwrap(), expect);
                prop_assert_eq!(store.is_empty(*space).unwrap(), expect == 0);
            }
        }
        drop(store);
        let reopened = Store::open(disk).unwrap();
        prop_assert_eq!(dump(&reopened), model);
    }

    #[test]
    fn crash_at_any_byte_recovers_a_batch_prefix(
        batches in batches_strategy(),
        crash_frac in 0.0f64..1.0,
        tear in any::<bool>(),
    ) {
        // First, measure the total bytes a clean run appends.
        let probe_disk = MemDisk::new();
        let probe = Store::open(probe_disk.clone()).unwrap();
        for batch in &batches {
            probe.apply(to_batch(batch)).unwrap();
        }
        let total = probe_disk.bytes_appended();
        prop_assume!(total > 0);
        let crash_at = (total as f64 * crash_frac) as u64;

        // Now the crashing run.
        let disk = MemDisk::new();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(crash_at, tear)));
        let store = Store::open(disk.clone()).unwrap();
        let mut acknowledged = 0usize;
        for batch in &batches {
            match store.apply(to_batch(batch)) {
                Ok(()) => acknowledged += 1,
                Err(_) => break,
            }
        }
        disk.reboot();
        let recovered = Store::open(disk).unwrap();
        let got = dump(&recovered);

        // Recovered state must equal the model after some prefix of whole
        // batches, and that prefix must include everything acknowledged.
        let mut model = BTreeMap::new();
        let mut candidates = vec![model.clone()];
        for batch in &batches {
            apply_model(&mut model, batch);
            candidates.push(model.clone());
        }
        let matching: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == got)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!matching.is_empty(), "recovered state is not any batch prefix");
        prop_assert!(
            matching.iter().any(|&i| i >= acknowledged),
            "durability violated: acknowledged {} batches but best prefix is {:?}",
            acknowledged,
            matching
        );
    }
}
