//! Concurrent reader/writer stress: readers must never observe a
//! half-applied batch, no matter how writes, group commits and
//! compactions interleave with their scans.
//!
//! The writer applies *marker batches*: every record written by batch
//! `i` carries the same value `i`.  A reader that scans the space and
//! sees two different values in what should be one batch's records has
//! observed a torn batch — exactly the isolation violation the
//! `RwLock`-based engine must rule out (writers hold the write lock for
//! the whole in-memory application).

use bioopera_store::{Batch, CompactionPolicy, MemDisk, Space, Store, TieredPolicy};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

/// Keys per marker batch: all of them must always agree.
const KEYS: usize = 16;
const READERS: usize = 4;
const BATCHES: u64 = 400;

fn marker_batch(value: u64) -> Batch {
    let mut b = Batch::new();
    let payload = Bytes::from(value.to_le_bytes().to_vec());
    for k in 0..KEYS {
        b.put(Space::Instance, format!("stress/{k:02}"), payload.clone());
    }
    b
}

fn decode(v: &Bytes) -> u64 {
    u64::from_le_bytes(v.as_slice().try_into().expect("8-byte marker value"))
}

#[test]
fn readers_never_observe_a_half_applied_batch() {
    let disk = MemDisk::new();
    let store = Store::open(disk.clone()).unwrap();
    store.apply(marker_batch(0)).unwrap();

    let done = AtomicBool::new(false);
    let max_seen = AtomicU64::new(0);

    thread::scope(|s| {
        for reader in 0..READERS {
            let store = store.clone();
            let done = &done;
            let max_seen = &max_seen;
            s.spawn(move || {
                let mut reads = 0u64;
                let mut last = 0u64;
                while !done.load(Ordering::Relaxed) {
                    // Scans and gets interleave; both must be consistent.
                    if reads.is_multiple_of(2) {
                        let hits = store.scan_prefix(Space::Instance, "stress/").unwrap();
                        assert_eq!(hits.len(), KEYS, "reader {reader}: batch partially visible");
                        let first = decode(&hits[0].1);
                        for (k, v) in &hits {
                            assert_eq!(
                                decode(v),
                                first,
                                "reader {reader}: torn batch at key {k} after {reads} reads"
                            );
                        }
                        assert!(
                            first >= last,
                            "reader {reader}: batch visibility went backwards ({last} -> {first})"
                        );
                        last = first;
                        max_seen.fetch_max(first, Ordering::Relaxed);
                    } else {
                        let a = store.get(Space::Instance, "stress/00").unwrap().unwrap();
                        let b = store
                            .get(Space::Instance, &format!("stress/{:02}", KEYS - 1))
                            .unwrap()
                            .unwrap();
                        // Two point reads may straddle a batch boundary, but
                        // can never run ahead of the committed sequence.
                        assert!(decode(&a) <= BATCHES && decode(&b) <= BATCHES);
                    }
                    // O(1) len never disagrees with the scan's cardinality.
                    assert_eq!(store.len(Space::Instance).unwrap(), KEYS);
                    reads += 1;
                }
                assert!(reads > 0);
            });
        }

        // One writer: single applies, group commits and compactions.
        let writer_store = store.clone();
        let done = &done;
        s.spawn(move || {
            let mut i = 1u64;
            while i <= BATCHES {
                match i % 5 {
                    0 if i < BATCHES => {
                        // Group-commit two consecutive markers in one append.
                        let pair = [marker_batch(i), marker_batch(i + 1)];
                        writer_store.apply_many(pair).unwrap();
                        i += 2;
                    }
                    3 => {
                        writer_store.apply(marker_batch(i)).unwrap();
                        writer_store.compact().unwrap();
                        i += 1;
                    }
                    _ => {
                        writer_store.apply(marker_batch(i)).unwrap();
                        i += 1;
                    }
                }
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    // The final state is the last marker, and it survives reopen.
    let hits = store.scan_prefix(Space::Instance, "stress/").unwrap();
    assert_eq!(hits.len(), KEYS);
    for (_, v) in &hits {
        assert_eq!(decode(v), BATCHES);
    }
    assert!(max_seen.load(Ordering::Relaxed) <= BATCHES);
    drop(store);
    let recovered = Store::open(disk).unwrap();
    for (_, v) in recovered.scan_prefix(Space::Instance, "stress/").unwrap() {
        assert_eq!(decode(&v), BATCHES);
    }
}

#[test]
fn tiered_spills_and_merges_under_concurrent_readers_never_break_a_scan() {
    // Regression test for the run-GC race: a merge compaction must swap
    // the in-memory tier list before deleting its input files, or a
    // reader holding the old view scans a vanished run.  The tiny budget
    // and merge threshold make spills and merges continuous while the
    // readers hammer scans, gets and len.
    let disk = MemDisk::new();
    let store = Store::open_with(
        disk.clone(),
        Some(TieredPolicy {
            memtable_budget_bytes: 2048,
            run_merge_threshold: 2,
            ..TieredPolicy::default()
        }),
    )
    .unwrap();
    store.apply(marker_batch(0)).unwrap();

    const TIERED_BATCHES: u64 = 200;
    let done = AtomicBool::new(false);
    thread::scope(|s| {
        for reader in 0..READERS {
            let store = store.clone();
            let done = &done;
            s.spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let hits = store.scan_prefix(Space::Instance, "stress/").unwrap();
                    assert_eq!(hits.len(), KEYS, "reader {reader}: batch partially visible");
                    let first = decode(&hits[0].1);
                    for (k, v) in &hits {
                        assert_eq!(decode(v), first, "reader {reader}: torn batch at key {k}");
                    }
                    assert!(first >= last, "reader {reader}: visibility went backwards");
                    last = first;
                    let point = store.get(Space::Instance, "stress/00").unwrap().unwrap();
                    assert!(decode(&point) <= TIERED_BATCHES);
                    assert_eq!(store.len(Space::Instance).unwrap(), KEYS);
                }
            });
        }
        let writer = store.clone();
        let done = &done;
        s.spawn(move || {
            for i in 1..=TIERED_BATCHES {
                writer.apply(marker_batch(i)).unwrap();
                if i % 40 == 0 {
                    writer.compact().unwrap();
                }
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    // The workload actually exercised the tier machinery.
    let stats = store.stats();
    assert!(stats.spills > 0, "budget never triggered a spill");
    assert!(stats.run_merges > 0, "threshold never triggered a merge");

    drop(store);
    let recovered = Store::open_with(disk, None).unwrap();
    let hits = recovered.scan_prefix(Space::Instance, "stress/").unwrap();
    assert_eq!(hits.len(), KEYS);
    for (_, v) in &hits {
        assert_eq!(decode(v), TIERED_BATCHES);
    }
}

#[test]
fn auto_compaction_under_concurrent_readers_keeps_state_consistent() {
    let disk = MemDisk::new();
    let store = Store::open(disk.clone()).unwrap();
    store.set_compaction_policy(Some(CompactionPolicy {
        wal_bytes_threshold: 2 * 1024,
        min_wal_batches: 2,
    }));
    store.apply(marker_batch(0)).unwrap();

    let done = AtomicBool::new(false);
    thread::scope(|s| {
        for _ in 0..READERS {
            let store = store.clone();
            let done = &done;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let hits = store.scan_prefix(Space::Instance, "stress/").unwrap();
                    assert_eq!(hits.len(), KEYS);
                    let first = decode(&hits[0].1);
                    for (_, v) in &hits {
                        assert_eq!(decode(v), first);
                    }
                }
            });
        }
        let writer = store.clone();
        let done = &done;
        s.spawn(move || {
            for i in 1..=200u64 {
                writer.apply(marker_batch(i)).unwrap();
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    // The policy actually fired (epoch advanced) and nothing was lost.
    assert!(store.stats().epoch > 0, "auto-compaction never triggered");
    drop(store);
    let recovered = Store::open(disk).unwrap();
    assert_eq!(recovered.len(Space::Instance).unwrap(), KEYS);
    for (_, v) in recovered.scan_prefix(Space::Instance, "stress/").unwrap() {
        assert_eq!(decode(&v), 200);
    }
}
