//! Fuzz-style property tests for `wal::replay` (ISSUE 2 satellite).
//!
//! Starting from a *valid* multi-frame log, arbitrary byte mutations
//! (bit flips, truncations, garbage splices) must never panic the
//! replayer.  Every outcome is one of exactly two shapes:
//!
//! * `Ok(replay)` — the decoded batches are a **prefix** of the original
//!   batches up to the first mutated byte, and the byte accounting is
//!   exact: `valid_len + truncated_bytes == log.len()`.
//! * `Err(StoreError::Corruption(_))` — a typed error; never a panic,
//!   never an I/O error, and never bogus decoded batches.

use bioopera_store::wal::{encode_frame, replay, WalOp};
use bioopera_store::StoreError;
use bytes::Bytes;
use proptest::prelude::*;

/// A deterministic valid log: returns `(log bytes, frame boundaries)`.
fn valid_log(n_frames: usize, fat: bool) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut bounds = vec![0usize];
    for i in 0..n_frames {
        let mut ops = vec![WalOp::Put {
            space: (i % 4) as u8,
            key: format!("inst/{i}/task/t{i}"),
            value: Bytes::from(vec![i as u8; if fat { 64 + i } else { i % 7 }]),
        }];
        if i % 3 == 0 {
            ops.push(WalOp::Delete {
                space: (i % 4) as u8,
                key: format!("old/{i}"),
            });
        }
        log.extend_from_slice(&encode_frame(&ops));
        bounds.push(log.len());
    }
    (log, bounds)
}

#[derive(Debug, Clone)]
enum Mutation {
    /// XOR a mask into one byte (position as a fraction of the log).
    Flip { frac: f64, mask: u8 },
    /// Truncate the log at a fractional position.
    Truncate { frac: f64 },
    /// Splice garbage bytes at a fractional position.
    Splice { frac: f64, bytes: Vec<u8> },
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0.0f64..1.0, 1u8..=255).prop_map(|(frac, mask)| Mutation::Flip { frac, mask }),
        (0.0f64..1.0).prop_map(|frac| Mutation::Truncate { frac }),
        (0.0f64..1.0, prop::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(frac, bytes)| Mutation::Splice { frac, bytes }),
    ]
}

/// Apply mutations; returns the mutated log and the smallest byte offset
/// any mutation touched (everything before it is guaranteed intact).
fn mutate(log: &[u8], muts: &[Mutation]) -> (Vec<u8>, usize) {
    let mut out = log.to_vec();
    let mut first_touched = out.len();
    for m in muts {
        if out.is_empty() {
            break;
        }
        match m {
            Mutation::Flip { frac, mask } => {
                let at = ((out.len() as f64 * frac) as usize).min(out.len() - 1);
                out[at] ^= mask;
                first_touched = first_touched.min(at);
            }
            Mutation::Truncate { frac } => {
                let at = ((out.len() as f64 * frac) as usize).min(out.len());
                out.truncate(at);
                first_touched = first_touched.min(at);
            }
            Mutation::Splice { frac, bytes } => {
                let at = ((out.len() as f64 * frac) as usize).min(out.len());
                for (i, b) in bytes.iter().enumerate() {
                    out.insert(at + i, *b);
                }
                first_touched = first_touched.min(at);
            }
        }
    }
    (out, first_touched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn replay_of_mutated_log_is_prefix_or_typed_error(
        n_frames in 1usize..12,
        fat in any::<bool>(),
        muts in prop::collection::vec(mutation_strategy(), 1..6),
    ) {
        let (log, bounds) = valid_log(n_frames, fat);
        let oracle = replay(&log).unwrap();
        prop_assert_eq!(oracle.batches.len(), n_frames);
        prop_assert!(!oracle.torn_tail);

        let (mutated, first_touched) = mutate(&log, &muts);
        // Frames entirely before the first mutated byte must replay intact.
        let intact_frames = bounds.iter().filter(|b| **b <= first_touched).count() - 1;
        match replay(&mutated) {
            Ok(r) => {
                prop_assert_eq!(
                    r.valid_len + r.truncated_bytes,
                    mutated.len(),
                    "byte accounting must be exact"
                );
                prop_assert!(r.torn_tail == (r.truncated_bytes > 0));
                prop_assert!(
                    r.batches.len() >= intact_frames,
                    "lost {} intact frames (got {})",
                    intact_frames,
                    r.batches.len()
                );
                for (i, got) in r.batches.iter().enumerate().take(intact_frames) {
                    prop_assert_eq!(got, &oracle.batches[i], "intact frame {} diverged", i);
                }
            }
            Err(StoreError::Corruption(_)) => {} // typed, acceptable
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
    }

    #[test]
    fn replay_of_pure_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match replay(&bytes) {
            Ok(r) => prop_assert_eq!(r.valid_len + r.truncated_bytes, bytes.len()),
            Err(StoreError::Corruption(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
    }
}
