//! Bit-identity oracle for the query-profile alignment kernel.
//!
//! The profile/wavefront kernel behind [`align_score`],
//! [`align_score_with`] and [`align_score_many`] must agree with the
//! retained naive implementation [`align_score_naive`] **bit-for-bit** —
//! same `score` (compared via `to_bits`, not a tolerance) and same
//! `cells` — across random sequences, every matrix of the PAM ladder,
//! and the degenerate shapes (empty sequences, lengths around the
//! 4-row wavefront boundary), with the scratch reused across pairs.

use bioopera_darwin::align::{
    align_score, align_score_many, align_score_naive, align_score_with, AlignParams, AlignScratch,
};
use bioopera_darwin::pam::PamFamily;
use bioopera_darwin::refine::{refine_pam_distance, refine_pam_distance_with};
use bioopera_darwin::Sequence;
use proptest::prelude::*;

fn residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn profile_kernel_is_bit_identical_across_the_ladder(
        a in residues(48),
        b in residues(48),
        ladder_idx in 0usize..12,
    ) {
        let fam = PamFamily::default();
        let m = &fam.ladder()[ladder_idx % fam.ladder().len()];
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let naive = align_score_naive(&sa, &sb, m, &p);
        let fast = align_score(&sa, &sb, m, &p);
        prop_assert_eq!(fast.score.to_bits(), naive.score.to_bits(),
            "score {} vs naive {} (pam {})", fast.score, naive.score, m.pam);
        prop_assert_eq!(fast.cells, naive.cells);
    }

    #[test]
    fn reused_scratch_stays_bit_identical_across_pairs(
        seqs in prop::collection::vec(residues(40), 2..6),
    ) {
        // One scratch across many differently-sized pairs: stale profile
        // or row state from a previous pair must never leak.
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let seqs: Vec<Sequence> =
            seqs.into_iter().enumerate().map(|(i, r)| Sequence::new(i as u32, r)).collect();
        let mut scratch = AlignScratch::new();
        for a in &seqs {
            for b in &seqs {
                let naive = align_score_naive(a, b, m, &p);
                let fast = align_score_with(a, b, m, &p, &mut scratch);
                prop_assert_eq!(fast.score.to_bits(), naive.score.to_bits());
                prop_assert_eq!(fast.cells, naive.cells);
            }
        }
    }

    #[test]
    fn batched_many_matches_per_pair_naive(
        query in residues(40),
        subjects in prop::collection::vec(residues(40), 0..8),
    ) {
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let q = Sequence::new(0, query);
        let subs: Vec<Sequence> =
            subjects.into_iter().enumerate().map(|(i, r)| Sequence::new(1 + i as u32, r)).collect();
        let mut scratch = AlignScratch::new();
        let mut out = Vec::new();
        align_score_many(&q, subs.iter(), m, &p, None, &mut scratch, &mut out);
        prop_assert_eq!(out.len(), subs.len());
        for (s, r) in subs.iter().zip(&out) {
            let naive = align_score_naive(&q, s, m, &p);
            prop_assert_eq!(r.score.to_bits(), naive.score.to_bits());
            prop_assert_eq!(r.cells, naive.cells);
        }
    }

    #[test]
    fn refinement_with_scratch_matches_naive_ladder_scan(
        a in residues(36),
        b in residues(36),
    ) {
        let fam = PamFamily::default();
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        // Naive ladder scan, same argmax rule as refine_pam_distance.
        let mut best_pam = fam.ladder()[0].pam;
        let mut best_score = f32::NEG_INFINITY;
        let mut cells = 0u64;
        for m in fam.ladder() {
            let r = align_score_naive(&sa, &sb, m, &p);
            cells += r.cells;
            if r.score > best_score {
                best_score = r.score;
                best_pam = m.pam;
            }
        }
        let mut scratch = AlignScratch::new();
        let with = refine_pam_distance_with(&sa, &sb, &fam, &p, &mut scratch);
        let plain = refine_pam_distance(&sa, &sb, &fam, &p);
        prop_assert_eq!(with.pam_distance, best_pam);
        prop_assert_eq!(with.score.to_bits(), best_score.to_bits());
        prop_assert_eq!(with.cells, cells);
        prop_assert_eq!(plain.score.to_bits(), with.score.to_bits());
        prop_assert_eq!(plain.pam_distance, with.pam_distance);
        prop_assert_eq!(plain.cells, with.cells);
    }

    #[test]
    fn prune_never_drops_a_pair_reaching_the_threshold(
        query in residues(32),
        subjects in prop::collection::vec(residues(32), 0..6),
        threshold in 0.0f32..120.0,
    ) {
        // With pruning on, a skipped pair reports score 0 — legal only if
        // its true score was below the threshold.
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams { prune: true, ..AlignParams::default() };
        let q = Sequence::new(0, query);
        let subs: Vec<Sequence> =
            subjects.into_iter().enumerate().map(|(i, r)| Sequence::new(1 + i as u32, r)).collect();
        let mut scratch = AlignScratch::new();
        let mut out = Vec::new();
        align_score_many(&q, subs.iter(), m, &p, Some(threshold), &mut scratch, &mut out);
        for (s, r) in subs.iter().zip(&out) {
            let naive = align_score_naive(&q, s, m, &p);
            if r.cells == 0 && naive.cells != 0 {
                // Pruned: the oracle score must be under the threshold.
                prop_assert!(naive.score < threshold,
                    "pruned a pair scoring {} >= threshold {}", naive.score, threshold);
            } else {
                prop_assert_eq!(r.score.to_bits(), naive.score.to_bits());
                prop_assert_eq!(r.cells, naive.cells);
            }
        }
    }
}

/// Wavefront boundary shapes: the 4-row block kernel switches between
/// pipelined and scalar paths at subject lengths around multiples of 4,
/// and the pipeline fill/drain logic degenerates for tiny queries.
#[test]
fn degenerate_and_boundary_shapes_are_bit_identical() {
    let fam = PamFamily::default();
    let m = fam.nearest(120);
    let p = AlignParams::default();
    let mk = |id: u32, n: usize| Sequence::new(id, (0..n).map(|i| (i * 7 % 20) as u8).collect());
    let mut scratch = AlignScratch::new();
    for &na in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16] {
        for &nb in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16] {
            let a = mk(0, na);
            let b = mk(1, nb);
            let naive = align_score_naive(&a, &b, m, &p);
            let fast = align_score_with(&a, &b, m, &p, &mut scratch);
            assert_eq!(
                fast.score.to_bits(),
                naive.score.to_bits(),
                "na={na} nb={nb}"
            );
            assert_eq!(fast.cells, naive.cells, "na={na} nb={nb}");
            assert_eq!(naive.cells, (na as u64) * (nb as u64));
        }
    }
}
