//! Bit-identity oracle for the striped SIMD lane and the banded
//! refinement, at every SIMD level the host supports.
//!
//! The generic proptests in `profile_kernel_bitident.rs` run at the
//! auto-detected level; this suite pins each level explicitly (via
//! [`AlignScratch::with_level`]) so the scalar fallback and the SSE2
//! lane stay exercised even on an AVX2 host, and covers the stripe
//! geometry edge cases: empty/1-residue queries, lengths around lane
//! and segment boundaries, and banding on/off.

use bioopera_darwin::align::{
    align_score_bounded_with, align_score_many, align_score_naive, align_score_with, AlignParams,
    AlignScratch,
};
use bioopera_darwin::pam::PamFamily;
use bioopera_darwin::refine::{refine_pam_distance_banded, refine_pam_distance_with};
use bioopera_darwin::simd::{self, SimdLevel};
use bioopera_darwin::{align_local, align_local_with, Alignment, Sequence};
use proptest::prelude::*;

/// Every level the host can execute (always includes `Scalar`).
fn levels() -> Vec<SimdLevel> {
    let mut v = vec![SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];
    v.retain(|&l| l <= simd::max_supported());
    v
}

fn residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_level_is_bit_identical_across_the_ladder(
        a in residues(48),
        b in residues(48),
        ladder_idx in 0usize..12,
    ) {
        let fam = PamFamily::default();
        let m = &fam.ladder()[ladder_idx % fam.ladder().len()];
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let naive = align_score_naive(&sa, &sb, m, &p);
        for level in levels() {
            let mut scratch = AlignScratch::with_level(level);
            let fast = align_score_with(&sa, &sb, m, &p, &mut scratch);
            prop_assert_eq!(fast.score.to_bits(), naive.score.to_bits(),
                "level {} score {} vs naive {}", level.name(), fast.score, naive.score);
            prop_assert_eq!(fast.cells, naive.cells);
            prop_assert_eq!(fast.cells_skipped, 0);
        }
    }

    #[test]
    fn banded_refine_matches_unbanded_at_every_level(
        a in residues(40),
        b in residues(40),
    ) {
        let fam = PamFamily::default();
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let ladder_len = fam.ladder().len() as u64;
        for level in levels() {
            let mut scratch = AlignScratch::with_level(level);
            let plain = refine_pam_distance_with(&sa, &sb, &fam, &p, &mut scratch);
            let banded = refine_pam_distance_banded(&sa, &sb, &fam, &p, &mut scratch);
            prop_assert_eq!(banded.pam_distance, plain.pam_distance, "level {}", level.name());
            prop_assert_eq!(banded.score.to_bits(), plain.score.to_bits());
            // Every ladder cell is accounted exactly once: computed or
            // provably skipped.
            let total = sa.residues.len() as u64 * sb.residues.len() as u64 * ladder_len;
            prop_assert_eq!(banded.cells + banded.cells_skipped, total);
            prop_assert_eq!(plain.cells, total);
        }
    }

    #[test]
    fn bounded_score_is_exact_when_it_beats_the_bound(
        a in residues(40),
        b in residues(40),
        beat in -10.0f32..200.0,
    ) {
        // align_score_bounded_with must return the exact score whenever
        // the true score exceeds `beat`, and never claim a score above
        // `beat` otherwise.
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let naive = align_score_naive(&sa, &sb, m, &p);
        for level in levels() {
            let mut scratch = AlignScratch::with_level(level);
            let r = align_score_bounded_with(&sa, &sb, m, &p, beat, &mut scratch);
            prop_assert_eq!(r.cells + r.cells_skipped, naive.cells);
            if naive.score > beat {
                prop_assert_eq!(r.score.to_bits(), naive.score.to_bits(),
                    "level {} truncated a winning matrix", level.name());
                prop_assert_eq!(r.cells_skipped, 0,
                    "a winning matrix must be fully computed");
            } else {
                prop_assert!(r.score <= beat,
                    "level {} partial score {} exceeds beat {}", level.name(), r.score, beat);
            }
        }
    }

    #[test]
    fn prune_accounting_is_exact_at_every_level(
        query in residues(32),
        subjects in prop::collection::vec(residues(32), 0..6),
        threshold in 0.0f32..120.0,
    ) {
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams { prune: true, ..AlignParams::default() };
        let q = Sequence::new(0, query);
        let subs: Vec<Sequence> =
            subjects.into_iter().enumerate().map(|(i, r)| Sequence::new(1 + i as u32, r)).collect();
        for level in levels() {
            let mut scratch = AlignScratch::with_level(level);
            let mut out = Vec::new();
            align_score_many(&q, subs.iter(), m, &p, Some(threshold), &mut scratch, &mut out);
            for (s, r) in subs.iter().zip(&out) {
                let naive = align_score_naive(&q, s, m, &p);
                // Computed or skipped, every cell is accounted.
                prop_assert_eq!(r.cells + r.cells_skipped, naive.cells);
                if r.cells_skipped > 0 {
                    prop_assert_eq!(r.cells, 0);
                    prop_assert!(naive.score < threshold);
                } else {
                    prop_assert_eq!(r.score.to_bits(), naive.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn traceback_with_reused_scratch_matches_fresh(
        pairs in prop::collection::vec((residues(32), residues(32)), 1..5),
    ) {
        // One scratch + one Alignment across differently-sized pairs:
        // stale traceback state must never leak.
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let mut scratch = AlignScratch::new();
        let mut out = Alignment::default();
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            let sa = Sequence::new(2 * i as u32, a);
            let sb = Sequence::new(2 * i as u32 + 1, b);
            let fresh = align_local(&sa, &sb, m, &p);
            align_local_with(&sa, &sb, m, &p, &mut scratch, &mut out);
            prop_assert_eq!(&out, &fresh);
        }
    }
}

/// Stripe-geometry boundary shapes: segment length `seg = ceil(n/lanes)`
/// degenerates for tiny queries, and the padded-lane logic changes at
/// every multiple of `lanes` and `seg`.  Cover lengths around 4/8/16/32
/// at every level, plus empty and single-residue sequences.
#[test]
fn stripe_boundary_shapes_are_bit_identical() {
    let fam = PamFamily::default();
    let m = fam.nearest(120);
    let p = AlignParams::default();
    let mk = |id: u32, n: usize| Sequence::new(id, (0..n).map(|i| (i * 7 % 20) as u8).collect());
    let sizes = [
        0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 25, 31, 32, 33, 63, 64, 65,
    ];
    for level in levels() {
        let mut scratch = AlignScratch::with_level(level);
        for &na in &sizes {
            for &nb in &sizes {
                let a = mk(0, na);
                let b = mk(1, nb);
                let naive = align_score_naive(&a, &b, m, &p);
                let fast = align_score_with(&a, &b, m, &p, &mut scratch);
                assert_eq!(
                    fast.score.to_bits(),
                    naive.score.to_bits(),
                    "level={} na={na} nb={nb}",
                    level.name()
                );
                assert_eq!(
                    fast.cells,
                    naive.cells,
                    "level={} na={na} nb={nb}",
                    level.name()
                );
            }
        }
    }
}

/// The portable fallback must stay reachable on any host: a pinned
/// scalar scratch reports `Scalar` and still matches the oracle (the
/// `BIOOPERA_SIMD=scalar` escape hatch runs the whole suite this way
/// in CI via scripts/check.sh).
#[test]
fn forced_scalar_fallback_is_exercised() {
    let scratch = AlignScratch::with_level(SimdLevel::Scalar);
    assert_eq!(scratch.level(), SimdLevel::Scalar);
    // Over-asking is clamped, never trusted blindly.
    let over = AlignScratch::with_level(SimdLevel::Avx2);
    assert!(over.level() <= simd::max_supported());

    let fam = PamFamily::default();
    let m = fam.nearest(120);
    let p = AlignParams::default();
    let a = Sequence::new(0, (0..57).map(|i| (i * 3 % 20) as u8).collect());
    let b = Sequence::new(1, (0..43).map(|i| (i * 11 % 20) as u8).collect());
    let naive = align_score_naive(&a, &b, m, &p);
    let mut scalar = AlignScratch::with_level(SimdLevel::Scalar);
    let r = align_score_with(&a, &b, m, &p, &mut scalar);
    assert_eq!(r.score.to_bits(), naive.score.to_bits());
    assert_eq!(r.cells, naive.cells);
}
