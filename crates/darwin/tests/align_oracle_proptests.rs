//! Property tests pitting the Gotoh DP aligner against a brute-force
//! oracle that enumerates *every* local alignment of tiny sequences.
//! If the DP recurrences mis-handle affine gap transitions, this finds it.

use bioopera_darwin::align::{align_local, align_score, AlignParams};
use bioopera_darwin::pam::PamFamily;
use bioopera_darwin::Sequence;
use proptest::prelude::*;

/// Enumerate all local alignments by recursion over (i, j) cursors with an
/// explicit "in gap" state, returning the best score.  Exponential — only
/// usable for sequences of length ≤ 7.
fn brute_force_best(a: &[u8], b: &[u8], m: &bioopera_darwin::ScoreMatrix, p: &AlignParams) -> f32 {
    #[derive(Clone, Copy, PartialEq)]
    enum GapState {
        None,
        InA, // gap in a (consuming b)
        InB, // gap in b (consuming a)
    }
    fn go(
        a: &[u8],
        b: &[u8],
        i: usize,
        j: usize,
        state: GapState,
        m: &bioopera_darwin::ScoreMatrix,
        p: &AlignParams,
    ) -> f32 {
        // Best continuation from (i, j); may stop here (local alignment).
        let mut best = 0.0f32;
        if i < a.len() && j < b.len() {
            let sub = m.score(a[i] as usize, b[j] as usize)
                + go(a, b, i + 1, j + 1, GapState::None, m, p);
            best = best.max(sub);
        }
        if j < b.len() {
            let cost = if state == GapState::InA {
                p.gap_extend
            } else {
                p.gap_open
            };
            best = best.max(-cost + go(a, b, i, j + 1, GapState::InA, m, p));
        }
        if i < a.len() {
            let cost = if state == GapState::InB {
                p.gap_extend
            } else {
                p.gap_open
            };
            best = best.max(-cost + go(a, b, i + 1, j, GapState::InB, m, p));
        }
        best
    }
    // Try every start position pair.
    let mut best = 0.0f32;
    for i in 0..=a.len() {
        for j in 0..=b.len() {
            best = best.max(go(a, b, i, j, GapState::None, m, p));
        }
    }
    best
}

fn residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_matches_brute_force_on_tiny_sequences(a in residues(6), b in residues(6)) {
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let dp = align_score(&sa, &sb, m, &p).score;
        let oracle = brute_force_best(&sa.residues, &sb.residues, m, &p);
        prop_assert!((dp - oracle).abs() < 1e-3, "dp {dp} vs oracle {oracle}");
    }

    #[test]
    fn traceback_score_equals_rolling_score(a in residues(24), b in residues(24)) {
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let fast = align_score(&sa, &sb, m, &p).score;
        let full = align_local(&sa, &sb, m, &p);
        prop_assert!((fast - full.score).abs() < 1e-3);
        // Traceback consistency: op counts match the covered ranges.
        use bioopera_darwin::align::AlignOp;
        let a_used = full.ops.iter().filter(|o| **o != AlignOp::InsB).count();
        let b_used = full.ops.iter().filter(|o| **o != AlignOp::InsA).count();
        prop_assert_eq!(full.a_range.1 - full.a_range.0, a_used);
        prop_assert_eq!(full.b_range.1 - full.b_range.0, b_used);
        prop_assert!(full.identities <= full.ops.len());
    }

    #[test]
    fn score_symmetric_under_argument_swap(a in residues(20), b in residues(20)) {
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let sa = Sequence::new(0, a);
        let sb = Sequence::new(1, b);
        let ab = align_score(&sa, &sb, m, &p).score;
        let ba = align_score(&sb, &sa, m, &p).score;
        prop_assert!((ab - ba).abs() < 1e-3, "{ab} vs {ba}");
    }

    #[test]
    fn appending_residues_never_lowers_the_score(a in residues(16), b in residues(16), extra in residues(4)) {
        // Local alignment can always ignore a suffix: score is monotone
        // under concatenation.
        let fam = PamFamily::default();
        let m = fam.nearest(120);
        let p = AlignParams::default();
        let sa = Sequence::new(0, a.clone());
        let sb = Sequence::new(1, b);
        let base = align_score(&sa, &sb, m, &p).score;
        let mut longer = a;
        longer.extend(extra);
        let sa2 = Sequence::new(0, longer);
        let grown = align_score(&sa2, &sb, m, &p).score;
        prop_assert!(grown + 1e-3 >= base, "grown {grown} < base {base}");
    }
}
