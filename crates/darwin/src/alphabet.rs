//! The 20-letter amino-acid alphabet, background frequencies and
//! physico-chemical properties.
//!
//! Frequencies are the Robinson–Robinson background frequencies used by
//! most substitution-matrix derivations; properties (Kyte–Doolittle
//! hydropathy, side-chain volume, charge, polarity) parameterize the
//! synthetic mutation model in [`crate::pam`].

/// Number of amino acids.
pub const ALPHABET_SIZE: usize = 20;

/// An amino acid, identified by its index in canonical one-letter order
/// `ARNDCQEGHILKMFPSTWYV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AminoAcid(pub u8);

/// Canonical one-letter codes, index order used throughout the crate.
pub const LETTERS: [char; ALPHABET_SIZE] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y',
    'V',
];

/// Background frequencies (Robinson & Robinson 1991), normalized.
pub const FREQUENCIES: [f64; ALPHABET_SIZE] = [
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
    0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
];

/// Kyte–Doolittle hydropathy.
pub const HYDROPATHY: [f64; ALPHABET_SIZE] = [
    1.8, -4.5, -3.5, -3.5, 2.5, -3.5, -3.5, -0.4, -3.2, 4.5, 3.8, -3.9, 1.9, 2.8, -1.6, -0.8, -0.7,
    -0.9, -1.3, 4.2,
];

/// Side-chain volume (Å³).
pub const VOLUME: [f64; ALPHABET_SIZE] = [
    88.6, 173.4, 114.1, 111.1, 108.5, 143.8, 138.4, 60.1, 153.2, 166.7, 166.7, 168.6, 162.9, 189.9,
    112.7, 89.0, 116.1, 227.8, 193.6, 140.0,
];

/// Net side-chain charge at pH 7.
pub const CHARGE: [f64; ALPHABET_SIZE] = [
    0.0, 1.0, 0.0, -1.0, 0.0, 0.0, -1.0, 0.0, 0.5, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
    0.0, 0.0,
];

/// Polar side chain (1) or not (0).
pub const POLAR: [f64; ALPHABET_SIZE] = [
    0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0,
    0.0,
];

impl AminoAcid {
    /// From a one-letter code (case-insensitive).
    pub fn from_char(c: char) -> Option<AminoAcid> {
        let upper = c.to_ascii_uppercase();
        LETTERS
            .iter()
            .position(|&l| l == upper)
            .map(|i| AminoAcid(i as u8))
    }

    /// One-letter code.
    pub fn to_char(self) -> char {
        LETTERS[self.0 as usize]
    }

    /// Index in canonical order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Background frequency.
    pub fn frequency(self) -> f64 {
        FREQUENCIES[self.index()]
    }
}

/// Physico-chemical dissimilarity in normalized property space; drives the
/// synthetic exchangeability model (similar residues exchange more often,
/// as in empirical Dayhoff matrices).
pub fn property_distance(a: usize, b: usize) -> f64 {
    // Normalize each property by its observed range so no axis dominates.
    let dh = (HYDROPATHY[a] - HYDROPATHY[b]) / 9.0; // range -4.5..4.5
    let dv = (VOLUME[a] - VOLUME[b]) / 167.7; // range 60.1..227.8
    let dc = (CHARGE[a] - CHARGE[b]) / 2.0;
    let dp = POLAR[a] - POLAR[b];
    (dh * dh + dv * dv + dc * dc + 0.5 * dp * dp).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_sum_to_one() {
        let s: f64 = FREQUENCIES.iter().sum();
        assert!((s - 1.0).abs() < 1e-3, "sum {s}");
    }

    #[test]
    fn char_roundtrip() {
        for (i, &c) in LETTERS.iter().enumerate() {
            let aa = AminoAcid::from_char(c).unwrap();
            assert_eq!(aa.index(), i);
            assert_eq!(aa.to_char(), c);
            // Lowercase accepted.
            assert_eq!(AminoAcid::from_char(c.to_ascii_lowercase()), Some(aa));
        }
        assert_eq!(AminoAcid::from_char('B'), None);
        assert_eq!(AminoAcid::from_char('Z'), None);
        assert_eq!(AminoAcid::from_char('*'), None);
    }

    #[test]
    fn property_distance_is_metric_like() {
        for a in 0..ALPHABET_SIZE {
            assert_eq!(property_distance(a, a), 0.0);
            for b in 0..ALPHABET_SIZE {
                assert_eq!(property_distance(a, b), property_distance(b, a));
                if a != b {
                    assert!(property_distance(a, b) > 0.0);
                }
            }
        }
    }

    #[test]
    fn chemically_similar_pairs_are_close() {
        let idx = |c: char| AminoAcid::from_char(c).unwrap().index();
        // I/L (both large hydrophobic) closer than I/D (hydrophobic vs acid).
        assert!(property_distance(idx('I'), idx('L')) < property_distance(idx('I'), idx('D')));
        // D/E closer than D/W.
        assert!(property_distance(idx('D'), idx('E')) < property_distance(idx('D'), idx('W')));
        // S/T close.
        assert!(property_distance(idx('S'), idx('T')) < 0.3);
    }
}
