//! Synthetic SwissProt-like sequence databases.
//!
//! SwissProt v38 is not shipped with this reproduction; what the systems
//! experiments need from it is (a) a size `N`, (b) a realistic length
//! distribution, and (c) genuine homologous pairs spread over a range of
//! evolutionary distances so the all-vs-all's match/refine pipeline has
//! real work.  The generator evolves protein *families* from random
//! ancestors under the same PAM mutation model used for scoring, with
//! occasional indels, so family members align with high scores and
//! refinement recovers their divergence.

use crate::alphabet::{ALPHABET_SIZE, FREQUENCIES};
use crate::pam::PamFamily;
use crate::sequence::Sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Total number of sequences.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mean sequence length (lengths are drawn log-normal-ish around it).
    pub mean_len: usize,
    /// Fraction of sequences that belong to multi-member families
    /// (the rest are singletons with no homologs).
    pub family_fraction: f64,
    /// Mean family size for family members.
    pub mean_family_size: usize,
    /// Maximum PAM distance between a family member and its ancestor.
    pub max_divergence: u32,
    /// Per-residue indel probability applied per evolution step batch.
    pub indel_rate: f64,
}

impl DatasetConfig {
    /// A small config for tests and the granularity experiment
    /// (the paper's Figure 4 used 500 entries).
    pub fn small(size: usize, seed: u64) -> Self {
        DatasetConfig {
            size,
            seed,
            mean_len: 150,
            family_fraction: 0.6,
            mean_family_size: 5,
            max_divergence: 130,
            indel_rate: 0.004,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            size: 500,
            seed: 38,
            mean_len: 150,
            family_fraction: 0.6,
            mean_family_size: 5,
            max_divergence: 130,
            indel_rate: 0.004,
        }
    }
}

/// A sequence database (the stand-in for SwissProt).
#[derive(Debug, Clone)]
pub struct SequenceDb {
    /// Sequences, entry numbers equal to their index.
    pub sequences: Vec<Sequence>,
    /// For each entry, the family id it belongs to (singletons get a
    /// unique id); ground truth for match-quality tests.
    pub family_of: Vec<u32>,
}

impl SequenceDb {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Entry by number.
    pub fn get(&self, entry: u32) -> &Sequence {
        &self.sequences[entry as usize]
    }

    /// Are two entries homologs by construction?
    pub fn same_family(&self, a: u32, b: u32) -> bool {
        self.family_of[a as usize] == self.family_of[b as usize]
    }

    /// Generate a database.
    pub fn generate(cfg: &DatasetConfig, family: &PamFamily) -> SequenceDb {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sequences = Vec::with_capacity(cfg.size);
        let mut family_of = Vec::with_capacity(cfg.size);
        let mut next_family = 0u32;
        while sequences.len() < cfg.size {
            let fam_id = next_family;
            next_family += 1;
            let len = sample_length(&mut rng, cfg.mean_len);
            let ancestor = random_sequence(&mut rng, len);
            let members = if rng.gen::<f64>() < cfg.family_fraction {
                // Geometric-ish family size with the configured mean, ≥ 2.
                let mut k = 2usize;
                while k < 4 * cfg.mean_family_size
                    && rng.gen::<f64>() < 1.0 - 1.0 / cfg.mean_family_size as f64
                {
                    k += 1;
                }
                k
            } else {
                1
            };
            for _ in 0..members {
                if sequences.len() >= cfg.size {
                    break;
                }
                let divergence = rng.gen_range(5..=cfg.max_divergence.max(6));
                let mut s = evolve(&ancestor, divergence, family, &mut rng, cfg.indel_rate);
                s.entry = sequences.len() as u32;
                sequences.push(s);
                family_of.push(fam_id);
            }
        }
        SequenceDb {
            sequences,
            family_of,
        }
    }

    /// Total residues (for cost estimation).
    pub fn total_residues(&self) -> u64 {
        self.sequences.iter().map(|s| s.len() as u64).sum()
    }

    /// Mean length.
    pub fn mean_len(&self) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            self.total_residues() as f64 / self.sequences.len() as f64
        }
    }
}

/// Draw a residue from the background distribution.
fn sample_residue(rng: &mut StdRng) -> u8 {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &f) in FREQUENCIES.iter().enumerate() {
        acc += f;
        if x < acc {
            return i as u8;
        }
    }
    (ALPHABET_SIZE - 1) as u8
}

/// A random sequence of length `n` with background composition.
pub fn random_sequence(rng: &mut StdRng, n: usize) -> Sequence {
    Sequence::new(0, (0..n).map(|_| sample_residue(rng)).collect())
}

/// Log-normal-ish length around `mean` (SwissProt lengths are skewed).
fn sample_length(rng: &mut StdRng, mean: usize) -> usize {
    // Sum of 3 uniforms approximates a bell; exponentiate mildly for skew.
    let u: f64 = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 3.0;
    let factor = (1.6 * (u - 0.5)).exp(); // ~0.45x .. 2.2x
    ((mean as f64 * factor).round() as usize).max(30)
}

/// Evolve `ancestor` across `pam` units of divergence: substitutions drawn
/// from the mutation matrix `M1^pam`, plus indels at `indel_rate`.
pub fn evolve(
    ancestor: &Sequence,
    pam: u32,
    family: &PamFamily,
    rng: &mut StdRng,
    indel_rate: f64,
) -> Sequence {
    let m = family.mutation_matrix(pam.max(1));
    let mut residues = Vec::with_capacity(ancestor.len() + 8);
    for &r in &ancestor.residues {
        // Indel process: small chance to delete or insert.
        let roll: f64 = rng.gen();
        if roll < indel_rate * (pam as f64 / 50.0).max(0.2) {
            if rng.gen::<bool>() {
                continue; // deletion
            } else {
                residues.push(sample_residue(rng)); // insertion before r
            }
        }
        // Substitution via the row of the mutation matrix.
        let row = &m[r as usize];
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        let mut out = r;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if x < acc {
                out = j as u8;
                break;
            }
        }
        residues.push(out);
    }
    Sequence::new(ancestor.entry, residues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{align_score, AlignParams};
    use crate::pam::FIXED_PAM;

    #[test]
    fn generation_is_deterministic() {
        let fam = PamFamily::default();
        let cfg = DatasetConfig::small(60, 7);
        let a = SequenceDb::generate(&cfg, &fam);
        let b = SequenceDb::generate(&cfg, &fam);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.family_of, b.family_of);
    }

    #[test]
    fn db_has_requested_size_and_entry_numbering() {
        let fam = PamFamily::default();
        let db = SequenceDb::generate(&DatasetConfig::small(100, 3), &fam);
        assert_eq!(db.len(), 100);
        for (i, s) in db.sequences.iter().enumerate() {
            assert_eq!(s.entry as usize, i);
            assert!(s.len() >= 30);
        }
    }

    #[test]
    fn lengths_are_dispersed_around_mean() {
        let fam = PamFamily::default();
        let db = SequenceDb::generate(&DatasetConfig::small(300, 9), &fam);
        let mean = db.mean_len();
        assert!(mean > 90.0 && mean < 230.0, "mean {mean}");
        let min = db.sequences.iter().map(|s| s.len()).min().unwrap();
        let max = db.sequences.iter().map(|s| s.len()).max().unwrap();
        assert!(max > min + 50, "lengths should vary: {min}..{max}");
    }

    #[test]
    fn family_members_outscore_strangers() {
        let fam = PamFamily::default();
        let db = SequenceDb::generate(&DatasetConfig::small(120, 21), &fam);
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let mut fam_scores = Vec::new();
        let mut cross_scores = Vec::new();
        for a in 0..db.len() as u32 {
            for b in (a + 1)..db.len().min(a as usize + 15) as u32 {
                let score = align_score(db.get(a), db.get(b), m, &p).score as f64;
                let norm = score / db.get(a).len().min(db.get(b).len()) as f64;
                if db.same_family(a, b) {
                    fam_scores.push(norm);
                } else {
                    cross_scores.push(norm);
                }
            }
        }
        assert!(!fam_scores.is_empty() && !cross_scores.is_empty());
        let fmean = fam_scores.iter().sum::<f64>() / fam_scores.len() as f64;
        let cmean = cross_scores.iter().sum::<f64>() / cross_scores.len() as f64;
        assert!(
            fmean > 3.0 * cmean.max(0.01),
            "family mean {fmean} should dwarf cross mean {cmean}"
        );
    }

    #[test]
    fn evolve_preserves_approximate_length() {
        let fam = PamFamily::default();
        let mut rng = StdRng::seed_from_u64(1);
        let anc = random_sequence(&mut rng, 200);
        let child = evolve(&anc, 100, &fam, &mut rng, 0.004);
        assert!((child.len() as i64 - 200).abs() < 30);
    }

    #[test]
    fn evolve_at_zero_indels_keeps_length() {
        let fam = PamFamily::default();
        let mut rng = StdRng::seed_from_u64(2);
        let anc = random_sequence(&mut rng, 150);
        let child = evolve(&anc, 50, &fam, &mut rng, 0.0);
        assert_eq!(child.len(), 150);
        // And it mutates roughly the expected number of residues: at PAM 50
        // expect ~60-70% identity typically; just require *some* change and
        // *mostly* identity.
        let same = anc
            .residues
            .iter()
            .zip(&child.residues)
            .filter(|(a, b)| a == b)
            .count();
        assert!(same > 75 && same < 150, "identities {same}/150");
    }
}
