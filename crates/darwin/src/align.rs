//! Smith–Waterman local alignment with affine gaps (Gotoh's algorithm).
//!
//! "This software offers a dynamic programming local alignment algorithm
//! which uses the GCB scoring matrices and an affine gap penalty" (§4).
//! Two entry points:
//!
//! * [`align_score`] — score-only, rolling arrays, O(min) memory; the hot
//!   path for the all-vs-all's fixed-PAM pass and PAM refinement,
//! * [`align_local`] — full traceback, used where the actual alignment is
//!   needed (the tower-of-information example, tests).

use crate::pam::ScoreMatrix;
use crate::sequence::Sequence;

/// Affine gap parameters: a gap of length `L` costs `open + extend·(L-1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignParams {
    /// Cost of opening a gap (positive number, subtracted).
    pub gap_open: f32,
    /// Cost of each further gapped position.
    pub gap_extend: f32,
}

impl Default for AlignParams {
    fn default() -> Self {
        // Tuned for the 10·log10-odds PAM family: diagonal entries run
        // ~4–18, so opening costs about two identities.
        AlignParams { gap_open: 22.0, gap_extend: 1.5 }
    }
}

/// Score-only result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreOnly {
    /// Best local alignment score (≥ 0).
    pub score: f32,
    /// DP cells computed (the unit of the cost model).
    pub cells: u64,
}

/// Score-only Smith–Waterman/Gotoh with rolling arrays.
pub fn align_score(a: &Sequence, b: &Sequence, m: &ScoreMatrix, p: &AlignParams) -> ScoreOnly {
    let (na, nb) = (a.residues.len(), b.residues.len());
    if na == 0 || nb == 0 {
        return ScoreOnly { score: 0.0, cells: 0 };
    }
    // Roll over b (columns); one row of H and E each.
    let mut h_prev = vec![0.0f32; nb + 1];
    let mut h_cur = vec![0.0f32; nb + 1];
    let mut e_row = vec![f32::NEG_INFINITY; nb + 1];
    let mut best = 0.0f32;
    for i in 1..=na {
        let ra = a.residues[i - 1] as usize;
        let mut f = f32::NEG_INFINITY;
        h_cur[0] = 0.0;
        for j in 1..=nb {
            let rb = b.residues[j - 1] as usize;
            e_row[j] = (h_prev[j] - p.gap_open).max(e_row[j] - p.gap_extend);
            f = (h_cur[j - 1] - p.gap_open).max(f - p.gap_extend);
            let diag = h_prev[j - 1] + m.score(ra, rb);
            let h = diag.max(e_row[j]).max(f).max(0.0);
            h_cur[j] = h;
            if h > best {
                best = h;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    ScoreOnly { score: best, cells: (na as u64) * (nb as u64) }
}

/// One aligned column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Residues aligned (match or mismatch).
    Sub,
    /// Gap in `a` (consumes a residue of `b`).
    InsB,
    /// Gap in `b` (consumes a residue of `a`).
    InsA,
}

/// A full local alignment with traceback.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Best local score.
    pub score: f32,
    /// Half-open residue range of `a` covered by the alignment.
    pub a_range: (usize, usize),
    /// Half-open residue range of `b` covered.
    pub b_range: (usize, usize),
    /// Column operations, start to end.
    pub ops: Vec<AlignOp>,
    /// Identical aligned residue pairs.
    pub identities: usize,
    /// DP cells computed.
    pub cells: u64,
}

impl Alignment {
    /// Aligned columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the alignment is empty (score 0 everywhere).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of substitution columns that are identities.
    pub fn identity_fraction(&self) -> f64 {
        let subs = self.ops.iter().filter(|o| **o == AlignOp::Sub).count();
        if subs == 0 {
            0.0
        } else {
            self.identities as f64 / subs as f64
        }
    }
}

/// Full Smith–Waterman/Gotoh with traceback.
pub fn align_local(a: &Sequence, b: &Sequence, m: &ScoreMatrix, p: &AlignParams) -> Alignment {
    let (na, nb) = (a.residues.len(), b.residues.len());
    let empty = Alignment {
        score: 0.0,
        a_range: (0, 0),
        b_range: (0, 0),
        ops: Vec::new(),
        identities: 0,
        cells: (na as u64) * (nb as u64),
    };
    if na == 0 || nb == 0 {
        return empty;
    }
    let w = nb + 1;
    let mut h = vec![0.0f32; (na + 1) * w];
    let mut e = vec![f32::NEG_INFINITY; (na + 1) * w];
    let mut f = vec![f32::NEG_INFINITY; (na + 1) * w];
    let mut best = 0.0f32;
    let mut best_pos = (0usize, 0usize);
    for i in 1..=na {
        let ra = a.residues[i - 1] as usize;
        for j in 1..=nb {
            let rb = b.residues[j - 1] as usize;
            let idx = i * w + j;
            e[idx] = (h[idx - 1] - p.gap_open).max(e[idx - 1] - p.gap_extend);
            f[idx] = (h[idx - w] - p.gap_open).max(f[idx - w] - p.gap_extend);
            let diag = h[idx - w - 1] + m.score(ra, rb);
            let v = diag.max(e[idx]).max(f[idx]).max(0.0);
            h[idx] = v;
            if v > best {
                best = v;
                best_pos = (i, j);
            }
        }
    }
    if best <= 0.0 {
        return empty;
    }
    // Traceback from best_pos until H hits 0.
    let (mut i, mut j) = best_pos;
    let mut ops = Vec::new();
    let mut identities = 0usize;
    #[derive(PartialEq, Clone, Copy)]
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    while i > 0 && j > 0 {
        let idx = i * w + j;
        match state {
            State::H => {
                let v = h[idx];
                if v == 0.0 {
                    break;
                }
                let ra = a.residues[i - 1] as usize;
                let rb = b.residues[j - 1] as usize;
                let diag = h[idx - w - 1] + m.score(ra, rb);
                if v == diag {
                    ops.push(AlignOp::Sub);
                    if ra == rb {
                        identities += 1;
                    }
                    i -= 1;
                    j -= 1;
                } else if v == e[idx] {
                    state = State::E;
                } else if v == f[idx] {
                    state = State::F;
                } else {
                    // Numerical tie broke differently; prefer diagonal.
                    ops.push(AlignOp::Sub);
                    if ra == rb {
                        identities += 1;
                    }
                    i -= 1;
                    j -= 1;
                }
            }
            State::E => {
                ops.push(AlignOp::InsB);
                let from_open = h[idx - 1] - p.gap_open;
                if e[idx] == from_open {
                    state = State::H;
                }
                j -= 1;
            }
            State::F => {
                ops.push(AlignOp::InsA);
                let from_open = h[idx - w] - p.gap_open;
                if f[idx] == from_open {
                    state = State::H;
                }
                i -= 1;
            }
        }
    }
    ops.reverse();
    Alignment {
        score: best,
        a_range: (i, best_pos.0),
        b_range: (j, best_pos.1),
        ops,
        identities,
        cells: (na as u64) * (nb as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pam::{PamFamily, FIXED_PAM};

    fn seq(s: &str) -> Sequence {
        Sequence::from_str(0, s).unwrap()
    }

    fn fam() -> PamFamily {
        PamFamily::default()
    }

    #[test]
    fn identical_sequences_score_sum_of_self_scores() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let s = seq("MKVLAWGCH");
        let out = align_score(&s, &s, m, &AlignParams::default());
        let expected: f32 = s.residues.iter().map(|&r| m.score(r as usize, r as usize)).sum();
        assert!((out.score - expected).abs() < 1e-3);
    }

    #[test]
    fn score_is_symmetric() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let a = seq("MKVLAWGCHDE");
        let b = seq("MKVIAWCHDE");
        let p = AlignParams::default();
        let ab = align_score(&a, &b, m, &p).score;
        let ba = align_score(&b, &a, m, &p).score;
        assert!((ab - ba).abs() < 1e-3);
    }

    #[test]
    fn local_alignment_ignores_junk_flanks() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let core = "MKVLAWGCHDEMKVLAWGCHDE";
        let a = seq(core);
        let b = seq(&format!("PPPPPPPP{core}GGGGGGGG"));
        let plain = align_score(&a, &a, m, &p).score;
        let flanked = align_score(&a, &b, m, &p).score;
        assert!((plain - flanked).abs() < 1e-3, "{plain} vs {flanked}");
    }

    #[test]
    fn traceback_matches_score_only() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let a = seq("MKVLAWGCHDEAAARNDCQE");
        let b = seq("MKVIAWGHDEAAARNDC");
        let fast = align_score(&a, &b, m, &p);
        let full = align_local(&a, &b, m, &p);
        assert!((fast.score - full.score).abs() < 1e-3);
        assert!(!full.is_empty());
        assert!(full.identities > 5);
    }

    #[test]
    fn gap_cost_is_affine() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        // One long gap must beat two short gaps of the same total length.
        let a = seq("MKVLAWGCHDEMKVLAWGCHDE");
        let gap1 = seq("MKVLAWGCHDEAAAAMKVLAWGCHDE"); // one 4-gap
        let s1 = align_score(&a, &gap1, m, &p).score;
        let gap2 = seq("MKVLAWGAACHDEMKVLAWAAGCHDE"); // two 2-gaps
        let s2 = align_score(&a, &gap2, m, &p).score;
        assert!(s1 > s2, "affine: one gap {s1} should beat two {s2}");
    }

    #[test]
    fn random_sequences_score_low() {
        use rand::{Rng, SeedableRng};
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut rand_seq = |n: usize, entry: u32| {
            Sequence::new(entry, (0..n).map(|_| rng.gen_range(0..20u8)).collect())
        };
        let mut self_scores = 0.0;
        let mut cross_scores = 0.0;
        for i in 0..10 {
            let a = rand_seq(200, i * 2);
            let b = rand_seq(200, i * 2 + 1);
            self_scores += align_score(&a, &a, m, &p).score;
            cross_scores += align_score(&a, &b, m, &p).score;
        }
        assert!(
            cross_scores < self_scores / 4.0,
            "unrelated sequences should score far below self: {cross_scores} vs {self_scores}"
        );
    }

    #[test]
    fn empty_sequences_yield_empty_alignment() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let a = seq("");
        let b = seq("MKV");
        assert_eq!(align_score(&a, &b, m, &p).score, 0.0);
        assert!(align_local(&a, &b, m, &p).is_empty());
    }

    #[test]
    fn traceback_ranges_are_consistent_with_ops() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let a = seq("GGGGMKVLAWGCHDEGGGG");
        let b = seq("PPPPMKVLAWGCHDEPPPP");
        let al = align_local(&a, &b, m, &p);
        let a_consumed = al.ops.iter().filter(|o| **o != AlignOp::InsB).count();
        let b_consumed = al.ops.iter().filter(|o| **o != AlignOp::InsA).count();
        assert_eq!(al.a_range.1 - al.a_range.0, a_consumed);
        assert_eq!(al.b_range.1 - al.b_range.0, b_consumed);
        // The conserved core is found.
        assert!(al.identities >= 11);
    }
}
