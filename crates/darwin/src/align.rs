//! Smith–Waterman local alignment with affine gaps (Gotoh's algorithm).
//!
//! "This software offers a dynamic programming local alignment algorithm
//! which uses the GCB scoring matrices and an affine gap penalty" (§4).
//! Entry points:
//!
//! * [`align_score`] — score-only, the hot path for the all-vs-all's
//!   fixed-PAM pass and PAM refinement.  Internally this runs the
//!   **query-profile kernel**: the score matrix is first flattened into a
//!   per-query profile (one contiguous 20-row table of
//!   `score(query[i], r)` per residue `r`), so the DP inner loop reads one
//!   cache-resident row per subject residue instead of double-indexing the
//!   20×20 matrix, and H/E/F travel in registers over a single rolling
//!   row pair.
//! * [`align_score_with`] / [`align_score_many`] — the same kernel with a
//!   caller-provided [`AlignScratch`], eliminating every per-pair heap
//!   allocation; `align_score_many` amortizes one profile build over a
//!   whole batch of subjects (one query vs the rest of the database).
//! * [`align_score_naive`] — the original three-`Vec`-per-call rolling
//!   implementation, kept as the reference oracle: the profile kernel is
//!   **bit-identical** to it (same `score`, same `cells`), which the
//!   darwin proptests verify across the whole PAM ladder.
//! * [`align_score_bounded_with`] — score-to-beat variant powering the
//!   PAM-ladder refinement's adaptive banding; skipped work is reported
//!   via [`ScoreOnly::cells_skipped`].
//! * [`align_local`] / [`align_local_with`] — full traceback, used where
//!   the actual alignment is needed (the tower-of-information example,
//!   tests); the `_with` form reuses the scratch's traceback matrices.
//!
//! On x86_64 the score-only entry points dispatch to the striped SIMD
//! kernel in [`crate::simd`] (SSE2/AVX2, runtime-detected, still
//! bit-identical); the scalar wavefront kernel below is the portable
//! fallback and the `BIOOPERA_SIMD=scalar` escape hatch.
//!
//! Why bit-identity holds: the profile kernel iterates subject-outer /
//! query-inner, i.e. it computes the transposed DP matrix.  The score
//! matrix is bitwise symmetric (its builder averages the two odds in a
//! commutative f64 sum), the gap parameters are shared by both gap
//! directions, so transposition only swaps the roles of E and F inside
//! `diag.max(E).max(F).max(0)` — and `f32::max` over the values arising
//! here (no NaNs, no negative zeros) is exactly commutative.  The best
//! score is a max over all cells, which is order-independent, and
//! `cells = |a|·|b|` is symmetric.

use crate::alphabet::ALPHABET_SIZE;
use crate::pam::ScoreMatrix;
use crate::sequence::Sequence;
use crate::simd::{self, SimdLevel};

/// Affine gap parameters: a gap of length `L` costs `open + extend·(L-1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignParams {
    /// Cost of opening a gap (positive number, subtracted).
    pub gap_open: f32,
    /// Cost of each further gapped position.
    pub gap_extend: f32,
    /// Allow [`align_score_many`] to skip pairs whose safe score upper
    /// bound falls below the caller's threshold.  Off by default because a
    /// skipped pair reports zero `cells`, which changes the cost-model
    /// accounting (never the match set).
    pub prune: bool,
}

impl Default for AlignParams {
    fn default() -> Self {
        // Tuned for the 10·log10-odds PAM family: diagonal entries run
        // ~4–18, so opening costs about two identities.
        AlignParams {
            gap_open: 22.0,
            gap_extend: 1.5,
            prune: false,
        }
    }
}

/// Score-only result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreOnly {
    /// Best local alignment score (≥ 0).
    pub score: f32,
    /// DP cells computed (the unit of the cost model).
    pub cells: u64,
    /// DP cells provably irrelevant and skipped (prune or banding).
    /// `cells + cells_skipped` always equals `|a|·|b|`, so callers can
    /// enable pruning without silently distorting cells/sec accounting.
    pub cells_skipped: u64,
}

/// Reusable alignment workspace: the query profile (linear and striped),
/// the rolling DP rows, the striped DP columns, and the traceback
/// matrices.  One scratch per worker thread removes every per-pair heap
/// allocation from the all-vs-all hot loop; buffers only ever grow.
#[derive(Debug, Clone)]
pub struct AlignScratch {
    /// Rolling H row over query positions (`len + 1` entries, `h[0] = 0`).
    h: Vec<f32>,
    /// Rolling E row (gap in the subject direction).
    e: Vec<f32>,
    /// Query profile: row `r` at `profile[r*len .. (r+1)*len]` holds
    /// `score(query[i], r)` for each query position `i`.
    profile: Vec<f32>,
    /// Query length currently loaded into the profile.
    len: usize,
    /// Safe upper bound on any alignment score using all query positions
    /// (sum over positions of the per-position best score, f64 with an
    /// upward margin); used by the optional prune.
    bound_sum: f32,
    /// Largest per-position best score (bounds short subjects).
    bound_peak: f32,
    /// SIMD lane the striped kernel dispatches to (fixed at construction).
    level: SimdLevel,
    /// Stripe segment length (vectors per stripe); 0 when no striped
    /// profile is loaded (scalar level or empty query).
    seg: usize,
    /// Striped query profile: residue `r`'s block at
    /// `striped[r*seg*lanes ..]`, vector `t` lane `l` holding
    /// `score(query[l*seg + t], r)` and `-inf` beyond the query (padding
    /// can never win the max).
    striped: Vec<f32>,
    /// Striped H column ping-pong pair for the SIMD lane.
    sh_a: Vec<f32>,
    sh_b: Vec<f32>,
    /// Striped E column for the SIMD lane.
    se: Vec<f32>,
    /// Per-subject-residue best profile entry (adaptive-banding bounds).
    row_best: [f32; ALPHABET_SIZE],
    /// Per-column suffix score bounds for the banded path.
    suffix: Vec<f32>,
    /// Full H/E/F matrices for [`align_local_with`] tracebacks.
    tb_h: Vec<f32>,
    tb_e: Vec<f32>,
    tb_f: Vec<f32>,
}

impl Default for AlignScratch {
    fn default() -> Self {
        AlignScratch::with_level(simd::detect())
    }
}

impl AlignScratch {
    /// An empty workspace at the detected SIMD level.
    pub fn new() -> Self {
        AlignScratch::default()
    }

    /// An empty workspace pinned to `level`, clamped to what the host
    /// supports.  Exists for tests and benches that compare lanes;
    /// normal callers use [`AlignScratch::new`].
    pub fn with_level(level: SimdLevel) -> Self {
        AlignScratch {
            h: Vec::new(),
            e: Vec::new(),
            profile: Vec::new(),
            len: 0,
            bound_sum: 0.0,
            bound_peak: 0.0,
            level: level.min(simd::max_supported()),
            seg: 0,
            striped: Vec::new(),
            sh_a: Vec::new(),
            sh_b: Vec::new(),
            se: Vec::new(),
            row_best: [f32::NEG_INFINITY; ALPHABET_SIZE],
            suffix: Vec::new(),
            tb_h: Vec::new(),
            tb_e: Vec::new(),
            tb_f: Vec::new(),
        }
    }

    /// The SIMD lane this scratch dispatches to.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Load `query` under matrix `m`: build the contiguous profile rows
    /// (plus the striped layout when a SIMD lane is active), size the
    /// rolling DP rows, and refresh the prune/banding bounds.
    pub fn set_query(&mut self, query: &Sequence, m: &ScoreMatrix) {
        let len = query.residues.len();
        self.len = len;
        self.h.resize(len + 1, 0.0);
        self.e.resize(len + 1, 0.0);
        self.profile.clear();
        self.profile.reserve(ALPHABET_SIZE * len);
        for r in 0..ALPHABET_SIZE {
            self.profile
                .extend(query.residues.iter().map(|&q| m.score(q as usize, r)));
        }
        // Prune bound: the best local alignment cannot beat the sum of the
        // per-position best substitution scores (gaps only subtract).  The
        // DP accumulates in f32 and can round upward, so pad the f64 sum
        // with a margin far above any accumulated rounding error.  The
        // same scan collects the per-residue column best (`row_best`),
        // which the banded path turns into per-subject-column bounds.
        self.row_best = [f32::NEG_INFINITY; ALPHABET_SIZE];
        let mut sum = 0.0f64;
        let mut peak = 0.0f64;
        for i in 0..len {
            let mut best = f32::NEG_INFINITY;
            for r in 0..ALPHABET_SIZE {
                let sc = self.profile[r * len + i];
                best = best.max(sc);
                if sc > self.row_best[r] {
                    self.row_best[r] = sc;
                }
            }
            let best = best.max(0.0) as f64;
            sum += best;
            peak = peak.max(best);
        }
        self.bound_sum = (sum * (1.0 + 1e-5) + 1e-2) as f32;
        self.bound_peak = (peak * (1.0 + 1e-5) + 1e-2) as f32;
        // Striped layout for the SIMD lane: lane `l` of vector `t` owns
        // query position `l*seg + t`.
        let lanes = self.level.lanes();
        if lanes > 1 && len > 0 {
            let seg = len.div_ceil(lanes);
            self.seg = seg;
            let stride = seg * lanes;
            self.striped.clear();
            self.striped
                .resize(ALPHABET_SIZE * stride, f32::NEG_INFINITY);
            for r in 0..ALPHABET_SIZE {
                let row = &self.profile[r * len..(r + 1) * len];
                let dst = &mut self.striped[r * stride..(r + 1) * stride];
                for (i, &sc) in row.iter().enumerate() {
                    dst[(i % seg) * lanes + i / seg] = sc;
                }
            }
            self.sh_a.resize(stride, 0.0);
            self.sh_b.resize(stride, 0.0);
            self.se.resize(stride, 0.0);
        } else {
            self.seg = 0;
        }
    }

    /// Safe upper bound on the score of the loaded query against any
    /// subject of `subject_len` residues.
    pub fn score_upper_bound(&self, subject_len: usize) -> f32 {
        if subject_len >= self.len {
            self.bound_sum
        } else {
            self.bound_peak * subject_len as f32
        }
    }

    /// Per-column suffix bounds for the banded path: `suffix[j]` safely
    /// bounds what subject columns `j..` can add to any alignment score
    /// (sum of per-residue best profile entries; gaps only subtract).
    /// Computed in f64 with the same upward margin as the prune bound,
    /// so f32 rounding inside the DP can never make the bound unsafe.
    fn build_suffix(&mut self, subject: &[u8]) {
        let nb = subject.len();
        self.suffix.clear();
        self.suffix.resize(nb + 1, 0.0);
        let mut acc = 0.0f64;
        for j in (0..nb).rev() {
            acc += f64::from(self.row_best[subject[j] as usize].max(0.0));
            self.suffix[j] = (acc * (1.0 + 1e-5) + 1e-2) as f32;
        }
    }

    /// Run the loaded query against one subject (score only), dispatching
    /// to the striped SIMD kernel when one is loaded and to the scalar
    /// wavefront kernel otherwise.  Both are bit-identical to
    /// [`align_score_naive`].
    fn align_loaded(&mut self, subject: &[u8], p: &AlignParams) -> ScoreOnly {
        self.align_loaded_bounded(subject, p, None)
    }

    /// [`AlignScratch::align_loaded`], optionally **banded**: with
    /// `beat = Some(s)` the kernel may stop early once no unprocessed
    /// cell can lift the final score above `s`.  Whenever the true score
    /// exceeds `s` the result is exactly the unbanded one; otherwise the
    /// returned score is a partial best that is provably `<= s`, with
    /// the unvisited cells reported in `cells_skipped`.
    fn align_loaded_bounded(
        &mut self,
        subject: &[u8],
        p: &AlignParams,
        beat: Option<f32>,
    ) -> ScoreOnly {
        let nq = self.len;
        let nb = subject.len();
        if nq == 0 || nb == 0 {
            return ScoreOnly {
                score: 0.0,
                cells: 0,
                cells_skipped: 0,
            };
        }
        if let Some(beat) = beat {
            // Whole-matrix skip: the loaded query cannot beat `beat`
            // against any subject of this length.
            if self.score_upper_bound(nb) <= beat {
                return ScoreOnly {
                    score: 0.0,
                    cells: 0,
                    cells_skipped: nq as u64 * nb as u64,
                };
            }
            self.build_suffix(subject);
        }
        // The lazy-F sweep propagates the wrapped F chain by pure
        // gap-extension decay, which covers a corrected cell's re-open
        // candidate only when `open >= extend >= 0` (true for any sane
        // affine model); exotic parameters take the scalar kernel.
        let simd_ok = self.seg > 0 && p.gap_open >= p.gap_extend && p.gap_extend >= 0.0;
        let (best, cols) = if simd_ok {
            let stride = self.seg * self.level.lanes();
            self.sh_a[..stride].fill(0.0);
            self.sh_b[..stride].fill(0.0);
            self.se[..stride].fill(f32::NEG_INFINITY);
            let AlignScratch {
                level,
                seg,
                striped,
                sh_a,
                sh_b,
                se,
                suffix,
                ..
            } = self;
            let band = beat.map(|b| (&suffix[..], b));
            simd::run_striped(
                *level,
                striped,
                *seg,
                sh_a,
                sh_b,
                se,
                subject,
                p.gap_open,
                p.gap_extend,
                band,
            )
        } else {
            self.align_scalar_bounded(subject, p, beat)
        };
        ScoreOnly {
            score: best,
            cells: nq as u64 * cols as u64,
            cells_skipped: nq as u64 * (nb - cols) as u64,
        }
    }

    /// The scalar profile kernel.  The profile must have been loaded
    /// with [`AlignScratch::set_query`].  Returns `(best, columns)`,
    /// where `columns < subject.len()` only on a banded early exit.
    ///
    /// Subject rows are processed four at a time along an anti-diagonal
    /// wavefront: the serial per-row F chain (`max`/`sub` latency) is the
    /// kernel's bottleneck, and four staggered rows give the out-of-order
    /// core four independent chains to overlap.  Every cell still runs
    /// the exact scalar recurrence with the same operands in the same
    /// order — only the instruction schedule changes — so the result is
    /// bit-identical to [`align_score_naive`].
    fn align_scalar_bounded(
        &mut self,
        subject: &[u8],
        p: &AlignParams,
        beat: Option<f32>,
    ) -> (f32, usize) {
        let nq = self.len;
        let nb = subject.len();
        self.h.fill(0.0);
        self.e.fill(f32::NEG_INFINITY);
        let (open, ext) = (p.gap_open, p.gap_extend);
        let mut best = 0.0f32;
        let profile = &self.profile;
        let suffix = &self.suffix;
        let h = &mut self.h[..nq + 1];
        let e = &mut self.e[..nq + 1];

        /// One DP cell: update the row's F chain and H, return the new E.
        /// `prev` is left holding the row's H at the previous column (the
        /// diagonal input for the row below).
        #[inline(always)]
        #[allow(clippy::too_many_arguments)]
        fn dp_cell(
            v_diag: f32,
            v_above: f32,
            e_above: f32,
            sc: f32,
            open: f32,
            ext: f32,
            f: &mut f32,
            left: &mut f32,
            prev: &mut f32,
            best: &mut f32,
        ) -> f32 {
            let e_new = (v_above - open).max(e_above - ext);
            *f = (*left - open).max(*f - ext);
            let v = (v_diag + sc).max(e_new).max(*f).max(0.0);
            *prev = *left;
            *left = v;
            if v > *best {
                *best = v;
            }
            e_new
        }

        let mut j = 0usize;
        while j + 4 <= nb {
            let r0 = &profile[subject[j] as usize * nq..][..nq];
            let r1 = &profile[subject[j + 1] as usize * nq..][..nq];
            let r2 = &profile[subject[j + 2] as usize * nq..][..nq];
            let r3 = &profile[subject[j + 3] as usize * nq..][..nq];
            // Per-row registers: F chain, H at the current and previous
            // column, E at the current column (forwarded to the row
            // below, which trails one column behind).
            let mut f = [f32::NEG_INFINITY; 4];
            let mut left = [0.0f32; 4];
            let mut prev = [0.0f32; 4];
            let mut elast = [f32::NEG_INFINITY; 4];
            // Step t processes column t-r of row r.  Bottom row first:
            // each row reads its upstairs neighbour's previous-step
            // state, so rows must update in bottom-up order.  `STEADY`
            // is a const generic so the pipeline-fill and drain guards
            // fold away in the hot middle loop, and `inline(always)`
            // keeps the whole wavefront state in registers (as a plain
            // closure this failed to inline and spilled every step).
            #[inline(always)]
            #[allow(clippy::too_many_arguments)]
            fn step<const STEADY: bool>(
                t: usize,
                nq: usize,
                rows: [&[f32]; 4],
                h: &mut [f32],
                e: &mut [f32],
                f: &mut [f32; 4],
                left: &mut [f32; 4],
                prev: &mut [f32; 4],
                elast: &mut [f32; 4],
                open: f32,
                ext: f32,
                best: &mut f32,
            ) {
                if STEADY || (t >= 4 && t - 3 <= nq) {
                    let c = t - 3;
                    let e_new = dp_cell(
                        prev[2],
                        left[2],
                        elast[2],
                        rows[3][c - 1],
                        open,
                        ext,
                        &mut f[3],
                        &mut left[3],
                        &mut prev[3],
                        best,
                    );
                    elast[3] = e_new;
                    // Row 3 is the block's last: persist for the next block.
                    h[c] = left[3];
                    e[c] = e_new;
                }
                if STEADY || (t >= 3 && t - 2 <= nq) {
                    let c = t - 2;
                    elast[2] = dp_cell(
                        prev[1],
                        left[1],
                        elast[1],
                        rows[2][c - 1],
                        open,
                        ext,
                        &mut f[2],
                        &mut left[2],
                        &mut prev[2],
                        best,
                    );
                }
                if STEADY || (t >= 2 && t - 1 <= nq) {
                    let c = t - 1;
                    elast[1] = dp_cell(
                        prev[0],
                        left[0],
                        elast[0],
                        rows[1][c - 1],
                        open,
                        ext,
                        &mut f[1],
                        &mut left[1],
                        &mut prev[1],
                        best,
                    );
                }
                if STEADY || t <= nq {
                    let c = t;
                    elast[0] = dp_cell(
                        h[c - 1],
                        h[c],
                        e[c],
                        rows[0][c - 1],
                        open,
                        ext,
                        &mut f[0],
                        &mut left[0],
                        &mut prev[0],
                        best,
                    );
                }
            }
            let rows = [r0, r1, r2, r3];
            // Pipeline fill (t = 1..4), guard-free steady state
            // (t = 4..=nq), pipeline drain (t = nq+1..nq+4); the three
            // ranges tile 1..nq+4 exactly for every nq.
            for t in 1..(nq + 4).min(4) {
                step::<false>(
                    t, nq, rows, h, e, &mut f, &mut left, &mut prev, &mut elast, open, ext,
                    &mut best,
                );
            }
            for t in 4..nq + 1 {
                step::<true>(
                    t, nq, rows, h, e, &mut f, &mut left, &mut prev, &mut elast, open, ext,
                    &mut best,
                );
            }
            for t in nq.max(3) + 1..nq + 4 {
                step::<false>(
                    t, nq, rows, h, e, &mut f, &mut left, &mut prev, &mut elast, open, ext,
                    &mut best,
                );
            }
            j += 4;
            if let Some(beat) = beat {
                // Rows >= j add at most suffix[j] on top of any H seen so
                // far; once that cannot reach `beat`, stop.
                if best + suffix[j] <= beat {
                    return (best, j);
                }
            }
        }
        // Remainder rows (< 4): plain scalar sweep.
        while j < nb {
            let rb = subject[j];
            let row = &profile[rb as usize * nq..][..nq];
            let mut h_diag = 0.0f32;
            let mut h_left = 0.0f32;
            let mut f = f32::NEG_INFINITY;
            for ((h_i, e_i), &sc) in h[1..].iter_mut().zip(e[1..].iter_mut()).zip(row) {
                let e_new = (*h_i - open).max(*e_i - ext);
                f = (h_left - open).max(f - ext);
                let v = (h_diag + sc).max(e_new).max(f).max(0.0);
                h_diag = *h_i;
                *h_i = v;
                *e_i = e_new;
                h_left = v;
                if v > best {
                    best = v;
                }
            }
            j += 1;
            if let Some(beat) = beat {
                if best + suffix[j] <= beat {
                    return (best, j);
                }
            }
        }
        (best, nb)
    }
}

/// Score-only Smith–Waterman/Gotoh via the query-profile kernel, reusing
/// the caller's scratch: zero heap allocation once the scratch has grown
/// to the query size.
pub fn align_score_with(
    a: &Sequence,
    b: &Sequence,
    m: &ScoreMatrix,
    p: &AlignParams,
    scratch: &mut AlignScratch,
) -> ScoreOnly {
    scratch.set_query(a, m);
    scratch.align_loaded(&b.residues, p)
}

/// One query against a batch of subjects: the profile is built once and
/// the scratch is reused across the whole batch.  Results are pushed onto
/// `out` (cleared first) in subject order.
///
/// When `p.prune` is set and `min_score` is `Some`, subjects whose safe
/// score upper bound falls below the threshold are skipped and reported
/// as `score: 0.0, cells: 0` — the match set is unchanged (a skipped pair
/// can never reach the threshold) but skipped pairs contribute no cells
/// to the cost accounting.
pub fn align_score_many<'s, I>(
    a: &Sequence,
    subjects: I,
    m: &ScoreMatrix,
    p: &AlignParams,
    min_score: Option<f32>,
    scratch: &mut AlignScratch,
    out: &mut Vec<ScoreOnly>,
) where
    I: IntoIterator<Item = &'s Sequence>,
{
    scratch.set_query(a, m);
    out.clear();
    let cutoff = if p.prune { min_score } else { None };
    for b in subjects {
        if let Some(threshold) = cutoff {
            if scratch.score_upper_bound(b.residues.len()) < threshold {
                out.push(ScoreOnly {
                    score: 0.0,
                    cells: 0,
                    cells_skipped: scratch.len as u64 * b.residues.len() as u64,
                });
                continue;
            }
        }
        out.push(scratch.align_loaded(&b.residues, p));
    }
}

/// Score-only Smith–Waterman/Gotoh (compatibility entry point): the
/// profile kernel with a private scratch.  Callers in a loop should hold
/// an [`AlignScratch`] and use [`align_score_with`] / [`align_score_many`].
pub fn align_score(a: &Sequence, b: &Sequence, m: &ScoreMatrix, p: &AlignParams) -> ScoreOnly {
    let mut scratch = AlignScratch::new();
    align_score_with(a, b, m, p, &mut scratch)
}

/// The original score-only implementation: rolling arrays allocated per
/// call, matrix double-indexed in the inner loop.  Kept as the reference
/// oracle for the profile kernel — the two must agree bit-for-bit.
pub fn align_score_naive(
    a: &Sequence,
    b: &Sequence,
    m: &ScoreMatrix,
    p: &AlignParams,
) -> ScoreOnly {
    let (na, nb) = (a.residues.len(), b.residues.len());
    if na == 0 || nb == 0 {
        return ScoreOnly {
            score: 0.0,
            cells: 0,
            cells_skipped: 0,
        };
    }
    // Roll over b (columns); one row of H and E each.
    let mut h_prev = vec![0.0f32; nb + 1];
    let mut h_cur = vec![0.0f32; nb + 1];
    let mut e_row = vec![f32::NEG_INFINITY; nb + 1];
    let mut best = 0.0f32;
    for i in 1..=na {
        let ra = a.residues[i - 1] as usize;
        let mut f = f32::NEG_INFINITY;
        h_cur[0] = 0.0;
        for j in 1..=nb {
            let rb = b.residues[j - 1] as usize;
            e_row[j] = (h_prev[j] - p.gap_open).max(e_row[j] - p.gap_extend);
            f = (h_cur[j - 1] - p.gap_open).max(f - p.gap_extend);
            let diag = h_prev[j - 1] + m.score(ra, rb);
            let h = diag.max(e_row[j]).max(f).max(0.0);
            h_cur[j] = h;
            if h > best {
                best = h;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    ScoreOnly {
        score: best,
        cells: (na as u64) * (nb as u64),
        cells_skipped: 0,
    }
}

/// Score-only alignment with a **score to beat**: identical to
/// [`align_score_with`] whenever the true score exceeds `beat`, but
/// allowed to skip provably-losing work — the whole matrix when the
/// query's [`AlignScratch::score_upper_bound`] cannot reach `beat`, or
/// a suffix of subject columns once the adaptive band proves no later
/// cell can lift the final score above `beat`.  In the skipping case the
/// returned score is a partial best that is provably `<= beat`; skipped
/// cells are reported in [`ScoreOnly::cells_skipped`] so cost accounting
/// stays honest.  This is the PAM-ladder refinement's hot path: each
/// matrix only has to prove it cannot beat the ladder's running best.
pub fn align_score_bounded_with(
    a: &Sequence,
    b: &Sequence,
    m: &ScoreMatrix,
    p: &AlignParams,
    beat: f32,
    scratch: &mut AlignScratch,
) -> ScoreOnly {
    scratch.set_query(a, m);
    scratch.align_loaded_bounded(&b.residues, p, Some(beat))
}

/// One aligned column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Residues aligned (match or mismatch).
    Sub,
    /// Gap in `a` (consumes a residue of `b`).
    InsB,
    /// Gap in `b` (consumes a residue of `a`).
    InsA,
}

/// A full local alignment with traceback.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Alignment {
    /// Best local score.
    pub score: f32,
    /// Half-open residue range of `a` covered by the alignment.
    pub a_range: (usize, usize),
    /// Half-open residue range of `b` covered.
    pub b_range: (usize, usize),
    /// Column operations, start to end.
    pub ops: Vec<AlignOp>,
    /// Identical aligned residue pairs.
    pub identities: usize,
    /// DP cells computed.
    pub cells: u64,
}

impl Alignment {
    /// Aligned columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the alignment is empty (score 0 everywhere).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of substitution columns that are identities.
    pub fn identity_fraction(&self) -> f64 {
        let subs = self.ops.iter().filter(|o| **o == AlignOp::Sub).count();
        if subs == 0 {
            0.0
        } else {
            self.identities as f64 / subs as f64
        }
    }
}

/// Full Smith–Waterman/Gotoh with traceback (convenience wrapper over
/// [`align_local_with`] with a private scratch).  Callers in a loop
/// should hold an [`AlignScratch`] and a reusable [`Alignment`].
pub fn align_local(a: &Sequence, b: &Sequence, m: &ScoreMatrix, p: &AlignParams) -> Alignment {
    let mut scratch = AlignScratch::with_level(SimdLevel::Scalar);
    let mut out = Alignment::default();
    align_local_with(a, b, m, p, &mut scratch, &mut out);
    out
}

/// Full Smith–Waterman/Gotoh with traceback, reusing the scratch's
/// H/E/F matrices and the caller's `Alignment` (its `ops` buffer is
/// recycled): zero heap allocations once both have grown to size.  Only
/// the traceback buffers of the scratch are touched — any loaded query
/// profile stays valid.
pub fn align_local_with(
    a: &Sequence,
    b: &Sequence,
    m: &ScoreMatrix,
    p: &AlignParams,
    scratch: &mut AlignScratch,
    out: &mut Alignment,
) {
    let (na, nb) = (a.residues.len(), b.residues.len());
    out.score = 0.0;
    out.a_range = (0, 0);
    out.b_range = (0, 0);
    out.ops.clear();
    out.identities = 0;
    out.cells = (na as u64) * (nb as u64);
    if na == 0 || nb == 0 {
        return;
    }
    let w = nb + 1;
    let size = (na + 1) * w;
    scratch.tb_h.clear();
    scratch.tb_h.resize(size, 0.0);
    scratch.tb_e.clear();
    scratch.tb_e.resize(size, f32::NEG_INFINITY);
    scratch.tb_f.clear();
    scratch.tb_f.resize(size, f32::NEG_INFINITY);
    let h = &mut scratch.tb_h;
    let e = &mut scratch.tb_e;
    let f = &mut scratch.tb_f;
    let mut best = 0.0f32;
    let mut best_pos = (0usize, 0usize);
    for i in 1..=na {
        let ra = a.residues[i - 1] as usize;
        for j in 1..=nb {
            let rb = b.residues[j - 1] as usize;
            let idx = i * w + j;
            e[idx] = (h[idx - 1] - p.gap_open).max(e[idx - 1] - p.gap_extend);
            f[idx] = (h[idx - w] - p.gap_open).max(f[idx - w] - p.gap_extend);
            let diag = h[idx - w - 1] + m.score(ra, rb);
            let v = diag.max(e[idx]).max(f[idx]).max(0.0);
            h[idx] = v;
            if v > best {
                best = v;
                best_pos = (i, j);
            }
        }
    }
    if best <= 0.0 {
        return;
    }
    // Traceback from best_pos until H hits 0.
    let (mut i, mut j) = best_pos;
    #[derive(PartialEq, Clone, Copy)]
    enum State {
        H,
        E,
        F,
    }
    let mut state = State::H;
    while i > 0 && j > 0 {
        let idx = i * w + j;
        match state {
            State::H => {
                let v = h[idx];
                if v == 0.0 {
                    break;
                }
                let ra = a.residues[i - 1] as usize;
                let rb = b.residues[j - 1] as usize;
                let diag = h[idx - w - 1] + m.score(ra, rb);
                if v == diag {
                    out.ops.push(AlignOp::Sub);
                    if ra == rb {
                        out.identities += 1;
                    }
                    i -= 1;
                    j -= 1;
                } else if v == e[idx] {
                    state = State::E;
                } else if v == f[idx] {
                    state = State::F;
                } else {
                    // Numerical tie broke differently; prefer diagonal.
                    out.ops.push(AlignOp::Sub);
                    if ra == rb {
                        out.identities += 1;
                    }
                    i -= 1;
                    j -= 1;
                }
            }
            State::E => {
                out.ops.push(AlignOp::InsB);
                let from_open = h[idx - 1] - p.gap_open;
                if e[idx] == from_open {
                    state = State::H;
                }
                j -= 1;
            }
            State::F => {
                out.ops.push(AlignOp::InsA);
                let from_open = h[idx - w] - p.gap_open;
                if f[idx] == from_open {
                    state = State::H;
                }
                i -= 1;
            }
        }
    }
    out.ops.reverse();
    out.score = best;
    out.a_range = (i, best_pos.0);
    out.b_range = (j, best_pos.1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pam::{PamFamily, FIXED_PAM};

    fn seq(s: &str) -> Sequence {
        Sequence::from_str(0, s).unwrap()
    }

    fn fam() -> PamFamily {
        PamFamily::default()
    }

    #[test]
    fn identical_sequences_score_sum_of_self_scores() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let s = seq("MKVLAWGCH");
        let out = align_score(&s, &s, m, &AlignParams::default());
        let expected: f32 = s
            .residues
            .iter()
            .map(|&r| m.score(r as usize, r as usize))
            .sum();
        assert!((out.score - expected).abs() < 1e-3);
    }

    #[test]
    fn score_is_symmetric() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let a = seq("MKVLAWGCHDE");
        let b = seq("MKVIAWCHDE");
        let p = AlignParams::default();
        let ab = align_score(&a, &b, m, &p).score;
        let ba = align_score(&b, &a, m, &p).score;
        assert!((ab - ba).abs() < 1e-3);
    }

    #[test]
    fn local_alignment_ignores_junk_flanks() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let core = "MKVLAWGCHDEMKVLAWGCHDE";
        let a = seq(core);
        let b = seq(&format!("PPPPPPPP{core}GGGGGGGG"));
        let plain = align_score(&a, &a, m, &p).score;
        let flanked = align_score(&a, &b, m, &p).score;
        assert!((plain - flanked).abs() < 1e-3, "{plain} vs {flanked}");
    }

    #[test]
    fn traceback_matches_score_only() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let a = seq("MKVLAWGCHDEAAARNDCQE");
        let b = seq("MKVIAWGHDEAAARNDC");
        let fast = align_score(&a, &b, m, &p);
        let full = align_local(&a, &b, m, &p);
        assert!((fast.score - full.score).abs() < 1e-3);
        assert!(!full.is_empty());
        assert!(full.identities > 5);
    }

    #[test]
    fn gap_cost_is_affine() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        // One long gap must beat two short gaps of the same total length.
        let a = seq("MKVLAWGCHDEMKVLAWGCHDE");
        let gap1 = seq("MKVLAWGCHDEAAAAMKVLAWGCHDE"); // one 4-gap
        let s1 = align_score(&a, &gap1, m, &p).score;
        let gap2 = seq("MKVLAWGAACHDEMKVLAWAAGCHDE"); // two 2-gaps
        let s2 = align_score(&a, &gap2, m, &p).score;
        assert!(s1 > s2, "affine: one gap {s1} should beat two {s2}");
    }

    #[test]
    fn random_sequences_score_low() {
        use rand::{Rng, SeedableRng};
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut rand_seq = |n: usize, entry: u32| {
            Sequence::new(entry, (0..n).map(|_| rng.gen_range(0..20u8)).collect())
        };
        let mut self_scores = 0.0;
        let mut cross_scores = 0.0;
        for i in 0..10 {
            let a = rand_seq(200, i * 2);
            let b = rand_seq(200, i * 2 + 1);
            self_scores += align_score(&a, &a, m, &p).score;
            cross_scores += align_score(&a, &b, m, &p).score;
        }
        assert!(
            cross_scores < self_scores / 4.0,
            "unrelated sequences should score far below self: {cross_scores} vs {self_scores}"
        );
    }

    #[test]
    fn empty_sequences_yield_empty_alignment() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let a = seq("");
        let b = seq("MKV");
        assert_eq!(align_score(&a, &b, m, &p).score, 0.0);
        assert!(align_local(&a, &b, m, &p).is_empty());
    }

    #[test]
    fn traceback_ranges_are_consistent_with_ops() {
        let fam = fam();
        let m = fam.nearest(FIXED_PAM);
        let p = AlignParams::default();
        let a = seq("GGGGMKVLAWGCHDEGGGG");
        let b = seq("PPPPMKVLAWGCHDEPPPP");
        let al = align_local(&a, &b, m, &p);
        let a_consumed = al.ops.iter().filter(|o| **o != AlignOp::InsB).count();
        let b_consumed = al.ops.iter().filter(|o| **o != AlignOp::InsA).count();
        assert_eq!(al.a_range.1 - al.a_range.0, a_consumed);
        assert_eq!(al.b_range.1 - al.b_range.0, b_consumed);
        // The conserved core is found.
        assert!(al.identities >= 11);
    }
}
