//! The cost model: alignment work → reference-CPU milliseconds.
//!
//! Two uses:
//!
//! 1. **Real-compute mode** (granularity experiment, examples, tests): the
//!    alignments actually run and report DP cell counts; the cost model
//!    converts cells to virtual CPU time so the cluster simulator charges
//!    realistic durations.
//! 2. **Cost-model mode** (the full SP38 all-vs-all, N = 75 458): running
//!    2.8 × 10⁹ alignments for real is pointless for a *systems*
//!    experiment; instead TEU durations are synthesized from the same
//!    per-cell model plus sampled sequence lengths.
//!
//! Calibration: Darwin is an *interpreted* language on 2000-era hardware;
//! we charge 75 ns per DP cell at the 500 MHz reference, which puts the
//! full all-vs-all at a few hundred reference-CPU-days — the scale of
//! Table 1 — and a 500-entry all-vs-all around 1–2 reference-CPU-hours,
//! the scale of Figure 4.  The per-process interpreter start-up cost is
//! what makes very fine granularities waste CPU (the paper's S3 segment:
//! "the overhead incurred from Darwin initialization stages, which are
//! repeated 500 times").

use serde::{Deserialize, Serialize};

/// Tunable cost parameters (all in reference-machine units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Nanoseconds of reference CPU per DP cell.
    pub cell_ns: f64,
    /// Darwin interpreter start-up per launched process (ms).
    pub darwin_init_ms: f64,
    /// Fraction of pairs that become matches and therefore go through the
    /// refinement ladder (used only by cost-model mode).
    pub match_rate: f64,
    /// Ladder length for refinement cost (each match re-aligns this many
    /// times).
    pub refine_ladder: u32,
    /// BioOpera dispatch/schedule/merge overhead per activity, wall-clock
    /// ms (the paper: "a few seconds to schedule, distribute, initiate,
    /// and merge").
    pub dispatch_overhead_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cell_ns: 75.0,
            darwin_init_ms: 2_500.0,
            match_rate: 0.02,
            refine_ladder: 12,
            dispatch_overhead_ms: 2_000.0,
        }
    }
}

impl CostModel {
    /// CPU milliseconds for `cells` DP cells.
    pub fn cells_ms(&self, cells: u64) -> f64 {
        cells as f64 * self.cell_ns / 1e6
    }

    /// CPU ms for one pairwise alignment of lengths `la`, `lb`.
    pub fn pair_ms(&self, la: usize, lb: usize) -> f64 {
        self.cells_ms(la as u64 * lb as u64)
    }

    /// Expected CPU ms for one pair including amortized refinement:
    /// `cells · (1 + match_rate · ladder)`.
    pub fn pair_ms_with_refinement(&self, la: usize, lb: usize) -> f64 {
        self.pair_ms(la, lb) * (1.0 + self.match_rate * self.refine_ladder as f64)
    }

    /// Expected CPU ms for a one-vs-all of a length-`l` query against a
    /// database with `n` entries of mean length `mean_len`.
    pub fn one_vs_all_ms(&self, l: usize, n: usize, mean_len: f64) -> f64 {
        self.pair_ms_with_refinement(l, mean_len.round() as usize) * n as f64
    }

    /// Expected CPU for a full all-vs-all: `C(n,2)` pairs.
    pub fn all_vs_all_ms(&self, n: usize, mean_len: f64) -> f64 {
        let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
        self.pair_ms_with_refinement(mean_len.round() as usize, mean_len.round() as usize) * pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_costs_scale_linearly() {
        let c = CostModel::default();
        assert!((c.cells_ms(2_000_000) - 2.0 * c.cells_ms(1_000_000)).abs() < 1e-9);
        assert!((c.pair_ms(100, 200) - c.cells_ms(20_000)).abs() < 1e-12);
    }

    #[test]
    fn refinement_amortization_raises_cost_modestly() {
        let c = CostModel::default();
        let plain = c.pair_ms(150, 150);
        let with = c.pair_ms_with_refinement(150, 150);
        assert!(with > plain);
        assert!(with < plain * 2.0, "2% match rate × 12 ladder ⇒ +24%");
    }

    #[test]
    fn full_sp38_lands_at_table1_scale() {
        // 75 458 sequences, mean length 370: the paper's Table 1 reports
        // CPU(Π) in the hundreds of days.
        let c = CostModel::default();
        let days = c.all_vs_all_ms(75_458, 370.0) / 1000.0 / 86_400.0;
        assert!(
            (100.0..1200.0).contains(&days),
            "SP38 all-vs-all should cost hundreds of reference-CPU days, got {days}"
        );
    }

    #[test]
    fn small_all_vs_all_lands_at_fig4_scale() {
        // 500 entries at SwissProt-like mean length 370: Figure 4's CPU
        // axis runs from ~2 500 s (1 TEU) to ~7 000 s (500 TEUs).
        let c = CostModel::default();
        let secs = c.all_vs_all_ms(500, 370.0) / 1000.0;
        assert!(
            (800.0..10_000.0).contains(&secs),
            "500-entry all-vs-all should cost O(an hour), got {secs}s"
        );
    }

    #[test]
    fn init_overhead_dominates_at_fine_granularity() {
        // 500 TEUs of a 500-entry dataset: per-TEU work ≈ total/500; the
        // Darwin init must be a significant fraction (the paper's CPU
        // doubling at n = 500).
        let c = CostModel::default();
        let total = c.all_vs_all_ms(500, 150.0);
        let per_teu_work = total / 500.0;
        assert!(
            c.darwin_init_ms > 0.3 * per_teu_work,
            "init {} should be comparable to per-TEU work {}",
            c.darwin_init_ms,
            per_teu_work
        );
    }
}
