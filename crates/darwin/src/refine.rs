//! PAM-distance refinement.
//!
//! The all-vs-all's second stage: "every match is refined ... by
//! recalculating the corresponding alignment using a computationally more
//! expensive but more informative algorithm" whose job is "finding \[the\]
//! PAM distance maximizing similarity" (Fig. 3).  We re-score the pair
//! under every matrix of the family's ladder and return the argmax — a
//! discrete maximum-likelihood estimate of evolutionary distance.

use crate::align::{AlignParams, AlignScratch};
use crate::pam::PamFamily;
use crate::sequence::Sequence;

/// Result of refining one match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refined {
    /// Estimated PAM distance (ladder point maximizing the score).
    pub pam_distance: u32,
    /// The score at that distance.
    pub score: f32,
    /// Total DP cells computed across the ladder scan (cost accounting).
    pub cells: u64,
}

/// Scan the ladder for the distance maximizing alignment score.
///
/// Convenience wrapper over [`refine_pam_distance_with`] with a private
/// scratch; callers refining many matches should hold one
/// [`AlignScratch`] and use the `_with` form to avoid per-pair
/// allocation.
pub fn refine_pam_distance(
    a: &Sequence,
    b: &Sequence,
    family: &PamFamily,
    params: &AlignParams,
) -> Refined {
    let mut scratch = AlignScratch::new();
    refine_pam_distance_with(a, b, family, params, &mut scratch)
}

/// Ladder scan reusing the caller's alignment scratch: one profile build
/// plus one DP per ladder matrix, zero heap allocation once the scratch
/// has grown.
pub fn refine_pam_distance_with(
    a: &Sequence,
    b: &Sequence,
    family: &PamFamily,
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> Refined {
    let mut best_pam = family.ladder()[0].pam;
    let mut best_score = f32::NEG_INFINITY;
    let mut cells = 0u64;
    for m in family.ladder() {
        let r = crate::align::align_score_with(a, b, m, params, scratch);
        cells += r.cells;
        if r.score > best_score {
            best_score = r.score;
            best_pam = m.pam;
        }
    }
    Refined {
        pam_distance: best_pam,
        score: best_score,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::evolve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(rng: &mut StdRng, n: usize) -> Sequence {
        // Draw from background frequencies for realism.
        let freqs = crate::alphabet::FREQUENCIES;
        let residues = (0..n)
            .map(|_| {
                let x: f64 = rng.gen();
                let mut acc = 0.0;
                for (i, &f) in freqs.iter().enumerate() {
                    acc += f;
                    if x < acc {
                        return i as u8;
                    }
                }
                19u8
            })
            .collect();
        Sequence::new(0, residues)
    }

    #[test]
    fn refined_distance_tracks_true_divergence() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let ancestor = random_seq(&mut rng, 220);

        // Evolve pairs at increasing true distances; the *estimated*
        // distances must be (weakly) increasing on average.
        let mut estimates = Vec::new();
        for &true_pam in &[20u32, 90, 250] {
            let mut sum = 0u32;
            const REPS: u32 = 4;
            for rep in 0..REPS {
                let mut r2 = StdRng::seed_from_u64(1000 + true_pam as u64 * 10 + rep as u64);
                let a = evolve(&ancestor, true_pam / 2, &family, &mut r2, 0.0);
                let b = evolve(&ancestor, true_pam / 2, &family, &mut r2, 0.0);
                let refined = refine_pam_distance(&a, &b, &family, &params);
                sum += refined.pam_distance;
            }
            estimates.push(sum / REPS);
        }
        assert!(
            estimates[0] < estimates[2],
            "estimates should grow with divergence: {estimates:?}"
        );
        // Closely related pair estimated as clearly below 150.
        assert!(estimates[0] <= 120, "{estimates:?}");
    }

    #[test]
    fn identical_pair_maps_to_smallest_distance() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(5);
        let s = random_seq(&mut rng, 150);
        let refined = refine_pam_distance(&s, &s, &family, &params);
        assert_eq!(refined.pam_distance, family.ladder()[0].pam);
    }

    #[test]
    fn cells_account_for_full_ladder() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_seq(&mut rng, 100);
        let b = random_seq(&mut rng, 80);
        let refined = refine_pam_distance(&a, &b, &family, &params);
        assert_eq!(refined.cells, 100 * 80 * family.ladder().len() as u64);
    }
}
