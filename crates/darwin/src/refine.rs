//! PAM-distance refinement.
//!
//! The all-vs-all's second stage: "every match is refined ... by
//! recalculating the corresponding alignment using a computationally more
//! expensive but more informative algorithm" whose job is "finding \[the\]
//! PAM distance maximizing similarity" (Fig. 3).  We re-score the pair
//! under every matrix of the family's ladder and return the argmax — a
//! discrete maximum-likelihood estimate of evolutionary distance.

use crate::align::{align_score_bounded_with, AlignParams, AlignScratch};
use crate::pam::PamFamily;
use crate::sequence::Sequence;

/// Result of refining one match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refined {
    /// Estimated PAM distance (ladder point maximizing the score).
    pub pam_distance: u32,
    /// The score at that distance.
    pub score: f32,
    /// Total DP cells computed across the ladder scan (cost accounting).
    pub cells: u64,
    /// DP cells the banded scan proved irrelevant and skipped;
    /// `cells + cells_skipped == |a|·|b|·ladder_len` always holds.
    pub cells_skipped: u64,
}

/// Scan the ladder for the distance maximizing alignment score.
///
/// Convenience wrapper over [`refine_pam_distance_with`] with a private
/// scratch; callers refining many matches should hold one
/// [`AlignScratch`] and use the `_with` form to avoid per-pair
/// allocation.
pub fn refine_pam_distance(
    a: &Sequence,
    b: &Sequence,
    family: &PamFamily,
    params: &AlignParams,
) -> Refined {
    let mut scratch = AlignScratch::new();
    refine_pam_distance_with(a, b, family, params, &mut scratch)
}

/// Ladder scan reusing the caller's alignment scratch: one profile build
/// plus one DP per ladder matrix, zero heap allocation once the scratch
/// has grown.
pub fn refine_pam_distance_with(
    a: &Sequence,
    b: &Sequence,
    family: &PamFamily,
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> Refined {
    let mut best_pam = family.ladder()[0].pam;
    let mut best_score = f32::NEG_INFINITY;
    let mut cells = 0u64;
    for m in family.ladder() {
        let r = crate::align::align_score_with(a, b, m, params, scratch);
        cells += r.cells;
        if r.score > best_score {
            best_score = r.score;
            best_pam = m.pam;
        }
    }
    Refined {
        pam_distance: best_pam,
        score: best_score,
        cells,
        cells_skipped: 0,
    }
}

/// Ladder scan with **score-bound adaptive banding**: each matrix after
/// the first only has to prove it cannot beat the ladder's running best,
/// so [`align_score_bounded_with`] may skip the whole matrix (when the
/// query's score upper bound is below the running best) or a suffix of
/// subject columns (once the per-column bound shows no later cell can
/// reach it).  The argmax is **identical** to
/// [`refine_pam_distance_with`] — bit-identical `score` and the same
/// `pam_distance` — because a matrix is only truncated when its true
/// score provably cannot exceed the running best, and ties keep the
/// earlier matrix under the strict `>` in both scans.  Only the
/// `cells`/`cells_skipped` split differs; their sum is invariant.
pub fn refine_pam_distance_banded(
    a: &Sequence,
    b: &Sequence,
    family: &PamFamily,
    params: &AlignParams,
    scratch: &mut AlignScratch,
) -> Refined {
    let mut best_pam = family.ladder()[0].pam;
    let mut best_score = f32::NEG_INFINITY;
    let mut cells = 0u64;
    let mut cells_skipped = 0u64;
    for m in family.ladder() {
        let r = align_score_bounded_with(a, b, m, params, best_score, scratch);
        cells += r.cells;
        cells_skipped += r.cells_skipped;
        if r.score > best_score {
            best_score = r.score;
            best_pam = m.pam;
        }
    }
    Refined {
        pam_distance: best_pam,
        score: best_score,
        cells,
        cells_skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::evolve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(rng: &mut StdRng, n: usize) -> Sequence {
        // Draw from background frequencies for realism.
        let freqs = crate::alphabet::FREQUENCIES;
        let residues = (0..n)
            .map(|_| {
                let x: f64 = rng.gen();
                let mut acc = 0.0;
                for (i, &f) in freqs.iter().enumerate() {
                    acc += f;
                    if x < acc {
                        return i as u8;
                    }
                }
                19u8
            })
            .collect();
        Sequence::new(0, residues)
    }

    #[test]
    fn refined_distance_tracks_true_divergence() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let ancestor = random_seq(&mut rng, 220);

        // Evolve pairs at increasing true distances; the *estimated*
        // distances must be (weakly) increasing on average.
        let mut estimates = Vec::new();
        for &true_pam in &[20u32, 90, 250] {
            let mut sum = 0u32;
            const REPS: u32 = 4;
            for rep in 0..REPS {
                let mut r2 = StdRng::seed_from_u64(1000 + true_pam as u64 * 10 + rep as u64);
                let a = evolve(&ancestor, true_pam / 2, &family, &mut r2, 0.0);
                let b = evolve(&ancestor, true_pam / 2, &family, &mut r2, 0.0);
                let refined = refine_pam_distance(&a, &b, &family, &params);
                sum += refined.pam_distance;
            }
            estimates.push(sum / REPS);
        }
        assert!(
            estimates[0] < estimates[2],
            "estimates should grow with divergence: {estimates:?}"
        );
        // Closely related pair estimated as clearly below 150.
        assert!(estimates[0] <= 120, "{estimates:?}");
    }

    #[test]
    fn identical_pair_maps_to_smallest_distance() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(5);
        let s = random_seq(&mut rng, 150);
        let refined = refine_pam_distance(&s, &s, &family, &params);
        assert_eq!(refined.pam_distance, family.ladder()[0].pam);
    }

    #[test]
    fn cells_account_for_full_ladder() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_seq(&mut rng, 100);
        let b = random_seq(&mut rng, 80);
        let refined = refine_pam_distance(&a, &b, &family, &params);
        assert_eq!(refined.cells, 100 * 80 * family.ladder().len() as u64);
        assert_eq!(refined.cells_skipped, 0);
    }

    #[test]
    fn banded_refinement_matches_unbanded_and_accounts_all_cells() {
        let family = PamFamily::default();
        let params = AlignParams::default();
        let mut rng = StdRng::seed_from_u64(7);
        let ancestor = random_seq(&mut rng, 120);
        let mut r2 = StdRng::seed_from_u64(77);
        let a = evolve(&ancestor, 40, &family, &mut r2, 0.02);
        let b = evolve(&ancestor, 40, &family, &mut r2, 0.02);
        let mut scratch = AlignScratch::new();
        let plain = refine_pam_distance_with(&a, &b, &family, &params, &mut scratch);
        let banded = refine_pam_distance_banded(&a, &b, &family, &params, &mut scratch);
        assert_eq!(banded.pam_distance, plain.pam_distance);
        assert_eq!(banded.score.to_bits(), plain.score.to_bits());
        // The banded scan accounts every cell exactly once.
        assert_eq!(banded.cells + banded.cells_skipped, plain.cells);
        assert!(
            banded.cells_skipped > 0,
            "a related pair should let the band prune some ladder work"
        );
    }
}
