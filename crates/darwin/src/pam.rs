//! Dayhoff-style PAM matrix family.
//!
//! The paper's all-vs-all uses "the GCB scoring matrices and an affine gap
//! penalty" (Gonnet/Cohen/Benner 1992).  Those matrices are not
//! redistributable, so we rebuild the *construction*: a reversible 1-PAM
//! Markov mutation model (1 accepted point mutation per 100 residues),
//! powered to any evolutionary distance `k`, converted to 10·log₁₀ odds
//! scores:
//!
//! ```text
//! S_k(i,j) = 10 · log10( M_k(i,j) / f_j )
//! ```
//!
//! Exchangeabilities derive from physico-chemical similarity
//! ([`crate::alphabet::property_distance`]), which reproduces the
//! qualitative structure of empirical matrices (conservative substitutions
//! score higher, rare residues such as W/C have sharp self-scores), and the
//! model is exactly reversible, making scores symmetric.

use crate::alphabet::{property_distance, ALPHABET_SIZE, FREQUENCIES};

/// A 20×20 substitution score matrix at a specific PAM distance.
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    /// The PAM distance this matrix represents.
    pub pam: u32,
    scores: [[f32; ALPHABET_SIZE]; ALPHABET_SIZE],
}

impl ScoreMatrix {
    /// Score of aligning residues `a` and `b` (indices).
    #[inline]
    pub fn score(&self, a: usize, b: usize) -> f32 {
        self.scores[a][b]
    }

    /// Maximum diagonal entry (used to bound per-residue similarity).
    pub fn max_self_score(&self) -> f32 {
        (0..ALPHABET_SIZE)
            .map(|i| self.scores[i][i])
            .fold(f32::MIN, f32::max)
    }

    /// Expected score between two random residues; negative for any sane
    /// matrix (required for local alignment to stay local).
    pub fn expected_score(&self) -> f64 {
        let mut e = 0.0;
        for (i, &fi) in FREQUENCIES.iter().enumerate() {
            for (j, &fj) in FREQUENCIES.iter().enumerate() {
                e += fi * fj * self.scores[i][j] as f64;
            }
        }
        e
    }
}

type Matrix = [[f64; ALPHABET_SIZE]; ALPHABET_SIZE];

fn mat_mul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = [[0.0; ALPHABET_SIZE]; ALPHABET_SIZE];
    for i in 0..ALPHABET_SIZE {
        for k in 0..ALPHABET_SIZE {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..ALPHABET_SIZE {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn identity() -> Matrix {
    let mut m = [[0.0; ALPHABET_SIZE]; ALPHABET_SIZE];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

/// Build the 1-PAM conditional mutation matrix `M1[i][j] = P(j | i)`.
///
/// Reversible by construction: off-diagonals are `c · f_j · exp(-d(i,j)/T)`
/// with the scale `c` chosen so the expected mutation probability is 1 %.
fn build_pam1() -> Matrix {
    const TEMPERATURE: f64 = 0.45;
    let mut raw = [[0.0; ALPHABET_SIZE]; ALPHABET_SIZE];
    for (i, row) in raw.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i != j {
                *cell = FREQUENCIES[j] * (-property_distance(i, j) / TEMPERATURE).exp();
            }
        }
    }
    // Expected mutation rate sum_i f_i sum_{j!=i} c*raw[i][j] = 0.01.
    let total: f64 = (0..ALPHABET_SIZE)
        .map(|i| FREQUENCIES[i] * raw[i].iter().sum::<f64>())
        .sum();
    let c = 0.01 / total;
    let mut m = [[0.0; ALPHABET_SIZE]; ALPHABET_SIZE];
    for i in 0..ALPHABET_SIZE {
        let mut off = 0.0;
        for j in 0..ALPHABET_SIZE {
            if i != j {
                m[i][j] = c * raw[i][j];
                off += m[i][j];
            }
        }
        m[i][i] = 1.0 - off;
        assert!(m[i][i] > 0.9, "1-PAM diagonal must stay near 1");
    }
    m
}

/// `M1^k` by binary exponentiation.
fn pam_power(m1: &Matrix, k: u32) -> Matrix {
    let mut result = identity();
    let mut base = *m1;
    let mut e = k;
    while e > 0 {
        if e & 1 == 1 {
            result = mat_mul(&result, &base);
        }
        base = mat_mul(&base, &base);
        e >>= 1;
    }
    result
}

/// A family of PAM matrices sharing one mutation model, with cached score
/// matrices on a ladder of distances (the refinement stage scans this
/// ladder for the similarity-maximizing distance).
pub struct PamFamily {
    m1: Matrix,
    ladder: Vec<ScoreMatrix>,
}

/// The ladder of PAM distances the refinement stage scans.
pub const DEFAULT_LADDER: [u32; 12] = [10, 20, 35, 50, 70, 90, 120, 150, 180, 220, 260, 300];

/// The fixed distance used by the first (fast) all-vs-all pass.
pub const FIXED_PAM: u32 = 120;

impl Default for PamFamily {
    fn default() -> Self {
        Self::new(&DEFAULT_LADDER)
    }
}

impl PamFamily {
    /// Build the family with score matrices cached at `ladder` distances.
    pub fn new(ladder: &[u32]) -> Self {
        let m1 = build_pam1();
        let mut fam = PamFamily {
            m1,
            ladder: Vec::new(),
        };
        fam.ladder = ladder.iter().map(|&k| fam.build_scores(k)).collect();
        fam
    }

    /// The conditional mutation matrix at distance `k` (used by the
    /// dataset generator to evolve sequences).
    pub fn mutation_matrix(&self, k: u32) -> [[f64; ALPHABET_SIZE]; ALPHABET_SIZE] {
        pam_power(&self.m1, k)
    }

    /// Build (uncached) scores at distance `k`.
    pub fn build_scores(&self, k: u32) -> ScoreMatrix {
        let mk = pam_power(&self.m1, k.max(1));
        let mut scores = [[0.0f32; ALPHABET_SIZE]; ALPHABET_SIZE];
        for i in 0..ALPHABET_SIZE {
            for j in 0..ALPHABET_SIZE {
                // Symmetrize explicitly to erase floating-point drift.
                let odds_ij = mk[i][j] / FREQUENCIES[j];
                let odds_ji = mk[j][i] / FREQUENCIES[i];
                scores[i][j] = (10.0 * (0.5 * (odds_ij + odds_ji)).log10()) as f32;
            }
        }
        ScoreMatrix { pam: k, scores }
    }

    /// The cached ladder, ascending by PAM distance.
    pub fn ladder(&self) -> &[ScoreMatrix] {
        &self.ladder
    }

    /// The cached matrix closest to distance `k`.
    pub fn nearest(&self, k: u32) -> &ScoreMatrix {
        self.ladder
            .iter()
            .min_by_key(|m| m.pam.abs_diff(k))
            .expect("ladder is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::AminoAcid;

    fn idx(c: char) -> usize {
        AminoAcid::from_char(c).unwrap().index()
    }

    #[test]
    fn pam1_is_stochastic_and_reversible() {
        let m = build_pam1();
        for row in m.iter() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        for i in 0..ALPHABET_SIZE {
            for j in 0..ALPHABET_SIZE {
                let detail_i = FREQUENCIES[i] * m[i][j];
                let detail_j = FREQUENCIES[j] * m[j][i];
                assert!(
                    (detail_i - detail_j).abs() < 1e-12,
                    "detailed balance broken at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn pam1_mutation_rate_is_one_percent() {
        let m = build_pam1();
        let rate: f64 = (0..ALPHABET_SIZE)
            .map(|i| FREQUENCIES[i] * (1.0 - m[i][i]))
            .sum();
        assert!((rate - 0.01).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn powers_remain_stochastic() {
        let fam = PamFamily::default();
        for k in [1, 10, 100, 250] {
            let mk = fam.mutation_matrix(k);
            for row in mk.iter() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "PAM{k} row sum {s}");
            }
        }
    }

    #[test]
    fn scores_are_symmetric_with_positive_diagonal() {
        let fam = PamFamily::default();
        for m in fam.ladder() {
            for i in 0..ALPHABET_SIZE {
                assert!(m.score(i, i) > 0.0, "PAM{} self-score of {i}", m.pam);
                for j in 0..ALPHABET_SIZE {
                    assert!(
                        (m.score(i, j) - m.score(j, i)).abs() < 1e-4,
                        "asymmetry at PAM{} ({i},{j})",
                        m.pam
                    );
                }
            }
        }
    }

    #[test]
    fn expected_score_is_negative() {
        // Required for Smith–Waterman locality.
        let fam = PamFamily::default();
        for m in fam.ladder() {
            assert!(m.expected_score() < 0.0, "PAM{} expected score >= 0", m.pam);
        }
    }

    #[test]
    fn conservative_substitutions_outscore_radical_ones() {
        let fam = PamFamily::default();
        let m = fam.nearest(FIXED_PAM);
        assert!(m.score(idx('I'), idx('L')) > m.score(idx('I'), idx('D')));
        assert!(m.score(idx('D'), idx('E')) > m.score(idx('D'), idx('W')));
        assert!(m.score(idx('K'), idx('R')) > m.score(idx('K'), idx('C')));
    }

    #[test]
    fn rare_residues_have_sharp_self_scores() {
        let fam = PamFamily::default();
        let m = fam.nearest(FIXED_PAM);
        // W and C are rare: their identities are the most informative.
        assert!(m.score(idx('W'), idx('W')) > m.score(idx('A'), idx('A')));
        assert!(m.score(idx('C'), idx('C')) > m.score(idx('S'), idx('S')));
    }

    #[test]
    fn self_scores_decay_with_distance() {
        let fam = PamFamily::default();
        let near = fam.nearest(10);
        let far = fam.nearest(300);
        for i in 0..ALPHABET_SIZE {
            assert!(near.score(i, i) > far.score(i, i));
        }
    }

    #[test]
    fn nearest_picks_closest_ladder_point() {
        let fam = PamFamily::default();
        assert_eq!(fam.nearest(5).pam, 10);
        assert_eq!(fam.nearest(95).pam, 90);
        assert_eq!(fam.nearest(1000).pam, 300);
    }
}
