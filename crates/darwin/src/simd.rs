//! Runtime-dispatched striped SIMD lane for the Smith–Waterman/Gotoh
//! scoring kernel (Farrar 2007, "Striped Smith–Waterman speeds database
//! searches six times over other SIMD implementations").
//!
//! The query is **striped** across vector lanes: with `lanes` f32 lanes
//! and `seg = ceil(len/lanes)` vectors per stripe, lane `l` of vector `t`
//! owns query position `l*seg + t`.  One pass of the outer loop consumes
//! one subject residue (one DP column); the inner loop walks the `seg`
//! vectors.  Horizontal-gap scores (E) live in a striped column that
//! survives across subject residues; the vertical-gap chain (F) runs
//! inside the column and is broken by the striping, which the **lazy-F**
//! sweep repairs (see [`x86::kernel`]).
//!
//! Bit-identity with the scalar kernels: every cell computes
//! `max(diag + score, E, F, 0)` from the same operands — `f32` max over
//! the NaN-free, negative-zero-free values arising here is the exact
//! mathematical max, so the schedule (striped vs row-major) cannot change
//! a single bit.  Padded lanes (query positions `>= len`) carry `-inf`
//! profile entries; their H values stay strictly below the running best
//! (any padded H derives from a real H minus at least one gap-open), so
//! the final horizontal max needs no masking.  The darwin proptests pin
//! all of this against [`crate::align::align_score_naive`].
//!
//! Level selection: [`detect`] probes the CPU once (cached) and honours a
//! `BIOOPERA_SIMD` override (`scalar`/`sse2`/`avx2`/`auto`), clamped to
//! what the host supports.  SSE2 is part of the x86_64 baseline; AVX2 is
//! gated on CPUID.  Non-x86_64 hosts always report [`SimdLevel::Scalar`]
//! and use the portable profile kernel in `align.rs`.

use std::sync::OnceLock;

/// Vector width the alignment kernel dispatches to.
///
/// Ordered: `Scalar < Sse2 < Avx2`, so levels can be clamped with `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable scalar profile kernel (any host).
    Scalar,
    /// 4 × f32 lanes (`__m128`); part of the x86_64 baseline.
    Sse2,
    /// 8 × f32 lanes (`__m256`); requires runtime AVX2 support.
    Avx2,
}

impl SimdLevel {
    /// f32 lanes per vector at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 4,
            SimdLevel::Avx2 => 8,
        }
    }

    /// Stable lowercase name (matches the `BIOOPERA_SIMD` spellings).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Parse a `BIOOPERA_SIMD` value; `None` means "auto" (use the hardware
/// maximum) — unknown strings fall back to auto rather than erroring.
pub(crate) fn parse_level(s: &str) -> Option<SimdLevel> {
    match s.to_ascii_lowercase().as_str() {
        "scalar" | "off" | "none" | "0" => Some(SimdLevel::Scalar),
        "sse2" | "sse" => Some(SimdLevel::Sse2),
        "avx2" | "avx" => Some(SimdLevel::Avx2),
        _ => None,
    }
}

/// The widest level this host can execute (no env override applied).
pub fn max_supported() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// The level new scratches dispatch to: the hardware maximum, optionally
/// lowered by `BIOOPERA_SIMD` (`scalar`, `sse2`, `avx2`, `auto`).  Probed
/// once per process and cached; tests that need a specific level should
/// pin it via [`crate::align::AlignScratch::with_level`] instead of
/// mutating the environment.
pub fn detect() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let hw = max_supported();
        match std::env::var("BIOOPERA_SIMD") {
            Ok(v) => parse_level(&v).map_or(hw, |req| req.min(hw)),
            Err(_) => hw,
        }
    })
}

/// Run the striped kernel at `level` (must not be `Scalar`).
///
/// Layout contract (checked): `profile` holds `ALPHABET_SIZE` blocks of
/// `seg*lanes` striped entries; `ha`/`hb` are the zeroed H column
/// ping-pong pair and `ev` the E column filled with `-inf`, each at least
/// `seg*lanes` long.  With `band = Some((suffix, beat))`, `suffix[j]`
/// must safely bound what subject columns `j..` can add (len
/// `subject.len() + 1`) and the kernel may stop after column `j+1` once
/// `best + suffix[j+1] <= beat`.  Returns `(best, columns_processed)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_striped(
    level: SimdLevel,
    profile: &[f32],
    seg: usize,
    ha: &mut [f32],
    hb: &mut [f32],
    ev: &mut [f32],
    subject: &[u8],
    open: f32,
    ext: f32,
    band: Option<(&[f32], f32)>,
) -> (f32, usize) {
    let stride = seg * level.lanes();
    assert!(seg >= 1, "run_striped needs a loaded striped profile");
    assert!(profile.len() >= crate::alphabet::ALPHABET_SIZE * stride);
    assert!(ha.len() >= stride && hb.len() >= stride && ev.len() >= stride);
    if let Some((suffix, _)) = band {
        assert!(suffix.len() > subject.len());
    }
    #[cfg(target_arch = "x86_64")]
    // Safety: buffer sizes asserted above; `Avx2` only reaches here via
    // `detect`/`max_supported`, which gate it on runtime CPUID support.
    unsafe {
        match level {
            SimdLevel::Scalar => unreachable!("run_striped called at scalar level"),
            SimdLevel::Sse2 => x86::run_sse2(profile, seg, ha, hb, ev, subject, open, ext, band),
            SimdLevel::Avx2 => x86::run_avx2(profile, seg, ha, hb, ev, subject, open, ext, band),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (profile, ha, hb, ev, subject, open, ext, band);
        unreachable!("run_striped: no SIMD backend on this architecture")
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Lane-width abstraction over the f32 vector ops the kernel needs.
    /// Methods are `unsafe`: the caller must guarantee the instruction
    /// set is available and pointers are valid for `LANES` f32s.  Every
    /// method is `inline(always)` so the generic kernel folds into the
    /// `#[target_feature]` wrappers below and the intrinsics compile in
    /// a context with the right features enabled.
    trait Ops: Copy {
        type V: Copy;
        const LANES: usize;
        unsafe fn splat(x: f32) -> Self::V;
        unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
        unsafe fn sub(a: Self::V, b: Self::V) -> Self::V;
        unsafe fn max(a: Self::V, b: Self::V) -> Self::V;
        unsafe fn load(p: *const f32) -> Self::V;
        unsafe fn store(p: *mut f32, v: Self::V);
        /// True when any lane of `a` is strictly greater than `b`'s.
        unsafe fn any_gt(a: Self::V, b: Self::V) -> bool;
        /// Shift every lane up by one (lane `l` → `l+1`), inserting
        /// `fill` into lane 0: the stripe-wrap rotation.
        unsafe fn shift_in(v: Self::V, fill: f32) -> Self::V;
        /// Horizontal max over all lanes.
        unsafe fn hmax(v: Self::V) -> f32;
    }

    #[derive(Clone, Copy)]
    struct Sse2;

    impl Ops for Sse2 {
        type V = __m128;
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn splat(x: f32) -> __m128 {
            _mm_set1_ps(x)
        }
        #[inline(always)]
        unsafe fn add(a: __m128, b: __m128) -> __m128 {
            _mm_add_ps(a, b)
        }
        #[inline(always)]
        unsafe fn sub(a: __m128, b: __m128) -> __m128 {
            _mm_sub_ps(a, b)
        }
        #[inline(always)]
        unsafe fn max(a: __m128, b: __m128) -> __m128 {
            _mm_max_ps(a, b)
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> __m128 {
            _mm_loadu_ps(p)
        }
        #[inline(always)]
        unsafe fn store(p: *mut f32, v: __m128) {
            _mm_storeu_ps(p, v)
        }
        #[inline(always)]
        unsafe fn any_gt(a: __m128, b: __m128) -> bool {
            _mm_movemask_ps(_mm_cmpgt_ps(a, b)) != 0
        }
        #[inline(always)]
        unsafe fn shift_in(v: __m128, fill: f32) -> __m128 {
            let up = _mm_castsi128_ps(_mm_slli_si128::<4>(_mm_castps_si128(v)));
            _mm_move_ss(up, _mm_set_ss(fill))
        }
        #[inline(always)]
        unsafe fn hmax(v: __m128) -> f32 {
            let m = _mm_max_ps(v, _mm_movehl_ps(v, v));
            let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
            _mm_cvtss_f32(m)
        }
    }

    #[derive(Clone, Copy)]
    struct Avx2;

    impl Ops for Avx2 {
        type V = __m256;
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn splat(x: f32) -> __m256 {
            _mm256_set1_ps(x)
        }
        #[inline(always)]
        unsafe fn add(a: __m256, b: __m256) -> __m256 {
            _mm256_add_ps(a, b)
        }
        #[inline(always)]
        unsafe fn sub(a: __m256, b: __m256) -> __m256 {
            _mm256_sub_ps(a, b)
        }
        #[inline(always)]
        unsafe fn max(a: __m256, b: __m256) -> __m256 {
            _mm256_max_ps(a, b)
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> __m256 {
            _mm256_loadu_ps(p)
        }
        #[inline(always)]
        unsafe fn store(p: *mut f32, v: __m256) {
            _mm256_storeu_ps(p, v)
        }
        #[inline(always)]
        unsafe fn any_gt(a: __m256, b: __m256) -> bool {
            _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GT_OQ>(a, b)) != 0
        }
        #[inline(always)]
        unsafe fn shift_in(v: __m256, fill: f32) -> __m256 {
            // Rotate lanes up by one (lane 0's new value is junk from
            // lane 7), then blend the fill into lane 0.
            let idx = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
            let rot = _mm256_permutevar8x32_ps(v, idx);
            _mm256_blend_ps::<0b0000_0001>(rot, _mm256_set1_ps(fill))
        }
        #[inline(always)]
        unsafe fn hmax(v: __m256) -> f32 {
            let m = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps::<1>(v));
            let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
            let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
            _mm_cvtss_f32(m)
        }
    }

    /// The Farrar striped kernel: one pass over `subject`, H/E/F in
    /// `LANES`-wide f32 vectors over the striped query profile.
    ///
    /// Buffers: `ha`/`hb` ping-pong as the previous/current H column,
    /// `ev` is the E column (both striped, caller-initialised to 0 and
    /// `-inf` respectively).  Returns `(best, columns_processed)`;
    /// `columns_processed < subject.len()` only on a banded early exit.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn kernel<O: Ops, const BANDED: bool>(
        profile: &[f32],
        seg: usize,
        ha: &mut [f32],
        hb: &mut [f32],
        ev: &mut [f32],
        subject: &[u8],
        open: f32,
        ext: f32,
        suffix: &[f32],
        beat: f32,
    ) -> (f32, usize) {
        let lanes = O::LANES;
        let stride = seg * lanes;
        let nb = subject.len();
        let vopen = O::splat(open);
        let vext = O::splat(ext);
        let vzero = O::splat(0.0);
        let ninf = f32::NEG_INFINITY;
        let vninf = O::splat(ninf);
        let mut vbest = vzero;
        let mut load: *mut f32 = ha.as_mut_ptr();
        let mut store: *mut f32 = hb.as_mut_ptr();
        let ep: *mut f32 = ev.as_mut_ptr();
        let pp: *const f32 = profile.as_ptr();
        let mut cols = nb;
        for (j, &rb) in subject.iter().enumerate() {
            let prow = pp.add(rb as usize * stride);
            // Diagonal carry: the previous column's last H vector shifted
            // one lane up; lane 0 takes the zero boundary row.
            let mut vh = O::shift_in(O::load(store.add((seg - 1) * lanes)), 0.0);
            std::mem::swap(&mut load, &mut store);
            let mut vf = vninf;
            for t in 0..seg {
                let o = t * lanes;
                // H = max(diag + score, E, F, 0): same operands and order
                // as the scalar kernels, so the result is bit-identical.
                vh = O::add(vh, O::load(prow.add(o)));
                let ve = O::load(ep.add(o));
                vh = O::max(vh, ve);
                vh = O::max(vh, vf);
                vh = O::max(vh, vzero);
                vbest = O::max(vbest, vh);
                O::store(store.add(o), vh);
                let vho = O::sub(vh, vopen);
                O::store(ep.add(o), O::max(O::sub(ve, vext), vho));
                vf = O::max(O::sub(vf, vext), vho);
                // Next vector's diagonal is the previous column's H here.
                vh = O::load(load.add(o));
            }
            // Lazy-F: the in-column F chain above ignores the stripe wrap
            // (lane l's rows continue at the top of lane l+1).  Re-sweep
            // the column folding the wrapped F in until no lane can still
            // improve (`vF <= H - open` everywhere means every further
            // contribution is dominated by the main loop's F chain).
            // Each wrap injects -inf into lane 0 and -inf only decays to
            // -inf, so `lanes` sweeps provably exhaust every wrap.
            vf = O::shift_in(vf, ninf);
            'lazy: for _ in 0..lanes {
                for t in 0..seg {
                    let o = t * lanes;
                    let vht = O::load(store.add(o));
                    if !O::any_gt(vf, O::sub(vht, vopen)) {
                        break 'lazy;
                    }
                    let vhn = O::max(vht, vf);
                    O::store(store.add(o), vhn);
                    // E was computed from the pre-correction H above;
                    // fold the corrected H's gap-open candidate back in
                    // so the next column sees the exact Gotoh E.
                    O::store(ep.add(o), O::max(O::load(ep.add(o)), O::sub(vhn, vopen)));
                    vf = O::sub(vf, vext);
                }
                vf = O::shift_in(vf, ninf);
            }
            if BANDED {
                // Columns > j add at most suffix[j+1] on top of any H
                // seen so far (lazy-F corrections never exceed the
                // running best); once that cannot reach `beat`, neither
                // can the final score — stop and report the partial best.
                if O::hmax(vbest) + suffix[j + 1] <= beat {
                    cols = j + 1;
                    break;
                }
            }
        }
        (O::hmax(vbest), cols)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn run_sse2(
        profile: &[f32],
        seg: usize,
        ha: &mut [f32],
        hb: &mut [f32],
        ev: &mut [f32],
        subject: &[u8],
        open: f32,
        ext: f32,
        band: Option<(&[f32], f32)>,
    ) -> (f32, usize) {
        match band {
            None => kernel::<Sse2, false>(profile, seg, ha, hb, ev, subject, open, ext, &[], 0.0),
            Some((s, b)) => {
                kernel::<Sse2, true>(profile, seg, ha, hb, ev, subject, open, ext, s, b)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_avx2(
        profile: &[f32],
        seg: usize,
        ha: &mut [f32],
        hb: &mut [f32],
        ev: &mut [f32],
        subject: &[u8],
        open: f32,
        ext: f32,
        band: Option<(&[f32], f32)>,
    ) -> (f32, usize) {
        match band {
            None => kernel::<Avx2, false>(profile, seg, ha, hb, ev, subject, open, ext, &[], 0.0),
            Some((s, b)) => {
                kernel::<Avx2, true>(profile, seg, ha, hb, ev, subject, open, ext, s, b)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn check_ops<O: Ops>() {
            // Safety: callers below only instantiate levels the host
            // supports (SSE2 is baseline; AVX2 gated by the caller).
            unsafe {
                let mut buf = vec![0.0f32; O::LANES];
                let mut src: Vec<f32> = (0..O::LANES).map(|i| i as f32 + 1.0).collect();
                let v = O::load(src.as_ptr());
                // shift_in moves lane l to lane l+1 and fills lane 0.
                O::store(buf.as_mut_ptr(), O::shift_in(v, -7.0));
                assert_eq!(buf[0], -7.0);
                assert_eq!(&buf[1..], &src[..O::LANES - 1]);
                // hmax finds the max wherever it hides.
                for i in 0..O::LANES {
                    src.fill(1.0);
                    src[i] = 42.0;
                    assert_eq!(O::hmax(O::load(src.as_ptr())), 42.0);
                }
                // any_gt is strict and per-lane.
                let a = O::splat(1.0);
                assert!(!O::any_gt(a, a));
                src.fill(1.0);
                src[O::LANES - 1] = 1.5;
                assert!(O::any_gt(O::load(src.as_ptr()), a));
            }
        }

        #[test]
        fn sse2_ops_behave() {
            check_ops::<Sse2>();
        }

        #[test]
        fn avx2_ops_behave() {
            if std::arch::is_x86_feature_detected!("avx2") {
                check_ops::<Avx2>();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_level_spellings() {
        assert_eq!(parse_level("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(parse_level("OFF"), Some(SimdLevel::Scalar));
        assert_eq!(parse_level("sse2"), Some(SimdLevel::Sse2));
        assert_eq!(parse_level("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(parse_level("auto"), None);
        assert_eq!(parse_level("bogus"), None);
    }

    #[test]
    fn levels_order_and_lanes() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse2 && SimdLevel::Sse2 < SimdLevel::Avx2);
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Sse2.lanes(), 4);
        assert_eq!(SimdLevel::Avx2.lanes(), 8);
        // Clamping an over-ask is a plain min.
        assert_eq!(SimdLevel::Avx2.min(SimdLevel::Scalar), SimdLevel::Scalar);
    }

    #[test]
    fn detect_never_exceeds_hardware() {
        assert!(detect() <= max_supported());
    }
}
