//! # bioopera-darwin
//!
//! The bioinformatics substrate standing in for **Darwin** (Gonnet et al.),
//! the "interpreted computer language for the biosciences" that BioOpera
//! calls out to for every computational task of the all-vs-all process.
//!
//! Darwin itself and the GCB scoring matrices are not available, so this
//! crate implements the same algorithmic structure from scratch
//! (substitution documented in `DESIGN.md`):
//!
//! * a 20-letter amino-acid [`alphabet`] with background frequencies and
//!   physico-chemical property vectors,
//! * a **Dayhoff-style PAM matrix family** ([`pam`]) built by powering a
//!   reversible 1-PAM Markov mutation model derived from those properties,
//!   yielding log-odds score matrices for any PAM distance,
//! * **Smith–Waterman/Gotoh local alignment** with affine gap penalties
//!   ([`align`]), the algorithm the paper cites (SW81 + GCB92 matrices and
//!   "an affine gap penalty"), with a runtime-dispatched striped SIMD
//!   lane ([`simd`]) that stays bit-identical to the scalar oracle,
//! * **PAM-distance refinement** ([`refine`]): re-scoring a match across a
//!   ladder of PAM matrices to find the distance maximizing similarity —
//!   exactly the all-vs-all's second stage,
//! * a synthetic **SwissProt-like dataset generator** ([`dataset`]) that
//!   evolves protein families under the same mutation model, so that
//!   all-vs-all finds genuine homologies at varied PAM distances,
//! * the [`cost`] model translating alignment work into reference-CPU
//!   milliseconds for the cluster simulator (including the per-process
//!   Darwin interpreter start-up cost that drives the granularity
//!   experiment's fine-grain regime).

pub mod align;
pub mod alphabet;
pub mod cost;
pub mod dataset;
pub mod matches;
pub mod pam;
pub mod refine;
pub mod sequence;
pub mod simd;

pub use align::{
    align_local, align_local_with, align_score, align_score_bounded_with, align_score_many,
    align_score_naive, align_score_with, AlignParams, AlignScratch, Alignment, ScoreOnly,
};
pub use alphabet::{AminoAcid, ALPHABET_SIZE};
pub use cost::CostModel;
pub use dataset::{DatasetConfig, SequenceDb};
pub use matches::{Match, MatchSet};
pub use pam::{PamFamily, ScoreMatrix};
pub use refine::{
    refine_pam_distance, refine_pam_distance_banded, refine_pam_distance_with, Refined,
};
pub use sequence::Sequence;
pub use simd::SimdLevel;
