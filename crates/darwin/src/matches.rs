//! Match records — the output of the all-vs-all.
//!
//! "The result of the computation will be the set of all sequence pairs
//! whose similarity scores reach a user-defined threshold, along with some
//! information about the characteristics of the pairs" (§4).

use serde::{Deserialize, Serialize};

/// One above-threshold sequence pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// Query entry number (always < `subject` after normalization).
    pub query: u32,
    /// Subject entry number.
    pub subject: u32,
    /// Similarity score from the fixed-PAM pass.
    pub score: f32,
    /// Refined score (PAM-distance maximizing), set by the second stage.
    pub refined_score: f32,
    /// Estimated PAM distance from refinement (0 until refined).
    pub pam_distance: u32,
}

impl Match {
    /// A match from the fixed-PAM pass, not yet refined.
    pub fn unrefined(query: u32, subject: u32, score: f32) -> Match {
        let (query, subject) = if query <= subject {
            (query, subject)
        } else {
            (subject, query)
        };
        Match {
            query,
            subject,
            score,
            refined_score: score,
            pam_distance: 0,
        }
    }
}

/// A set of matches with the merge orders the all-vs-all's final tasks
/// produce: by entry number (the "master file") and by PAM distance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchSet {
    /// The matches, in unspecified order until sorted.
    pub matches: Vec<Match>,
}

impl MatchSet {
    /// Empty set.
    pub fn new() -> Self {
        MatchSet::default()
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Append another set (merging TEU results).
    pub fn extend(&mut self, other: MatchSet) {
        self.matches.extend(other.matches);
    }

    /// Task *Merge by Entry #*: sort by `(query, subject)` — the master
    /// file order.  Deterministic regardless of TEU completion order.
    pub fn sort_by_entry(&mut self) {
        self.matches.sort_by_key(|a| (a.query, a.subject));
    }

    /// Task *Merge by PAM distance*: bucket matches by refined PAM
    /// distance; returns `(distance, matches)` pairs ascending.
    pub fn by_pam_distance(&self) -> Vec<(u32, Vec<Match>)> {
        let mut sorted = self.matches.clone();
        sorted.sort_by(|a, b| {
            (a.pam_distance, a.query, a.subject).cmp(&(b.pam_distance, b.query, b.subject))
        });
        let mut out: Vec<(u32, Vec<Match>)> = Vec::new();
        for m in sorted {
            match out.last_mut() {
                Some((d, bucket)) if *d == m.pam_distance => bucket.push(m),
                _ => out.push((m.pam_distance, vec![m])),
            }
        }
        out
    }

    /// A stable content digest, used by the recovery tests to prove that a
    /// failure-ridden run produced byte-identical results to a clean run.
    pub fn digest(&self) -> u64 {
        let mut sorted = self.matches.clone();
        sorted.sort_by_key(|a| (a.query, a.subject));
        // FNV-1a over the canonical serialization.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for m in &sorted {
            feed(&m.query.to_le_bytes());
            feed(&m.subject.to_le_bytes());
            feed(&m.score.to_bits().to_le_bytes());
            feed(&m.refined_score.to_bits().to_le_bytes());
            feed(&m.pam_distance.to_le_bytes());
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(q: u32, s: u32, pam: u32) -> Match {
        Match {
            query: q,
            subject: s,
            score: 100.0,
            refined_score: 110.0,
            pam_distance: pam,
        }
    }

    #[test]
    fn unrefined_normalizes_pair_order() {
        let a = Match::unrefined(9, 3, 85.0);
        assert_eq!((a.query, a.subject), (3, 9));
    }

    #[test]
    fn sort_by_entry_is_canonical() {
        let mut s1 = MatchSet {
            matches: vec![m(2, 5, 50), m(0, 1, 20), m(2, 3, 90)],
        };
        let mut s2 = MatchSet {
            matches: vec![m(2, 3, 90), m(2, 5, 50), m(0, 1, 20)],
        };
        s1.sort_by_entry();
        s2.sort_by_entry();
        assert_eq!(s1, s2);
        assert_eq!(s1.matches[0].query, 0);
    }

    #[test]
    fn pam_buckets_ascend() {
        let s = MatchSet {
            matches: vec![m(0, 1, 90), m(1, 2, 20), m(3, 4, 90), m(5, 6, 20)],
        };
        let buckets = s.by_pam_distance();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, 20);
        assert_eq!(buckets[0].1.len(), 2);
        assert_eq!(buckets[1].0, 90);
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let s1 = MatchSet {
            matches: vec![m(0, 1, 20), m(2, 3, 90)],
        };
        let s2 = MatchSet {
            matches: vec![m(2, 3, 90), m(0, 1, 20)],
        };
        assert_eq!(s1.digest(), s2.digest());
        let s3 = MatchSet {
            matches: vec![m(0, 1, 21), m(2, 3, 90)],
        };
        assert_ne!(s1.digest(), s3.digest());
    }
}
