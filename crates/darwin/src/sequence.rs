//! Protein sequences.

use crate::alphabet::{AminoAcid, LETTERS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A protein sequence: an entry number (its index in the database, as used
/// by the all-vs-all queue file) plus residue indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequence {
    /// Database entry number.
    pub entry: u32,
    /// Residues as alphabet indices (0..20).
    pub residues: Vec<u8>,
}

impl Sequence {
    /// Build from residue indices.
    pub fn new(entry: u32, residues: Vec<u8>) -> Self {
        debug_assert!(residues.iter().all(|&r| (r as usize) < LETTERS.len()));
        Sequence { entry, residues }
    }

    /// Parse from one-letter codes; unknown letters are rejected.
    pub fn from_str(entry: u32, s: &str) -> Option<Self> {
        let residues: Option<Vec<u8>> = s
            .chars()
            .map(|c| AminoAcid::from_char(c).map(|a| a.0))
            .collect();
        residues.map(|r| Sequence { entry, residues: r })
    }

    /// Length in residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &r in &self.residues {
            write!(f, "{}", LETTERS[r as usize])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let s = Sequence::from_str(7, "MKVLAW").unwrap();
        assert_eq!(s.entry, 7);
        assert_eq!(s.len(), 6);
        assert_eq!(s.to_string(), "MKVLAW");
    }

    #[test]
    fn rejects_unknown_letters() {
        assert!(Sequence::from_str(0, "MKXB").is_none());
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(Sequence::from_str(0, "mkv").unwrap().to_string(), "MKV");
    }
}
