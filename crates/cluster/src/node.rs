//! Node model: CPUs, clock speed, OS, external user load, crashes and
//! upgrades, with a processor-sharing execution model.
//!
//! Work is measured in **reference CPU-milliseconds**: the CPU time a job
//! needs on one 500 MHz processor (the paper's linneus PCs).  A node's
//! speed factor scales that; external (non-BioOpera) users take CPUs first
//! because BioOpera jobs run "in nice mode, giving priority to the other
//! users" (§5.4).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Reference clock speed for work-unit accounting.
pub const REF_MHZ: f64 = 500.0;

/// Identifier of a dispatched job, unique per run.
pub type JobId = u64;

/// Static description of a node (stored in the configuration space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Host name, e.g. `linneus3`.
    pub name: String,
    /// Installed processors.
    pub cpus: u32,
    /// Clock speed in MHz; the speed factor is `mhz / 500`.
    pub mhz: u32,
    /// Operating system, e.g. `linux` or `solaris` (placement constraint).
    pub os: String,
}

impl NodeSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cpus: u32, mhz: u32, os: impl Into<String>) -> Self {
        NodeSpec {
            name: name.into(),
            cpus,
            mhz,
            os: os.into(),
        }
    }

    /// Speed factor relative to the 500 MHz reference.
    pub fn speed(&self) -> f64 {
        self.mhz as f64 / REF_MHZ
    }
}

/// How a job left a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// Ran to completion; carries consumed CPU milliseconds (occupancy).
    Completed { cpu_ms: f64 },
    /// Killed by a node crash or an explicit abort.
    Killed,
}

#[derive(Debug, Clone)]
struct RunningJob {
    id: JobId,
    /// Remaining work in reference CPU-milliseconds.
    remaining: f64,
    /// Consumed CPU occupancy in milliseconds (what `CPU(A_i)` reports).
    consumed_cpu_ms: f64,
}

/// A simulated node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Static description.
    pub spec: NodeSpec,
    up: bool,
    cpus_online: u32,
    /// CPUs currently consumed by external users (may be fractional).
    external_cpus: f64,
    jobs: Vec<RunningJob>,
    last_advance: SimTime,
    /// Bumped whenever the completion schedule becomes stale; drivers tag
    /// scheduled completion events with the generation and ignore stale ones.
    pub generation: u64,
    /// CPU occupancy consumed by jobs that were killed before completing
    /// (crashes, aborts) — the "lost work" metric of the checkpoint
    /// ablation.
    wasted_cpu_ms: f64,
    /// Fault injection: the node kills the next `flaky_kills` jobs it is
    /// handed (crash-looping service, bad local disk — the node *looks*
    /// up but loses every job).
    flaky_kills: u32,
    /// Network reachability from the server: a partitioned node keeps
    /// executing, but results are buffered at its PEC until it rejoins.
    reachable: bool,
}

impl Node {
    /// A fresh, idle, healthy node.
    pub fn new(spec: NodeSpec) -> Self {
        let cpus = spec.cpus;
        Node {
            spec,
            up: true,
            cpus_online: cpus,
            external_cpus: 0.0,
            jobs: Vec::new(),
            last_advance: SimTime::ZERO,
            generation: 0,
            wasted_cpu_ms: 0.0,
            flaky_kills: 0,
            reachable: true,
        }
    }

    /// Is the node powered and healthy?
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Is the node reachable from the server (no partition)?
    pub fn is_reachable(&self) -> bool {
        self.reachable
    }

    /// Partition the node from (or rejoin it to) the server network.
    pub fn set_reachable(&mut self, reachable: bool) {
        self.reachable = reachable;
    }

    /// Arm the flaky fault: the node kills the next `kills` jobs it is
    /// handed.
    pub fn set_flaky(&mut self, kills: u32) {
        self.flaky_kills = kills;
    }

    /// Consume one armed flaky kill; `true` means the incoming job dies.
    pub fn consume_flaky_kill(&mut self) -> bool {
        if self.flaky_kills > 0 {
            self.flaky_kills -= 1;
            true
        } else {
            false
        }
    }

    /// Processors currently online (0 when down).
    pub fn cpus_online(&self) -> u32 {
        if self.up {
            self.cpus_online
        } else {
            0
        }
    }

    /// CPUs taken by external users right now.
    pub fn external_cpus(&self) -> f64 {
        self.external_cpus
    }

    /// Jobs currently hosted.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// IDs of jobs currently hosted.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.iter().map(|j| j.id).collect()
    }

    /// CPUs left for BioOpera after external users (nice semantics).
    fn available_for_jobs(&self) -> f64 {
        if !self.up {
            return 0.0;
        }
        (self.cpus_online as f64 - self.external_cpus).max(0.0)
    }

    /// Per-job CPU share in [0, 1]: full CPU if enough are free, otherwise
    /// equal processor sharing.
    fn share(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        (self.available_for_jobs() / self.jobs.len() as f64).min(1.0)
    }

    /// Work units per millisecond each job currently progresses by.
    fn rate(&self) -> f64 {
        self.share() * self.spec.speed()
    }

    /// Number of processors currently busy with BioOpera jobs (the
    /// "processor utilization" series of Figs. 5/6).
    pub fn utilization(&self) -> f64 {
        self.share() * self.jobs.len() as f64
    }

    /// The load fraction an external observer (the PEC's load monitor)
    /// reads: busy CPUs over online CPUs.
    pub fn load_fraction(&self) -> f64 {
        if !self.up || self.cpus_online == 0 {
            return 0.0;
        }
        let busy = self.utilization() + self.external_cpus.min(self.cpus_online as f64);
        (busy / self.cpus_online as f64).clamp(0.0, 1.0)
    }

    /// Advance job progress to `now`.  Must be called (by every mutating
    /// entry point) before the execution state changes; rates are constant
    /// between events, so this is exact.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time went backwards");
        let elapsed_ms = (now - self.last_advance).as_millis() as f64;
        if elapsed_ms > 0.0 && !self.jobs.is_empty() && self.up {
            let rate = self.rate();
            let share = self.share();
            for job in &mut self.jobs {
                job.remaining = (job.remaining - elapsed_ms * rate).max(0.0);
                job.consumed_cpu_ms += elapsed_ms * share;
            }
        }
        self.last_advance = now;
    }

    /// Start a job needing `work_ref_cpu_ms` reference CPU-milliseconds.
    /// Panics if the node is down (the dispatcher checks availability).
    pub fn start_job(&mut self, now: SimTime, id: JobId, work_ref_cpu_ms: f64) {
        assert!(self.up, "dispatched to a down node");
        assert!(work_ref_cpu_ms >= 0.0);
        self.advance(now);
        self.jobs.push(RunningJob {
            id,
            remaining: work_ref_cpu_ms,
            consumed_cpu_ms: 0.0,
        });
        self.generation += 1;
    }

    /// When will the earliest current job finish, given current conditions?
    /// `None` if idle or fully starved by external load.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, JobId)> {
        let rate = self.rate();
        if rate <= 0.0 || self.jobs.is_empty() || !self.up {
            return None;
        }
        self.jobs
            .iter()
            .map(|j| {
                // Ceil so the completion event never fires a hair early.
                let ms = (j.remaining / rate).ceil() as u64;
                (now + SimTime::from_millis(ms), j.id)
            })
            .min()
    }

    /// Remove and return jobs whose work is done at `now`.
    pub fn take_finished(&mut self, now: SimTime) -> Vec<(JobId, JobOutcome)> {
        self.advance(now);
        let mut done = Vec::new();
        self.jobs.retain(|j| {
            // One simulated millisecond of slack absorbs ceil() rounding.
            if j.remaining <= self.spec.speed() {
                done.push((
                    j.id,
                    JobOutcome::Completed {
                        cpu_ms: j.consumed_cpu_ms,
                    },
                ));
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            self.generation += 1;
        }
        done
    }

    /// Abort a specific job (kill-and-restart migration, §5.4 discussion).
    pub fn abort_job(&mut self, now: SimTime, id: JobId) -> Option<JobOutcome> {
        self.advance(now);
        let idx = self.jobs.iter().position(|j| j.id == id)?;
        let job = self.jobs.remove(idx);
        self.wasted_cpu_ms += job.consumed_cpu_ms;
        self.generation += 1;
        Some(JobOutcome::Killed)
    }

    /// Crash the node: all hosted jobs are killed and returned.
    pub fn crash(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        self.up = false;
        self.generation += 1;
        let killed: Vec<RunningJob> = self.jobs.drain(..).collect();
        self.wasted_cpu_ms += killed.iter().map(|j| j.consumed_cpu_ms).sum::<f64>();
        killed.into_iter().map(|j| j.id).collect()
    }

    /// Total occupancy consumed by jobs killed on this node.
    pub fn wasted_cpu_ms(&self) -> f64 {
        self.wasted_cpu_ms
    }

    /// Bring the node back (empty, healthy, same hardware).  Repair clears
    /// any armed flaky fault; reachability is a network property and is
    /// untouched.
    pub fn recover(&mut self, now: SimTime) {
        self.advance(now);
        self.up = true;
        self.flaky_kills = 0;
        self.generation += 1;
    }

    /// Change the external user load (CPUs consumed by other users).
    pub fn set_external_load(&mut self, now: SimTime, cpus: f64) {
        self.advance(now);
        self.external_cpus = cpus.max(0.0);
        self.generation += 1;
    }

    /// Hardware upgrade: change the number of online processors.  The
    /// second all-vs-all run "added a second processor to each node ... and
    /// BioOpera was able to take advantage of this" (Fig. 6).
    pub fn set_cpus(&mut self, now: SimTime, cpus: u32) {
        self.advance(now);
        self.cpus_online = cpus;
        self.spec.cpus = self.spec.cpus.max(cpus);
        self.generation += 1;
    }

    /// Remaining work of a job (testing/inspection).
    pub fn remaining_work(&self, id: JobId) -> Option<f64> {
        self.jobs.iter().find(|j| j.id == id).map(|j| j.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(cpus: u32, mhz: u32) -> Node {
        Node::new(NodeSpec::new("n", cpus, mhz, "linux"))
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut n = node(2, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0); // 10 ref-CPU-seconds
        let (t, id) = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(id, 1);
        assert_eq!(t, SimTime::from_secs(10));
        let done = n.take_finished(t);
        assert_eq!(done.len(), 1);
        match done[0].1 {
            JobOutcome::Completed { cpu_ms } => assert!((cpu_ms - 10_000.0).abs() < 1.5),
            _ => panic!(),
        }
    }

    #[test]
    fn fast_node_finishes_sooner() {
        let mut n = node(1, 1000); // 2x reference speed
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        let (t, _) = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn two_jobs_on_one_cpu_share() {
        let mut n = node(1, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.start_job(SimTime::ZERO, 2, 10_000.0);
        // Each runs at 0.5 CPU: 20s to finish.
        let (t, _) = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_secs(20));
        let done = n.take_finished(t);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn two_jobs_on_two_cpus_do_not_contend() {
        let mut n = node(2, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.start_job(SimTime::ZERO, 2, 10_000.0);
        let (t, _) = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert!((n.utilization() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn external_load_starves_nice_jobs() {
        let mut n = node(2, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.set_external_load(SimTime::ZERO, 2.0);
        assert_eq!(n.next_completion(SimTime::ZERO), None, "fully starved");
        assert!((n.load_fraction() - 1.0).abs() < 1e-9);
        // External users leave at t=30s; job then needs its full 10s.
        let t1 = SimTime::from_secs(30);
        n.set_external_load(t1, 0.0);
        let (t, _) = n.next_completion(t1).unwrap();
        assert_eq!(t, SimTime::from_secs(40));
    }

    #[test]
    fn partial_external_load_slows_jobs() {
        let mut n = node(2, 500);
        n.set_external_load(SimTime::ZERO, 1.0);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.start_job(SimTime::ZERO, 2, 10_000.0);
        // One CPU left for two jobs: each at 0.5 CPU -> 20 s.
        let (t, _) = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_secs(20));
    }

    #[test]
    fn crash_kills_jobs_and_recovery_restores_capacity() {
        let mut n = node(2, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.start_job(SimTime::ZERO, 2, 10_000.0);
        let killed = n.crash(SimTime::from_secs(3));
        assert_eq!(killed, vec![1, 2]);
        assert!(!n.is_up());
        assert_eq!(n.cpus_online(), 0);
        assert_eq!(n.utilization(), 0.0);
        n.recover(SimTime::from_secs(60));
        assert!(n.is_up());
        assert_eq!(n.cpus_online(), 2);
        assert_eq!(n.job_count(), 0);
    }

    #[test]
    fn upgrade_doubles_throughput() {
        let mut n = node(1, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.start_job(SimTime::ZERO, 2, 10_000.0);
        // After 10 s at 0.5 CPU each, both are half done.
        let mid = SimTime::from_secs(10);
        n.set_cpus(mid, 2);
        let (t, _) = n.next_completion(mid).unwrap();
        // Remaining 5 000 units now at full speed: 5 more seconds.
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn abort_removes_job_and_speeds_up_sibling() {
        let mut n = node(1, 500);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        n.start_job(SimTime::ZERO, 2, 10_000.0);
        let t = SimTime::from_secs(10); // both half done
        assert_eq!(n.abort_job(t, 1), Some(JobOutcome::Killed));
        assert_eq!(n.abort_job(t, 99), None);
        let (done_at, id) = n.next_completion(t).unwrap();
        assert_eq!(id, 2);
        assert_eq!(done_at, SimTime::from_secs(15)); // 5000 units left at full speed
    }

    #[test]
    fn consumed_cpu_tracks_occupancy_not_work() {
        // On a 2x-speed node, a 10 000-unit job takes 5 s of wall and 5 s of
        // CPU occupancy (work units are reference-speed units).
        let mut n = node(1, 1000);
        n.start_job(SimTime::ZERO, 1, 10_000.0);
        let (t, _) = n.next_completion(SimTime::ZERO).unwrap();
        let done = n.take_finished(t);
        match done[0].1 {
            JobOutcome::Completed { cpu_ms } => assert!((cpu_ms - 5_000.0).abs() < 2.0),
            _ => panic!(),
        }
    }

    #[test]
    fn flaky_kills_are_consumed_and_cleared_by_repair() {
        let mut n = node(1, 500);
        assert!(!n.consume_flaky_kill(), "healthy node kills nothing");
        n.set_flaky(2);
        assert!(n.consume_flaky_kill());
        assert!(n.consume_flaky_kill());
        assert!(!n.consume_flaky_kill(), "budget exhausted");
        n.set_flaky(5);
        n.crash(SimTime::from_secs(1));
        n.recover(SimTime::from_secs(2));
        assert!(!n.consume_flaky_kill(), "repair clears the fault");
        // Reachability is independent of up/down.
        assert!(n.is_reachable());
        n.set_reachable(false);
        assert!(!n.is_reachable());
        n.recover(SimTime::from_secs(3));
        assert!(!n.is_reachable(), "recovery does not heal the network");
        n.set_reachable(true);
        assert!(n.is_reachable());
    }

    #[test]
    fn generation_bumps_on_every_schedule_change() {
        let mut n = node(1, 500);
        let g0 = n.generation;
        n.start_job(SimTime::ZERO, 1, 1000.0);
        assert!(n.generation > g0);
        let g1 = n.generation;
        n.set_external_load(SimTime::from_secs(1), 0.5);
        assert!(n.generation > g1);
        let g2 = n.generation;
        n.set_cpus(SimTime::from_secs(2), 2);
        assert!(n.generation > g2);
    }
}
