//! Environment traces: timed sequences of failures, outages, upgrades,
//! external-load changes and operator actions.
//!
//! The paper stresses that "the failures observed were not injected but
//! part of the everyday operation of the systems" (§5); its event log is
//! nonetheless specific enough (category, approximate day, engine
//! reaction) to encode as a reproducible trace.  [`Trace::shared_run`]
//! models the ten numbered events of Figure 5 and [`Trace::nonshared_run`]
//! the three events of Figure 6.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of environment change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A single node fails (hardware crash); its jobs are killed.
    NodeDown(String),
    /// A failed node comes back, empty.
    NodeUp(String),
    /// Massive failure: every node in the cluster goes down.
    AllNodesDown,
    /// All nodes recover.
    AllNodesUp,
    /// Complete network outage between server and cluster.
    NetworkDown,
    /// Network restored.
    NetworkUp,
    /// External users now occupy `fraction` of every node's CPUs
    /// (BioOpera runs nice, so this directly steals capacity).
    ExternalLoadAll {
        /// Fraction of each node's online CPUs consumed, in [0, 1].
        fraction: f64,
    },
    /// External load on a single node, in CPUs.
    ExternalLoad {
        /// Node name.
        node: String,
        /// CPUs consumed.
        cpus: f64,
    },
    /// OS/hardware upgrade: set every node's online CPU count.
    UpgradeAllTo {
        /// New online CPU count per node.
        cpus: u32,
    },
    /// The BioOpera server process dies (in-memory state lost; the
    /// persistent spaces survive and recovery rebuilds from them).
    ServerCrash,
    /// The server host is back; the engine re-opens its store and resumes.
    ServerRecover,
    /// An operator suspends the process (e.g. another user requested
    /// exclusive cluster access): running jobs drain, nothing new starts.
    OperatorSuspend,
    /// Operator resumes a suspended process.
    OperatorResume,
    /// The result storage device fills up: completed activities cannot
    /// persist their results and are treated as failed until space returns.
    DiskFull,
    /// Storage freed.
    DiskFreed,
    /// `count` running activities silently fail to report their results
    /// (the paper's event 10: "two of the last TEUs failed to report");
    /// detected only by the operator-triggered restart.
    TaskNonReport {
        /// How many currently-running activities are affected.
        count: u32,
    },
    /// The node stays up but kills the next `kills` jobs it is handed
    /// (crash-looping service, bad local disk, flaky NIC) — the fault
    /// class behind the masked-failure requeue livelock.
    NodeFlaky {
        /// Affected node.
        node: String,
        /// Jobs killed before the fault clears (`u32::MAX` ≈ forever).
        kills: u32,
    },
    /// A network partition isolates one PEC from the server: the node
    /// keeps executing, results are buffered at the PEC, and the server
    /// dispatches nothing new there.
    NodePartition(String),
    /// The partitioned node rejoins; buffered results are delivered.
    NodeRejoin(String),
}

/// A timed, labeled environment event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub kind: TraceEventKind,
    /// Label used in the experiment's event log (e.g. Figure 5's markers).
    pub label: Option<String>,
}

/// A sorted sequence of environment events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace (fault-free environment).
    pub fn empty() -> Self {
        Trace::default()
    }

    /// Add an unlabeled event.
    pub fn push(&mut self, at: SimTime, kind: TraceEventKind) -> &mut Self {
        self.events.push(TraceEvent {
            at,
            kind,
            label: None,
        });
        self
    }

    /// Add a labeled event (shows up in the experiment's event log).
    pub fn push_labeled(
        &mut self,
        at: SimTime,
        kind: TraceEventKind,
        label: impl Into<String>,
    ) -> &mut Self {
        self.events.push(TraceEvent {
            at,
            kind,
            label: Some(label.into()),
        });
        self
    }

    /// Events sorted by time (stable for equal times).
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|e| e.at);
        ev
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The shared-cluster run (Figure 5): BioOpera in nice mode on
    /// linneus + 2×ik-sun, 17 Dec – 23 Jan, with the paper's ten events.
    ///
    /// Day numbers are relative to the start of the run.
    pub fn shared_run() -> Trace {
        let d = |days_x10: u64| SimTime::from_hours(days_x10 * 24 / 10); // tenths of days
        let mut t = Trace::empty();
        // Background: the cluster is shared, so a moderate external load is
        // present from the start and fluctuates.
        t.push(
            SimTime::ZERO,
            TraceEventKind::ExternalLoadAll { fraction: 0.25 },
        );
        // (1) Another user requests exclusive access; process suspended,
        // resumed once the cluster is freed.
        t.push_labeled(
            d(15),
            TraceEventKind::OperatorSuspend,
            "1: other user needs cluster (manual suspend)",
        );
        t.push(d(15), TraceEventKind::ExternalLoadAll { fraction: 0.95 });
        t.push(d(30), TraceEventKind::ExternalLoadAll { fraction: 0.25 });
        t.push_labeled(
            d(30),
            TraceEventKind::OperatorResume,
            "1b: cluster freed (resume)",
        );
        // (2) The sole BioOpera server crash (communication protocol bug).
        t.push_labeled(
            d(50),
            TraceEventKind::ServerCrash,
            "2: BioOpera server crash",
        );
        t.push(d(51), TraceEventKind::ServerRecover);
        // (3) First massive hardware failure.
        t.push_labeled(d(75), TraceEventKind::AllNodesDown, "3: cluster failure");
        t.push(d(80), TraceEventKind::AllNodesUp);
        // (5) Cluster heavily used by other jobs for almost a week.
        t.push_labeled(
            d(100),
            TraceEventKind::ExternalLoadAll { fraction: 0.85 },
            "5: cluster busy with other jobs",
        );
        t.push(d(160), TraceEventKind::ExternalLoadAll { fraction: 0.25 });
        // (4) Some nodes unavailable for a while.
        t.push_labeled(
            d(175),
            TraceEventKind::NodeDown("linneus3".into()),
            "4: some nodes unavailable",
        );
        t.push(d(175), TraceEventKind::NodeDown("linneus4".into()));
        t.push(d(175), TraceEventKind::NodeDown("linneus5".into()));
        t.push(d(175), TraceEventKind::NodeDown("linneus6".into()));
        t.push(d(190), TraceEventKind::NodeUp("linneus3".into()));
        t.push(d(190), TraceEventKind::NodeUp("linneus4".into()));
        t.push(d(190), TraceEventKind::NodeUp("linneus5".into()));
        t.push(d(190), TraceEventKind::NodeUp("linneus6".into()));
        // (6) Out of disk space; nobody watching; manually stopped, fixed,
        // and resumed (7).
        t.push_labeled(d(205), TraceEventKind::DiskFull, "6: disk space shortage");
        t.push(d(220), TraceEventKind::OperatorSuspend);
        t.push_labeled(
            d(222),
            TraceEventKind::DiskFreed,
            "7: storage fixed (resume)",
        );
        t.push(d(222), TraceEventKind::OperatorResume);
        // (7 in figure) Second massive hardware failure.
        t.push_labeled(
            d(240),
            TraceEventKind::AllNodesDown,
            "7: cluster failure (second)",
        );
        t.push(d(244), TraceEventKind::AllNodesUp);
        // (8) Server host maintenance: planned shutdown, smooth restart.
        t.push_labeled(d(260), TraceEventKind::ServerCrash, "8: server maintenance");
        t.push(d(265), TraceEventKind::ServerRecover);
        // (9) Many higher-priority jobs; file-system instability raises the
        // activity failure rate slightly (modeled by a node flap).
        t.push_labeled(
            d(280),
            TraceEventKind::ExternalLoadAll { fraction: 0.8 },
            "9: higher-priority jobs",
        );
        t.push(d(300), TraceEventKind::NodeDown("linneus7".into()));
        t.push(d(302), TraceEventKind::NodeUp("linneus7".into()));
        t.push(d(330), TraceEventKind::ExternalLoadAll { fraction: 0.2 });
        // (10) Two TEUs fail to report results; the operator restarts the
        // process and BioOpera immediately re-schedules them.
        t.push_labeled(
            d(350),
            TraceEventKind::TaskNonReport { count: 2 },
            "10: TEUs fail to report results",
        );
        t
    }

    /// A seeded, reproducible fault schedule for crash/recovery harnesses:
    /// `n_faults` environment faults drawn deterministically from `seed`,
    /// landing inside `(0, horizon)`, over the named `nodes`.  Every fault
    /// is paired with its recovery, operator suspends never nest, and the
    /// trace always ends with a healthy environment, so any workload that
    /// completes fault-free also completes under the schedule.  The same
    /// `(seed, nodes, horizon, n_faults)` always yields the same trace —
    /// a failing torture run reproduces from its printed seed alone.
    pub fn seeded_faults(seed: u64, nodes: &[String], horizon: SimTime, n_faults: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon_s = (horizon.as_millis() / 1000).max(4);
        let mut t = Trace::empty();
        let mut suspend_open = false;
        for _ in 0..n_faults {
            let at = rng.gen_range(1..horizon_s);
            let dur = rng.gen_range(1..=horizon_s / 2);
            let end = at + dur;
            match rng.gen_range(0u8..5) {
                0 if !nodes.is_empty() => {
                    let node = nodes[rng.gen_range(0..nodes.len())].clone();
                    t.push(
                        SimTime::from_secs(at),
                        TraceEventKind::NodeDown(node.clone()),
                    );
                    t.push(SimTime::from_secs(end), TraceEventKind::NodeUp(node));
                }
                1 => {
                    t.push(SimTime::from_secs(at), TraceEventKind::NetworkDown);
                    t.push(SimTime::from_secs(end), TraceEventKind::NetworkUp);
                }
                2 => {
                    t.push(SimTime::from_secs(at), TraceEventKind::ServerCrash);
                    t.push(SimTime::from_secs(end), TraceEventKind::ServerRecover);
                }
                3 if !suspend_open => {
                    suspend_open = true;
                    t.push(SimTime::from_secs(at), TraceEventKind::OperatorSuspend);
                    t.push(SimTime::from_secs(end), TraceEventKind::OperatorResume);
                }
                4 => {
                    t.push(SimTime::from_secs(at), TraceEventKind::DiskFull);
                    t.push(SimTime::from_secs(end), TraceEventKind::DiskFreed);
                }
                _ => {} // node fault with no nodes / nested suspend: skip
            }
        }
        t
    }

    /// The non-shared run (Figure 6): ik-linux, 31 May – 21 Jul; two
    /// planned network outages and the CPU-doubling OS change at ~day 25.
    pub fn nonshared_run() -> Trace {
        let mut t = Trace::empty();
        t.push_labeled(
            SimTime::from_days(10),
            TraceEventKind::NetworkDown,
            "planned network outage #1 (suspend)",
        );
        t.push(SimTime::from_days(10), TraceEventKind::OperatorSuspend);
        t.push(
            SimTime::from_days(10) + SimTime::from_hours(12),
            TraceEventKind::NetworkUp,
        );
        t.push(
            SimTime::from_days(10) + SimTime::from_hours(12),
            TraceEventKind::OperatorResume,
        );
        t.push_labeled(
            SimTime::from_days(18),
            TraceEventKind::NetworkDown,
            "planned network outage #2 (suspend)",
        );
        t.push(SimTime::from_days(18), TraceEventKind::OperatorSuspend);
        t.push(
            SimTime::from_days(18) + SimTime::from_hours(8),
            TraceEventKind::NetworkUp,
        );
        t.push(
            SimTime::from_days(18) + SimTime::from_hours(8),
            TraceEventKind::OperatorResume,
        );
        t.push_labeled(
            SimTime::from_days(25),
            TraceEventKind::UpgradeAllTo { cpus: 2 },
            "OS configuration change: second processor enabled on every node",
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_sorted_and_labeled() {
        for trace in [Trace::shared_run(), Trace::nonshared_run()] {
            let ev = trace.sorted_events();
            assert!(!ev.is_empty());
            for w in ev.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
        }
        let labels: Vec<String> = Trace::shared_run()
            .sorted_events()
            .into_iter()
            .filter_map(|e| e.label)
            .collect();
        // All ten numbered event groups of Figure 5 are present.
        for needle in ["1:", "2:", "3:", "4:", "5:", "6:", "7:", "8:", "9:", "10:"] {
            assert!(
                labels.iter().any(|l| l.starts_with(needle)),
                "missing event {needle} in shared trace"
            );
        }
    }

    #[test]
    fn shared_run_spans_over_a_month() {
        let ev = Trace::shared_run().sorted_events();
        assert!(ev.last().unwrap().at >= SimTime::from_days(34));
    }

    #[test]
    fn nonshared_run_has_upgrade_at_day_25() {
        let ev = Trace::nonshared_run().sorted_events();
        let up = ev
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::UpgradeAllTo { .. }))
            .unwrap();
        assert_eq!(up.at, SimTime::from_days(25));
    }

    #[test]
    fn suspends_and_resumes_pair_up() {
        for trace in [Trace::shared_run(), Trace::nonshared_run()] {
            let mut depth = 0i32;
            for e in trace.sorted_events() {
                match e.kind {
                    TraceEventKind::OperatorSuspend => depth += 1,
                    TraceEventKind::OperatorResume => depth -= 1,
                    _ => {}
                }
                assert!((0..=1).contains(&depth), "unbalanced suspend/resume");
            }
            assert_eq!(depth, 0);
        }
    }

    #[test]
    fn seeded_faults_are_reproducible_paired_and_bounded() {
        let nodes: Vec<String> = (0..3).map(|i| format!("n{i}")).collect();
        let horizon = SimTime::from_secs(60);
        let a = Trace::seeded_faults(42, &nodes, horizon, 8);
        let b = Trace::seeded_faults(42, &nodes, horizon, 8);
        assert_eq!(a, b, "same seed must yield the identical schedule");
        let c = Trace::seeded_faults(43, &nodes, horizon, 8);
        assert_ne!(a, c, "different seeds should diverge");

        // Every fault is paired with a later recovery of the same kind.
        let ev = a.sorted_events();
        assert!(!ev.is_empty());
        let count = |f: &dyn Fn(&TraceEventKind) -> bool| ev.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(
            count(&|k| matches!(k, TraceEventKind::NetworkDown)),
            count(&|k| matches!(k, TraceEventKind::NetworkUp))
        );
        assert_eq!(
            count(&|k| matches!(k, TraceEventKind::ServerCrash)),
            count(&|k| matches!(k, TraceEventKind::ServerRecover))
        );
        assert_eq!(
            count(&|k| matches!(k, TraceEventKind::NodeDown(_))),
            count(&|k| matches!(k, TraceEventKind::NodeUp(_)))
        );
        assert_eq!(
            count(&|k| matches!(k, TraceEventKind::DiskFull)),
            count(&|k| matches!(k, TraceEventKind::DiskFreed))
        );
        // Suspends never nest.
        let mut depth = 0i32;
        for e in &ev {
            match e.kind {
                TraceEventKind::OperatorSuspend => depth += 1,
                TraceEventKind::OperatorResume => depth -= 1,
                _ => {}
            }
            assert!((0..=1).contains(&depth));
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Trace::shared_run();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn dependability_fault_kinds_roundtrip() {
        let mut t = Trace::empty();
        t.push(
            SimTime::from_secs(1),
            TraceEventKind::NodeFlaky {
                node: "n1".into(),
                kills: u32::MAX,
            },
        );
        t.push(
            SimTime::from_secs(2),
            TraceEventKind::NodePartition("n2".into()),
        );
        t.push(
            SimTime::from_secs(9),
            TraceEventKind::NodeRejoin("n2".into()),
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
