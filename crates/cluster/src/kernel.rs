//! The discrete-event simulation kernel.
//!
//! A min-heap of `(time, sequence, event)` entries.  The sequence number
//! makes simultaneous events pop in scheduling order, which keeps whole
//! experiment runs bit-for-bit deterministic — a property the recovery
//! property-tests rely on (crash/replay must reproduce the same world).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry (internal ordering wrapper).
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue driving a simulation.
///
/// `E` is the driver's event type; the kernel itself is policy-free.
pub struct SimKernel<E> {
    queue: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for SimKernel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SimKernel<E> {
    /// A kernel at time zero with an empty queue.
    pub fn new() -> Self {
        SimKernel {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute time `at`.  Scheduling in the past is a
    /// driver bug and panics (it would silently reorder causality).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.queue.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Peek at the next event time without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Discard events matching a predicate (used to cancel stale
    /// completion events after a reschedule; drivers usually prefer
    /// generation counters, but cancellation is handy in tests).
    pub fn retain(&mut self, mut keep: impl FnMut(&E) -> bool) {
        let drained: Vec<Entry<E>> = std::mem::take(&mut self.queue)
            .into_iter()
            .map(|Reverse(e)| e)
            .filter(|e| keep(&e.event))
            .collect();
        for e in drained {
            self.queue.push(Reverse(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut k = SimKernel::new();
        k.schedule_at(SimTime::from_secs(5), "c");
        k.schedule_at(SimTime::from_secs(1), "a");
        k.schedule_at(SimTime::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| k.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(k.now(), SimTime::from_secs(5));
        assert_eq!(k.processed(), 3);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut k = SimKernel::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            k.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| k.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut k = SimKernel::new();
        k.schedule_at(SimTime::from_secs(10), "first");
        k.pop();
        k.schedule_after(SimTime::from_secs(5), "second");
        let (at, _) = k.pop().unwrap();
        assert_eq!(at, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut k = SimKernel::new();
        k.schedule_at(SimTime::from_secs(10), "x");
        k.pop();
        k.schedule_at(SimTime::from_secs(5), "y");
    }

    #[test]
    fn retain_cancels_events() {
        let mut k = SimKernel::new();
        for i in 0..10 {
            k.schedule_at(SimTime::from_secs(i), i);
        }
        k.retain(|e| e % 2 == 0);
        assert_eq!(k.pending(), 5);
        let order: Vec<u64> = std::iter::from_fn(|| k.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }
}
