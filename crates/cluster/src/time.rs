//! Virtual time.
//!
//! The simulator runs in milliseconds of *virtual* time so that the
//! all-vs-all experiments — 38 and 51 days of wall time in the paper —
//! complete in seconds of real time while the engine observes realistic
//! timestamps in its persistent history.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (milliseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// From seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// From fractional seconds (rounds to the nearest millisecond).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1_000.0).round().max(0.0) as u64)
    }

    /// From minutes.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// From hours.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// From days.
    pub fn from_days(d: u64) -> Self {
        SimTime(d * 86_400_000)
    }

    /// Milliseconds since start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Hours since start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Days since start.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    /// `12d 03h 45m 10s` — the format used in the experiment tables
    /// (mirrors the paper's `CPU(Π)` rows like "31d 6h 1m").
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000;
        let days = total_secs / 86_400;
        let hours = (total_secs % 86_400) / 3_600;
        let mins = (total_secs % 3_600) / 60;
        let secs = total_secs % 60;
        if days > 0 {
            write!(f, "{days}d {hours:02}h {mins:02}m")
        } else if hours > 0 {
            write!(f, "{hours}h {mins:02}m {secs:02}s")
        } else if mins > 0 {
            write!(f, "{mins}m {secs:02}s")
        } else {
            write!(f, "{secs}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1500));
    }

    #[test]
    fn month_scale_fits() {
        let two_months = SimTime::from_days(60);
        assert!(two_months.as_days_f64() > 59.9);
        // u64 ms supports ~584 million years; no overflow concern.
        let _ = two_months + SimTime::from_days(60);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(5).to_string(), "5s");
        assert_eq!(SimTime::from_secs(65).to_string(), "1m 05s");
        assert_eq!(
            SimTime::from_secs(3_600 + 120 + 3).to_string(),
            "1h 02m 03s"
        );
        assert_eq!(
            (SimTime::from_days(31) + SimTime::from_hours(6) + SimTime::from_mins(1)).to_string(),
            "31d 06h 01m"
        );
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(3);
        assert_eq!(a - b, SimTime::from_secs(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(13));
    }
}
