//! # bioopera-cluster
//!
//! A deterministic discrete-event **cluster simulator**: the substrate that
//! replaces the paper's physical clusters (linneus, ik-sun, ik-linux) so
//! that month-long computations exercise the real engine code paths in
//! seconds, and failure traces are reproducible instead of anecdotal.
//!
//! Components:
//!
//! * [`time`] — virtual time ([`time::SimTime`]), millisecond resolution,
//!   month-scale range.
//! * [`kernel`] — the event queue ([`kernel::SimKernel`]), generic over the
//!   driver's event type; deterministic FIFO tie-breaking.
//! * [`node`] — nodes with CPUs, clock speeds and OSes; a processor-sharing
//!   execution model with external (non-BioOpera) user load, crashes,
//!   recovery, and mid-run hardware upgrades.
//! * [`cluster`] — groups of nodes plus network state; factories for the
//!   paper's three clusters.
//! * [`monitor`] — the **adaptive load monitoring** technique of §3.4
//!   (interval back-off plus change-threshold reporting) and the error
//!   metric used for the "discard 80 % of samples ⇒ ≈1 % error" claim.
//! * [`trace`] — timed environment events (failures, outages, upgrades,
//!   operator actions) and the pre-built traces modeled on Figures 5 and 6.
//! * [`loadgen`] — seeded synthetic load curves for the monitoring
//!   experiments and the shared-cluster external load.

pub mod cluster;
pub mod kernel;
pub mod loadgen;
pub mod monitor;
pub mod node;
pub mod time;
pub mod trace;

pub use cluster::{Cluster, NetworkState};
pub use kernel::SimKernel;
pub use monitor::{AdaptiveMonitor, MonitorConfig, MonitorReport};
pub use node::{JobId, JobOutcome, Node, NodeSpec};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, TraceEventKind};
