//! Adaptive load monitoring (paper §3.4).
//!
//! "At the heart of this technique lies the idea that processors which
//! display a constant workload over a long period of time do not have to be
//! monitored as closely as processors having a variable workload. First,
//! the local program execution client compares the last recorded load with
//! the current load at that node. If the change falls below some
//! predetermined cut-off level, the interval before the next sampling is
//! increased. Otherwise, the interval is decreased. Second, the PEC
//! notifies the BioOpera server of changes in load only if the amount of
//! change has increased/decreased beyond a second predetermined cut-off
//! level."
//!
//! [`evaluate`] replays a true load curve through the monitor and measures
//! exactly what the paper reports: the fraction of samples discarded before
//! being sent, and the average per-sample error of the server's view of the
//! load curve versus the actual curve.

use serde::{Deserialize, Serialize};

/// Tuning parameters of the adaptive monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Shortest sampling interval, in grid ticks (the PEC's fastest rate).
    pub min_interval: u32,
    /// Longest sampling interval after repeated stability.
    pub max_interval: u32,
    /// First cut-off: if |load - last_sample| is below this, the interval
    /// doubles; otherwise it resets to `min_interval`.
    pub stability_cutoff: f64,
    /// Second cut-off: a sample is sent to the server only if it differs
    /// from the last *reported* value by more than this.
    pub report_cutoff: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            min_interval: 1,
            max_interval: 32,
            stability_cutoff: 0.02,
            report_cutoff: 0.03,
        }
    }
}

/// The PEC-side monitor state machine.
#[derive(Debug, Clone)]
pub struct AdaptiveMonitor {
    cfg: MonitorConfig,
    interval: u32,
    ticks_until_sample: u32,
    last_sample: Option<f64>,
    last_reported: Option<f64>,
    samples_taken: u64,
    reports_sent: u64,
}

impl AdaptiveMonitor {
    /// A monitor with the given configuration.  The PEC's sampling clock
    /// starts at monitor creation, so the first sample lands after one
    /// full minimum interval (immediately when `min_interval` is 1).
    pub fn new(cfg: MonitorConfig) -> Self {
        AdaptiveMonitor {
            cfg,
            interval: cfg.min_interval,
            ticks_until_sample: cfg.min_interval.saturating_sub(1),
            last_sample: None,
            last_reported: None,
            samples_taken: 0,
            reports_sent: 0,
        }
    }

    /// Advance one grid tick with the node's true `load`; returns
    /// `Some(load)` when the monitor sends a report to the server.
    pub fn tick(&mut self, load: f64) -> Option<f64> {
        if self.ticks_until_sample > 0 {
            self.ticks_until_sample -= 1;
            return None;
        }
        // Take a sample.
        self.samples_taken += 1;
        let change = match self.last_sample {
            Some(prev) => (load - prev).abs(),
            None => f64::INFINITY,
        };
        self.last_sample = Some(load);
        // First cut-off: adapt the interval.
        if change < self.cfg.stability_cutoff {
            self.interval = (self.interval * 2).min(self.cfg.max_interval);
        } else {
            self.interval = self.cfg.min_interval;
        }
        self.ticks_until_sample = self.interval.saturating_sub(1);
        // Second cut-off: report only significant changes.
        let report = match self.last_reported {
            Some(prev) => (load - prev).abs() > self.cfg.report_cutoff,
            None => true,
        };
        if report {
            self.last_reported = Some(load);
            self.reports_sent += 1;
            Some(load)
        } else {
            None
        }
    }

    /// Samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Reports sent so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }
}

/// Result of replaying a true load curve through the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Samples the PEC took.
    pub samples_taken: u64,
    /// Reports that actually crossed the network.
    pub reports_sent: u64,
    /// `1 - sent/taken`: the fraction of samples discarded before being
    /// sent to the BioOpera server (the paper's 80 % figure).
    pub discard_fraction: f64,
    /// Network/sampling saving versus naive per-tick sampling + reporting.
    pub traffic_reduction: f64,
    /// Mean |server view − true load| per *observed* grid tick, in
    /// percentage points of load (the paper's "average 1 % error per
    /// sample").  Warm-up ticks before the first report reaches the
    /// server carry no view to compare against and are excluded — folding
    /// them in would dilute the mean toward zero.
    pub mean_abs_error_pct: f64,
    /// Worst-case error, percentage points.
    pub max_error_pct: f64,
    /// Ticks before the first report reached the server (no view yet).
    pub warmup_ticks: u64,
    /// Ticks over which the error was actually measured
    /// (`truth.len() - warmup_ticks`).
    pub observed_ticks: u64,
}

/// Replay `truth` (one load value per grid tick) through a monitor with
/// `cfg`; the server's view holds the last reported value.
pub fn evaluate(truth: &[f64], cfg: MonitorConfig) -> MonitorReport {
    let mut mon = AdaptiveMonitor::new(cfg);
    let mut server_view = 0.0f64;
    let mut have_view = false;
    let mut abs_err_sum = 0.0;
    let mut max_err = 0.0f64;
    let mut warmup_ticks = 0u64;
    let mut observed_ticks = 0u64;
    for &load in truth {
        if let Some(reported) = mon.tick(load) {
            server_view = reported;
            have_view = true;
        }
        if have_view {
            observed_ticks += 1;
            let err = (server_view - load).abs();
            abs_err_sum += err;
            max_err = max_err.max(err);
        } else {
            warmup_ticks += 1;
        }
    }
    let n = truth.len().max(1) as f64;
    let taken = mon.samples_taken();
    let sent = mon.reports_sent();
    MonitorReport {
        samples_taken: taken,
        reports_sent: sent,
        discard_fraction: if taken == 0 {
            0.0
        } else {
            1.0 - sent as f64 / taken as f64
        },
        traffic_reduction: 1.0 - sent as f64 / n,
        // Average over the ticks the server could actually be wrong
        // about, not the full replay: dividing by `truth.len()` silently
        // shrank the error whenever the first report arrived late.
        mean_abs_error_pct: abs_err_sum / observed_ticks.max(1) as f64 * 100.0,
        max_error_pct: max_err * 100.0,
        warmup_ticks,
        observed_ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{load_curve, LoadModel};

    #[test]
    fn constant_load_backs_off_to_max_interval() {
        let mut mon = AdaptiveMonitor::new(MonitorConfig::default());
        for _ in 0..1000 {
            mon.tick(0.5);
        }
        // With doubling up to 32, samples ≈ 5 (ramp) + 1000/32.
        assert!(mon.samples_taken() < 50, "took {}", mon.samples_taken());
        // Only the very first sample is reported.
        assert_eq!(mon.reports_sent(), 1);
    }

    #[test]
    fn step_change_is_reported_quickly() {
        let cfg = MonitorConfig::default();
        let mut truth = vec![0.2; 200];
        truth.extend(vec![0.9; 200]);
        let report = evaluate(&truth, cfg);
        assert!(
            report.reports_sent >= 2,
            "step change must reach the server"
        );
        // The error is bounded by the detection delay (≤ max_interval ticks
        // at 0.7 amplitude) amortized over 400 ticks.
        assert!(
            report.mean_abs_error_pct < 7.0,
            "err {}",
            report.mean_abs_error_pct
        );
    }

    #[test]
    fn volatile_load_resets_interval() {
        let mut mon = AdaptiveMonitor::new(MonitorConfig::default());
        for i in 0..100 {
            mon.tick(if i % 2 == 0 { 0.1 } else { 0.9 });
        }
        // Never backs off: every tick sampled.
        assert_eq!(mon.samples_taken(), 100);
    }

    #[test]
    fn paper_claim_shape_holds_on_synthetic_load() {
        // A configuration exists that discards >= 75 % of samples with a
        // small mean error — the §3.4 claim (80 %, ~1 %).
        let truth = load_curve(2001, 50_000, &LoadModel::default());
        let cfg = MonitorConfig {
            min_interval: 1,
            max_interval: 64,
            stability_cutoff: 0.02,
            report_cutoff: 0.04,
        };
        let report = evaluate(&truth, cfg);
        assert!(
            report.discard_fraction >= 0.6,
            "discard fraction too low: {}",
            report.discard_fraction
        );
        assert!(
            report.mean_abs_error_pct <= 3.0,
            "error too high: {}",
            report.mean_abs_error_pct
        );
    }

    #[test]
    fn late_first_report_does_not_dilute_mean_error() {
        // First sample lands at tick 49 (min_interval 50) and reports 0.9;
        // the load then drops to 0.5 but report_cutoff 1.0 suppresses all
        // further reports, so the view stays wrong by 0.4 for 50 of the
        // 51 observed ticks.  The old code divided by the full 100-tick
        // replay and reported 20 %; the true per-observed-tick error is
        // 20.0 / 51.
        let mut truth = vec![0.9; 50];
        truth.extend(vec![0.5; 50]);
        let cfg = MonitorConfig {
            min_interval: 50,
            max_interval: 50,
            stability_cutoff: 0.0,
            report_cutoff: 1.0,
        };
        let report = evaluate(&truth, cfg);
        assert_eq!(report.warmup_ticks, 49);
        assert_eq!(report.observed_ticks, 51);
        let expected = 20.0 / 51.0 * 100.0;
        assert!(
            (report.mean_abs_error_pct - expected).abs() < 1e-9,
            "mean err {} != {}",
            report.mean_abs_error_pct,
            expected
        );
        assert!((report.max_error_pct - 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cutoffs_degenerate_to_full_fidelity() {
        let truth = load_curve(7, 5_000, &LoadModel::default());
        let cfg = MonitorConfig {
            min_interval: 1,
            max_interval: 1,
            stability_cutoff: 0.0,
            report_cutoff: 0.0,
        };
        let report = evaluate(&truth, cfg);
        assert_eq!(report.samples_taken, 5_000);
        // Everything meaningful is reported; error is (near) zero.
        assert!(report.mean_abs_error_pct < 1e-6);
    }
}
