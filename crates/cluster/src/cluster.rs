//! Clusters: named groups of nodes plus network state, with factories for
//! the paper's three hardware environments (§5.1).

use crate::node::{Node, NodeSpec};
use crate::time::SimTime;

/// Reachability of the cluster LAN from the BioOpera server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkState {
    /// Normal operation.
    Up,
    /// Complete network outage: no dispatch, completions are buffered at
    /// the PECs until connectivity returns.
    Down,
}

/// A set of nodes on one LAN.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Cluster name, e.g. `linneus`.
    pub name: String,
    nodes: Vec<Node>,
    network: NetworkState,
}

impl Cluster {
    /// Build a cluster from specs.
    pub fn new(name: impl Into<String>, specs: Vec<NodeSpec>) -> Self {
        Cluster {
            name: name.into(),
            nodes: specs.into_iter().map(Node::new).collect(),
            network: NetworkState::Up,
        }
    }

    /// Merge another cluster's nodes into this one (the shared experiment
    /// ran on linneus + two ik-sun nodes as one pool).
    pub fn absorb(&mut self, other: Cluster) {
        self.nodes.extend(other.nodes);
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All nodes, mutable.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Find a node by name.
    pub fn node(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.spec.name == name)
    }

    /// Find a node by name, mutable.
    pub fn node_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.spec.name == name)
    }

    /// Network state.
    pub fn network(&self) -> NetworkState {
        self.network
    }

    /// Set network state.
    pub fn set_network(&mut self, s: NetworkState) {
        self.network = s;
    }

    /// Processors available from the server's point of view: online CPUs of
    /// up, reachable nodes, or zero during a network outage (the dark
    /// series of Figs. 5/6).  A partitioned node's CPUs are invisible to
    /// the server even though its jobs keep running.
    pub fn availability(&self) -> u32 {
        if self.network == NetworkState::Down {
            return 0;
        }
        self.nodes
            .iter()
            .filter(|n| n.is_reachable())
            .map(|n| n.cpus_online())
            .sum()
    }

    /// Processors currently executing BioOpera jobs (the light series of
    /// Figs. 5/6).  Jobs keep running during a network outage, but the
    /// server cannot see them; we report the physical truth and let the
    /// experiment harness decide which view to plot.
    pub fn utilization(&self) -> f64 {
        self.nodes.iter().map(|n| n.utilization()).sum()
    }

    /// Occupancy consumed by killed jobs across all nodes (lost work).
    pub fn wasted_cpu_ms(&self) -> f64 {
        self.nodes.iter().map(|n| n.wasted_cpu_ms()).sum()
    }

    /// Total installed processors (for capacity planning).
    pub fn installed_cpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.spec.cpus).sum()
    }

    /// Advance every node to `now` (used before cluster-wide queries).
    pub fn advance_all(&mut self, now: SimTime) {
        for n in &mut self.nodes {
            n.advance(now);
        }
    }

    /// The `linneus` cluster: 13 two-processor 500 MHz PCs (Red Hat Linux)
    /// plus one 6-CPU 336 MHz Sun SparcStation (Solaris) — 32 CPUs.
    pub fn linneus() -> Cluster {
        let mut specs: Vec<NodeSpec> = (1..=13)
            .map(|i| NodeSpec::new(format!("linneus{i}"), 2, 500, "linux"))
            .collect();
        specs.push(NodeSpec::new("linneus-sparc", 6, 336, "solaris"));
        Cluster::new("linneus", specs)
    }

    /// The `ik-sun` cluster: 5 single-CPU 360 MHz Sun Ultras (Solaris).
    pub fn ik_sun() -> Cluster {
        let specs = (1..=5)
            .map(|i| NodeSpec::new(format!("ik-sun{i}"), 1, 360, "solaris"))
            .collect();
        Cluster::new("ik-sun", specs)
    }

    /// The `ik-linux` cluster: 8 two-processor 600 MHz PCs (Red Hat Linux)
    /// that *start* with one processor online; the second is enabled by a
    /// mid-run OS configuration change (Fig. 6, day ~25).
    pub fn ik_linux() -> Cluster {
        let specs: Vec<NodeSpec> = (1..=8)
            .map(|i| NodeSpec::new(format!("ik-linux{i}"), 2, 600, "linux"))
            .collect();
        let mut c = Cluster::new("ik-linux", specs);
        for n in c.nodes_mut() {
            n.set_cpus(SimTime::ZERO, 1);
        }
        c
    }

    /// The shared-run pool: linneus plus two ik-sun nodes ("we used the
    /// ik-sun (only two nodes) and linneus clusters").
    pub fn shared_pool() -> Cluster {
        let mut pool = Cluster::linneus();
        let mut ik = Cluster::ik_sun();
        ik.nodes.truncate(2);
        pool.absorb(ik);
        pool.name = "linneus+ik-sun".into();
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clusters_have_paper_capacities() {
        assert_eq!(Cluster::linneus().availability(), 13 * 2 + 6);
        assert_eq!(Cluster::ik_sun().availability(), 5);
        // ik-linux starts at 8 online CPUs, 16 installed.
        let ik = Cluster::ik_linux();
        assert_eq!(ik.availability(), 8);
        assert_eq!(ik.installed_cpus(), 16);
        // Shared pool: 32 + 2 = 34 CPUs reachable at best.
        assert_eq!(Cluster::shared_pool().availability(), 34);
    }

    #[test]
    fn network_outage_zeroes_availability() {
        let mut c = Cluster::ik_sun();
        c.set_network(NetworkState::Down);
        assert_eq!(c.availability(), 0);
        c.set_network(NetworkState::Up);
        assert_eq!(c.availability(), 5);
    }

    #[test]
    fn node_lookup_and_crash_affects_availability() {
        let mut c = Cluster::ik_sun();
        c.node_mut("ik-sun3").unwrap().crash(SimTime::ZERO);
        assert_eq!(c.availability(), 4);
        assert!(c.node("ik-sun9").is_none());
    }

    #[test]
    fn partitioned_node_is_invisible_to_availability() {
        let mut c = Cluster::ik_sun();
        c.node_mut("ik-sun2").unwrap().set_reachable(false);
        assert_eq!(c.availability(), 4, "partitioned CPUs are not available");
        c.node_mut("ik-sun2").unwrap().set_reachable(true);
        assert_eq!(c.availability(), 5);
    }

    #[test]
    fn utilization_sums_over_nodes() {
        let mut c = Cluster::ik_sun();
        c.node_mut("ik-sun1")
            .unwrap()
            .start_job(SimTime::ZERO, 1, 1000.0);
        c.node_mut("ik-sun2")
            .unwrap()
            .start_job(SimTime::ZERO, 2, 1000.0);
        assert!((c.utilization() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ik_linux_upgrade_path() {
        let mut c = Cluster::ik_linux();
        for n in c.nodes_mut() {
            n.set_cpus(SimTime::from_days(25), 2);
        }
        assert_eq!(c.availability(), 16);
    }
}
