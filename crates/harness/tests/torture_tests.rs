//! The torture harness as a test suite.  Any failure message embeds the
//! `HARNESS_SEED`/crash-index pair that reproduces it:
//! `HARNESS_SEED=<seed> cargo test -p bioopera-harness`.

use bioopera_harness::{
    run_runtime_torture, run_store_torture, run_store_torture_leveled, run_store_torture_tiered,
    seed_from_env, DEFAULT_SEED,
};

#[test]
fn store_full_crash_point_enumeration_holds_all_invariants() {
    let seed = seed_from_env(DEFAULT_SEED);
    let out = run_store_torture(seed, None);
    assert!(out.mutations > 25, "workload too small to be interesting");
    assert!(
        out.violations.is_empty(),
        "{} violations (first: {})",
        out.violations.len(),
        out.violations[0]
    );
}

#[test]
fn tiered_store_full_crash_point_enumeration_holds_all_invariants() {
    let seed = seed_from_env(DEFAULT_SEED);
    let tiered = run_store_torture_tiered(seed, None);
    let untiered = run_store_torture(seed, None);
    // The tiny memtable budget must actually pull spill and run-merge disk
    // writes into the trace: the same script costs strictly more mutations
    // than under the untiered engine.
    assert!(
        tiered.mutations > untiered.mutations + 8,
        "tiered probe added no spill/merge mutations ({} vs {})",
        tiered.mutations,
        untiered.mutations
    );
    assert!(
        tiered.violations.is_empty(),
        "{} violations (first: {})",
        tiered.violations.len(),
        tiered.violations[0]
    );
}

#[test]
fn leveled_store_full_crash_point_enumeration_holds_all_invariants() {
    let seed = seed_from_env(DEFAULT_SEED);
    let leveled = run_store_torture_leveled(seed, None);
    let untiered = run_store_torture(seed, None);
    // Squeezed level budgets must pull level-merge commits, run splits and
    // retention advances into the trace on top of the plain WAL writes.
    assert!(
        leveled.mutations > untiered.mutations + 8,
        "leveled probe added no level-merge mutations ({} vs {})",
        leveled.mutations,
        untiered.mutations
    );
    assert!(
        leveled.violations.is_empty(),
        "{} violations (first: {})",
        leveled.violations.len(),
        leveled.violations[0]
    );
}

#[test]
fn leveled_store_enumeration_holds_under_an_alternate_seed() {
    let seed = seed_from_env(DEFAULT_SEED) ^ 0x5EED_CAFE;
    let out = run_store_torture_leveled(seed, Some(10));
    assert!(
        out.violations.is_empty(),
        "{} violations (first: {})",
        out.violations.len(),
        out.violations[0]
    );
}

#[test]
fn tiered_store_enumeration_holds_under_an_alternate_seed() {
    let seed = seed_from_env(DEFAULT_SEED) ^ 0x7E1E_57A7;
    let out = run_store_torture_tiered(seed, Some(10));
    assert!(
        out.violations.is_empty(),
        "{} violations (first: {})",
        out.violations.len(),
        out.violations[0]
    );
}

#[test]
fn store_enumeration_holds_under_an_alternate_seed() {
    // A different seed produces a different script, torn-prefix lengths and
    // flip offsets; a bounded sample keeps the suite fast.
    let seed = seed_from_env(DEFAULT_SEED) ^ 0x00DE_C0DE;
    let out = run_store_torture(seed, Some(10));
    assert!(
        out.violations.is_empty(),
        "{} violations (first: {})",
        out.violations.len(),
        out.violations[0]
    );
}

#[test]
fn runtime_sampled_crash_points_recover_byte_identically() {
    let seed = seed_from_env(DEFAULT_SEED);
    let out = run_runtime_torture(seed, 6, 2);
    assert!(
        out.mutations > 50,
        "all-vs-all run too small: {} mutations",
        out.mutations
    );
    assert!(
        out.violations.is_empty(),
        "{} violations (first: {})",
        out.violations.len(),
        out.violations[0]
    );
}
