//! # bioopera-harness
//!
//! Deterministic crash-point torture harness for the store and the engine
//! recovery path.  The paper's dependability claim (§3.4) is that BioOpera
//! "resumes the execution of the computation smoothly when failures occur
//! and avoids inconsistencies in the output data after failures"; this
//! crate turns that claim into an *enumerable* check instead of a sampled
//! one.
//!
//! The method is the classic crash-point enumeration used by file-system
//! and database torture tests:
//!
//! 1. run a scripted workload **crash-free** on a [`MemDisk`] and count
//!    every disk mutation (`append`, `write_atomic`, `delete`);
//! 2. re-run the workload once per mutation index, injecting a crash at
//!    exactly that point with each [`CrashEffect`] (lost write, torn
//!    write, write-then-crash);
//! 3. after every crash: reboot, reopen, and check the durability
//!    invariants — reopen never panics, every acknowledged batch is fully
//!    present, the in-flight batch is all-or-nothing, and resuming the
//!    workload converges byte-identically on the crash-free oracle.
//!
//! A second crash can be injected *during recovery itself*, and persisted
//! bytes can be bit-flipped to model media corruption; both are part of
//! the enumeration.
//!
//! Everything is derived from a single `HARNESS_SEED`, printed together
//! with the crash index in every violation message, so any failure
//! reproduces with `HARNESS_SEED=<seed> cargo test -p bioopera-harness`.
//!
//! [`MemDisk`]: bioopera_store::MemDisk
//! [`CrashEffect`]: bioopera_store::CrashEffect

pub mod runtime_torture;
pub mod shard_torture;
pub mod store_torture;

pub use runtime_torture::{run_runtime_torture, RuntimeTortureOutcome};
pub use shard_torture::{run_shard_torture, ShardTortureOutcome};
pub use store_torture::{
    run_store_torture, run_store_torture_leveled, run_store_torture_tiered, tiny_leveled_policy,
    tiny_tiered_policy, StoreTortureOutcome,
};

/// Default seed when `HARNESS_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xB10B_0B5E;

/// Resolve the harness seed: the `HARNESS_SEED` environment variable when
/// set (and parseable as `u64`), otherwise `default`.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Combined outcome of the store and runtime torture passes.
pub struct TortureReport {
    /// The seed every schedule was derived from.
    pub seed: u64,
    /// Store-workload enumeration outcome (untiered snapshot + WAL engine).
    pub store: StoreTortureOutcome,
    /// Store-workload enumeration outcome under a tiny tiered policy, so
    /// crash points inside memtable spills and run merge compactions are
    /// part of the enumeration.
    pub store_tiered: StoreTortureOutcome,
    /// Store-workload enumeration outcome under a tiny *leveled* policy:
    /// level-merge commits, multi-run splits, retention-watermark advances
    /// and input-run GC all become enumerated crash points.
    pub store_leveled: StoreTortureOutcome,
    /// Runtime all-vs-all outcome.
    pub runtime: RuntimeTortureOutcome,
    /// Sharded-navigator barrier-crash outcome.
    pub shard: ShardTortureOutcome,
}

impl TortureReport {
    /// Every invariant violation found, store first.
    pub fn violations(&self) -> Vec<&str> {
        self.store
            .violations
            .iter()
            .chain(self.store_tiered.violations.iter())
            .chain(self.store_leveled.violations.iter())
            .chain(self.runtime.violations.iter())
            .chain(self.shard.violations.iter())
            .map(String::as_str)
            .collect()
    }

    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.store.violations.is_empty()
            && self.store_tiered.violations.is_empty()
            && self.store_leveled.violations.is_empty()
            && self.runtime.violations.is_empty()
            && self.shard.violations.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "torture harness HARNESS_SEED={}\n\
             \x20 store:   {} mutations, {} crash cases, {} recovery double-crash cases, {} bit-flip cases\n\
             \x20 tiered:  {} mutations, {} crash cases, {} recovery double-crash cases, {} bit-flip cases\n\
             \x20 leveled: {} mutations, {} crash cases, {} recovery double-crash cases, {} bit-flip cases\n\
             \x20 runtime: {} mutations, {} crash cases, {} recovery double-crash cases\n\
             \x20 shard:   {} oracle rounds, {} barrier-crash cases, {} double-crash cases\n\
             \x20 violations: {}",
            self.seed,
            self.store.mutations,
            self.store.cases,
            self.store.recovery_cases,
            self.store.bitflip_cases,
            self.store_tiered.mutations,
            self.store_tiered.cases,
            self.store_tiered.recovery_cases,
            self.store_tiered.bitflip_cases,
            self.store_leveled.mutations,
            self.store_leveled.cases,
            self.store_leveled.recovery_cases,
            self.store_leveled.bitflip_cases,
            self.runtime.mutations,
            self.runtime.cases,
            self.runtime.recovery_cases,
            self.shard.rounds,
            self.shard.cases,
            self.shard.recovery_cases,
            self.violations().len(),
        )
    }
}

/// Run both torture passes.
///
/// `store_limit` bounds the number of store crash indices (`None` = full
/// enumeration); `runtime_samples`/`recovery_samples` bound the sampled
/// runtime crash points (a full runtime enumeration is hundreds of
/// all-vs-all executions — correct, but not something `scripts/check.sh`
/// should wait for); `shard_samples` bounds the sampled
/// `(round, commit-prefix)` barrier-crash points of the sharded engine.
pub fn run_full(
    seed: u64,
    store_limit: Option<usize>,
    runtime_samples: usize,
    recovery_samples: usize,
    shard_samples: usize,
) -> TortureReport {
    TortureReport {
        seed,
        store: run_store_torture(seed, store_limit),
        store_tiered: run_store_torture_tiered(seed, store_limit),
        store_leveled: run_store_torture_leveled(seed, store_limit),
        runtime: run_runtime_torture(seed, runtime_samples, recovery_samples),
        shard: run_shard_torture(seed, shard_samples),
    }
}
