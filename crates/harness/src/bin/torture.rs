//! Crash-point torture harness CLI.
//!
//! ```text
//! torture [--seed N] [--store-limit N] [--runtime-samples N] [--recovery-samples N] [--shard-samples N]
//! ```
//!
//! Defaults: full store crash-point enumeration, 8 sampled runtime crash
//! points, 3 runtime double-crash points, 12 sampled shard barrier-crash
//! points, seed from `HARNESS_SEED` (or the built-in default).  Exits non-zero and prints every violation — each
//! carries the `HARNESS_SEED`/crash-index pair that reproduces it.

use bioopera_harness::{run_full, seed_from_env, DEFAULT_SEED};
use std::time::Instant;

fn parse_next(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a numeric argument");
        std::process::exit(2);
    })
}

fn main() {
    let mut seed = seed_from_env(DEFAULT_SEED);
    let mut store_limit: Option<usize> = None;
    let mut runtime_samples = 8usize;
    let mut recovery_samples = 3usize;
    let mut shard_samples = 12usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = parse_next(&mut args, "--seed"),
            "--store-limit" => store_limit = Some(parse_next(&mut args, "--store-limit") as usize),
            "--runtime-samples" => {
                runtime_samples = parse_next(&mut args, "--runtime-samples") as usize
            }
            "--recovery-samples" => {
                recovery_samples = parse_next(&mut args, "--recovery-samples") as usize
            }
            "--shard-samples" => shard_samples = parse_next(&mut args, "--shard-samples") as usize,
            "--help" | "-h" => {
                println!(
                    "usage: torture [--seed N] [--store-limit N] \
                     [--runtime-samples N] [--recovery-samples N] [--shard-samples N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let t0 = Instant::now();
    let report = run_full(
        seed,
        store_limit,
        runtime_samples,
        recovery_samples,
        shard_samples,
    );
    println!("{}", report.summary());
    println!("  wall time: {:.2}s", t0.elapsed().as_secs_f64());
    if !report.is_clean() {
        for v in report.violations() {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
