//! Crash-at-the-shard-barrier torture for the sharded navigator.
//!
//! The sharded engine commits each shard's journal prefix independently
//! inside a round; the deterministic barrier only runs after every shard
//! commit has landed.  A server crash can therefore leave the store with
//! an arbitrary *subset* of the round's shard commits — some shards a
//! round ahead of others — which is exactly the state
//! [`ShardEngine::step_round_partial_commit`] manufactures on purpose.
//!
//! For a seeded sample of `(crash round, committed-shard prefix)` points
//! this pass crashes the engine mid-round, reopens the store, recovers,
//! and requires every root instance to converge to the crash-free
//! oracle's terminal status *and* final whiteboard.  History digests are
//! deliberately not compared: recovery legitimately appends its own
//! events (`server.recover`, requeues, fresh ids for re-spawned
//! subprocess children).  A fraction of cases crash a second time during
//! the recovered run to cover crash-during-recovery, and another
//! fraction suspends a sampled root *at the crashing barrier* — the
//! suspend control message is in flight (or its durable record is in
//! the committed prefix) when the server dies — covering the
//! suspend→crash→recover→resume path: whatever the crash preserved, the
//! recovered run must quiesce rather than wedge, and an operator resume
//! must drive every root to the oracle's outputs.
//!
//! [`ShardEngine::step_round_partial_commit`]: bioopera_core::ShardEngine::step_round_partial_commit

use bioopera_core::{ActivityLibrary, InstanceStatus, ProgramOutput, ShardConfig, ShardEngine};
use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::{MemDisk, Store};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Outcome of the shard-barrier torture pass.
pub struct ShardTortureOutcome {
    /// Rounds the crash-free oracle needed (the crash-point space).
    pub rounds: u64,
    /// Single-crash cases executed.
    pub cases: usize,
    /// Crash-during-recovery (double-crash) cases executed.
    pub recovery_cases: usize,
    /// Suspend-at-the-crashing-barrier cases executed.
    pub suspend_cases: usize,
    /// Invariant violations; empty on success.
    pub violations: Vec<String>,
}

const SHARDS: usize = 4;

fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("gen.list", |inputs| {
        let count = inputs.get("count").and_then(|v| v.as_int()).unwrap_or(3);
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..count))],
            1_000.0,
        ))
    });
    lib.register("work.unit", |inputs| {
        let item = inputs
            .get("item")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "work.unit needs an item".to_string())?;
        Ok(ProgramOutput::from_fields(
            [("value", Value::Int(item * item))],
            5_000.0,
        ))
    });
    lib.register("merge.sum", |inputs| {
        let total: i64 = inputs
            .get("results")
            .and_then(|v| v.as_list())
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.get_path(&["value"]).and_then(|v| v.as_int()))
                    .sum()
            })
            .unwrap_or(0);
        Ok(ProgramOutput::from_fields(
            [("total", Value::Int(total))],
            2_000.0,
        ))
    });
    lib.register("p.a", |inputs| {
        let x = inputs.get("x").and_then(|v| v.as_int()).unwrap_or(7);
        Ok(ProgramOutput::from_fields([("x", Value::Int(x))], 10.0))
    });
    lib.register("p.b", |inputs| {
        let x = inputs
            .get("x")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "missing x".to_string())?;
        Ok(ProgramOutput::from_fields([("y", Value::Int(x * 2))], 20.0))
    });
    lib
}

fn templates() -> Vec<ProcessTemplate> {
    let chain = ProcessBuilder::new("Chain")
        .whiteboard_default("x", TypeTag::Int, Value::Int(7))
        .whiteboard_field("y", TypeTag::Int)
        .activity("A", "p.a", |t| {
            t.input("x", TypeTag::Int).output("x", TypeTag::Int)
        })
        .activity("B", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("A", "B")
        .flow_from_whiteboard("x", "A", "x")
        .flow_to_task("A", "x", "B", "x")
        .flow_to_whiteboard("B", "y", "y")
        .build()
        .unwrap();
    let fan = ProcessBuilder::new("FanOut")
        .whiteboard_default("count", TypeTag::Int, Value::Int(3))
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input("count", TypeTag::Int)
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work.unit")),
            "results",
            |t| t,
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_from_whiteboard("count", "Gen", "count")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap();
    let parent = ProcessBuilder::new("Parent")
        .whiteboard_default("x", TypeTag::Int, Value::Int(21))
        .subprocess("Sub", "Chain", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .activity("After", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("Sub", "After")
        .flow_from_whiteboard("x", "Sub", "x")
        .flow_to_task("Sub", "y", "After", "x")
        .build()
        .unwrap();
    vec![chain, fan, parent]
}

fn cfg() -> ShardConfig {
    ShardConfig {
        shards: SHARDS,
        threads: 1,
        ..ShardConfig::default()
    }
}

/// Build an engine on `disk` and submit the scripted root mix.
fn boot(disk: &MemDisk) -> Result<(ShardEngine<MemDisk>, Vec<u64>), String> {
    let store = Store::open(disk.clone()).map_err(|e| format!("open: {e}"))?;
    let mut eng = ShardEngine::new(store, library(), cfg()).expect("engine");
    for t in templates() {
        eng.register_template(t)
            .map_err(|e| format!("register: {e}"))?;
    }
    let names = ["Chain", "FanOut", "Parent"];
    let mut ids = Vec::new();
    for i in 0..9u64 {
        let name = names[(i % 3) as usize];
        let mut initial = BTreeMap::new();
        match name {
            "FanOut" => {
                initial.insert("count".to_string(), Value::Int(1 + (i as i64 % 4)));
            }
            _ => {
                initial.insert("x".to_string(), Value::Int(10 + i as i64));
            }
        }
        ids.push(
            eng.submit(name, initial)
                .map_err(|e| format!("submit: {e}"))?,
        );
    }
    Ok((eng, ids))
}

type RootResult = (InstanceStatus, BTreeMap<String, Value>);

fn roots(eng: &ShardEngine<MemDisk>, ids: &[u64]) -> Result<Vec<RootResult>, String> {
    ids.iter()
        .map(|id| {
            Ok((
                eng.instance_status(*id)
                    .ok_or_else(|| format!("root {id} vanished"))?,
                eng.instance_whiteboard(*id)
                    .ok_or_else(|| format!("root {id} whiteboard vanished"))?
                    .clone(),
            ))
        })
        .collect()
}

fn compare(tag: &str, got: &[RootResult], oracle: &[RootResult]) -> Result<(), String> {
    for (i, (g, o)) in got.iter().zip(oracle).enumerate() {
        if g.0 != o.0 {
            return Err(format!(
                "{tag}: root #{i} ended {:?}, oracle {:?}",
                g.0, o.0
            ));
        }
        if g.1 != o.1 {
            return Err(format!(
                "{tag}: root #{i} whiteboard diverged: {:?} vs {:?}",
                g.1, o.1
            ));
        }
    }
    Ok(())
}

/// Recover from `disk` and drive the run to completion.  A run that
/// quiesces with suspended instances is *not* a failure — that is the
/// suspended-wedge fix working as intended — the operator resumes and
/// the run must then finish for real.
fn recover_and_finish(disk: &MemDisk) -> Result<ShardEngine<MemDisk>, String> {
    let store = Store::open(disk.clone()).map_err(|e| format!("reopen: {e}"))?;
    let mut eng =
        ShardEngine::recover(store, library(), cfg()).map_err(|e| format!("recover: {e}"))?;
    let outcome = eng
        .run_to_completion()
        .map_err(|e| format!("resume: {e}"))?;
    if !outcome.is_completed() {
        eng.resume_all().map_err(|e| format!("resume_all: {e}"))?;
        let outcome = eng
            .run_to_completion()
            .map_err(|e| format!("post-resume run: {e}"))?;
        if !outcome.is_completed() {
            return Err(format!("still quiesced after resume: {outcome:?}"));
        }
    }
    Ok(eng)
}

/// Run the shard-barrier crash torture: `samples` single-crash points and
/// (roughly) a third as many double-crash points, all derived from `seed`.
pub fn run_shard_torture(seed: u64, samples: usize) -> ShardTortureOutcome {
    let mut out = ShardTortureOutcome {
        rounds: 0,
        cases: 0,
        recovery_cases: 0,
        suspend_cases: 0,
        violations: Vec::new(),
    };

    // Crash-free oracle.
    let oracle_disk = MemDisk::new();
    let oracle = match boot(&oracle_disk).and_then(|(mut eng, ids)| {
        eng.run_to_completion()
            .map_err(|e| format!("oracle run: {e}"))?;
        out.rounds = eng.round();
        roots(&eng, &ids)
    }) {
        Ok(roots) => roots,
        Err(e) => {
            out.violations.push(format!("shard oracle failed: {e}"));
            return out;
        }
    };
    if oracle
        .iter()
        .any(|(st, _)| *st != InstanceStatus::Completed)
    {
        out.violations
            .push("shard oracle did not complete all roots".to_string());
        return out;
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_70C7);
    for case in 0..samples {
        let crash_round = rng.gen_range(0..out.rounds.max(1));
        let prefix = rng.gen_range(0..=SHARDS);
        let double_crash = case % 3 == 2;
        let suspend_at_barrier = case % 2 == 1;
        let suspend_root = rng.gen_range(0..9u64) as usize;
        let tag = format!(
            "seed={seed} case={case} round={crash_round} prefix={prefix}/{SHARDS} \
             double={double_crash} suspend={suspend_at_barrier}"
        );
        out.cases += 1;
        if suspend_at_barrier {
            out.suspend_cases += 1;
        }

        let disk = MemDisk::new();
        let res = boot(&disk).and_then(|(mut eng, ids)| {
            for _ in 0..crash_round {
                eng.step_round()
                    .map_err(|e| format!("pre-crash step: {e}"))?;
            }
            if suspend_at_barrier {
                // Park a root right before the crashing barrier: the
                // suspend control message (and, if its owner shard is in
                // the committed prefix, the durable susp/ record) dies
                // with the server in an arbitrary intermediate state.
                eng.suspend(ids[suspend_root % ids.len()])
                    .map_err(|e| format!("suspend: {e}"))?;
            }
            eng.step_round_partial_commit(prefix)
                .map_err(|e| format!("partial commit: {e}"))?;
            drop(eng);

            if double_crash {
                // Crash again mid-recovered-run before checking outputs.
                out.recovery_cases += 1;
                let store = Store::open(disk.clone()).map_err(|e| format!("reopen: {e}"))?;
                let mut eng = ShardEngine::recover(store, library(), cfg())
                    .map_err(|e| format!("recover: {e}"))?;
                let prefix2 = rng.gen_range(0..=SHARDS);
                if !eng.quiescent() {
                    eng.step_round_partial_commit(prefix2)
                        .map_err(|e| format!("second partial commit: {e}"))?;
                }
                drop(eng);
            }

            let eng = recover_and_finish(&disk)?;
            compare(&tag, &roots(&eng, &ids)?, &oracle)
        });
        if let Err(e) = res {
            out.violations.push(format!("shard torture [{tag}]: {e}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sample_is_clean() {
        let out = run_shard_torture(crate::DEFAULT_SEED, 6);
        assert!(out.rounds > 0);
        assert_eq!(out.cases, 6);
        assert!(out.recovery_cases >= 1);
        assert!(out.suspend_cases >= 1);
        assert!(
            out.violations.is_empty(),
            "violations: {:#?}",
            out.violations
        );
    }
}
