//! Engine-level crash-point torture: a small all-vs-all run through the
//! real [`Runtime`] on a fault-injected [`MemDisk`].
//!
//! The crash-free run yields the oracle digest/match count and the number
//! of disk mutations the whole execution performs (template registration,
//! instance and task persistence, awareness events, WAL compactions).  A
//! seeded sample of those mutation indices is then re-run with a crash
//! injected at exactly that point; after rebooting the disk, a brand-new
//! `Runtime` must rebuild from the surviving bytes and finish the
//! computation with results **byte-identical** to the oracle — the paper's
//! §3.4 "avoid inconsistencies in the output data after failures", now
//! checked at every sampled disk-level crash point rather than only at
//! simulated node/server fault boundaries.
//!
//! [`Runtime`]: bioopera_core::Runtime
//! [`MemDisk`]: bioopera_store::MemDisk

use bioopera_cluster::{Cluster, NodeSpec, SimTime};
use bioopera_core::{InstanceStatus, Runtime, RuntimeConfig};
use bioopera_darwin::{DatasetConfig, PamFamily, SequenceDb};
use bioopera_ocr::value::Value;
use bioopera_store::{CrashEffect, FaultPlan, MemDisk};
use bioopera_workloads::{AllVsAllConfig, AllVsAllSetup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Outcome of the runtime torture pass.
pub struct RuntimeTortureOutcome {
    /// Disk mutations of the crash-free oracle run.
    pub mutations: u64,
    /// Single-crash cases executed.
    pub cases: usize,
    /// Crash-during-recovery (double-crash) cases executed.
    pub recovery_cases: usize,
    /// Invariant violations; empty on success.
    pub violations: Vec<String>,
}

fn cluster() -> Cluster {
    Cluster::new(
        "torture",
        (0..3)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    )
}

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        // Small enough that the WAL compacts mid-run, putting the
        // snapshot/manifest/delete sequence inside the crash enumeration.
        compact_wal_bytes: 6 * 1024,
        ..Default::default()
    }
}

fn setup() -> AllVsAllSetup {
    let pam = Arc::new(PamFamily::default());
    let db = Arc::new(SequenceDb::generate(&DatasetConfig::small(16, 53), &pam));
    AllVsAllSetup::real(
        db,
        pam,
        AllVsAllConfig {
            teus: 3,
            ..Default::default()
        },
    )
}

type RunResult = (InstanceStatus, Value, Value);

/// Bring up a runtime over `disk` and drive the all-vs-all to completion.
/// On a fresh disk this submits the instance; on a recovered disk it
/// resumes whatever the rebuilt state contains (re-registering templates
/// is an idempotent put, and re-submitting only happens when the crash
/// predated the instance header reaching the store).
fn drive(disk: &MemDisk, s: &AllVsAllSetup) -> Result<RunResult, String> {
    fn fail<E: std::fmt::Display>(stage: &'static str) -> impl Fn(E) -> String {
        move |e| format!("{stage}: {e}")
    }
    let mut rt =
        Runtime::new(disk.clone(), cluster(), s.library.clone(), cfg()).map_err(fail("boot"))?;
    rt.register_template(&s.chunk_template)
        .map_err(fail("register chunk template"))?;
    rt.register_template(&s.template)
        .map_err(fail("register template"))?;
    let id = match rt
        .instances()
        .into_iter()
        .find(|(_, _, template)| template == "AllVsAll")
        .map(|(id, _, _)| id)
    {
        Some(id) => id,
        None => rt.submit("AllVsAll", s.initial()).map_err(fail("submit"))?,
    };
    rt.run_to_completion().map_err(fail("run"))?;
    let status = rt
        .instance_status(id)
        .ok_or("instance vanished after run")?;
    let wb = rt.whiteboard(id).ok_or("whiteboard vanished after run")?;
    let digest = wb.get("digest").cloned().ok_or("no digest on whiteboard")?;
    let count = wb
        .get("match_count")
        .cloned()
        .ok_or("no match_count on whiteboard")?;
    Ok((status, digest, count))
}

fn compare(got: &RunResult, oracle: &RunResult) -> Result<(), String> {
    if got.0 != InstanceStatus::Completed {
        return Err(format!("resumed run ended {:?}, not Completed", got.0));
    }
    if got.1 != oracle.1 {
        return Err(format!(
            "digest diverged from oracle: {:?} vs {:?}",
            got.1, oracle.1
        ));
    }
    if got.2 != oracle.2 {
        return Err(format!(
            "match count diverged from oracle: {:?} vs {:?}",
            got.2, oracle.2
        ));
    }
    Ok(())
}

/// One crash case: crash the disk at mutation `crash_index`, reboot,
/// recover with a fresh runtime (optionally crashing again at recovery
/// mutation `recovery_crash`) and require oracle-identical completion,
/// durable across one further reopen.
fn runtime_case(
    s: &AllVsAllSetup,
    oracle: &RunResult,
    crash_index: u64,
    effect: CrashEffect,
    recovery_crash: Option<u64>,
) -> Result<(), String> {
    let disk = MemDisk::new();
    disk.set_fault_plan(Some(FaultPlan::at_mutation(crash_index, effect)));
    if drive(&disk, s).is_ok() {
        return Err("fault plan never fired — crash index beyond workload mutations".into());
    }
    if !disk.has_crashed() {
        return Err("run failed without the injected crash firing".into());
    }
    disk.reboot();

    if let Some(r) = recovery_crash {
        disk.set_fault_plan(Some(FaultPlan::at_mutation(r, CrashEffect::Drop)));
        match drive(&disk, s) {
            // Recovery *and* completion finished before mutation `r`.
            Ok(res) => {
                disk.set_fault_plan(None);
                return compare(&res, oracle);
            }
            Err(e) if !disk.has_crashed() => {
                return Err(format!(
                    "recovery failed without the second crash firing: {e}"
                ))
            }
            Err(_) => disk.reboot(),
        }
    }

    let res = drive(&disk, s).map_err(|e| format!("recovery failed: {e}"))?;
    compare(&res, oracle)?;

    // Completion must be durable: a further reboot + rebuild finds the
    // instance Completed with the same results.
    let res = drive(&disk, s).map_err(|e| format!("post-completion reopen failed: {e}"))?;
    compare(&res, oracle)
}

/// Full runtime torture pass with `samples` single-crash points and
/// `recovery_samples` double-crash (crash-during-recovery) points, all
/// derived from `seed`.
pub fn run_runtime_torture(
    seed: u64,
    samples: usize,
    recovery_samples: usize,
) -> RuntimeTortureOutcome {
    let s = setup();
    let mut out = RuntimeTortureOutcome {
        mutations: 0,
        cases: 0,
        recovery_cases: 0,
        violations: Vec::new(),
    };

    // Crash-free oracle run; also counts the enumerable crash points.
    let disk = MemDisk::new();
    let oracle = match drive(&disk, &s) {
        Ok(res) if res.0 == InstanceStatus::Completed => res,
        Ok(res) => {
            out.violations.push(format!(
                "HARNESS_SEED={seed} oracle: crash-free run ended {:?}",
                res.0
            ));
            return out;
        }
        Err(e) => {
            out.violations.push(format!(
                "HARNESS_SEED={seed} oracle: crash-free run failed: {e}"
            ));
            return out;
        }
    };
    out.mutations = disk.mutation_count();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_D1D1_1D1D);
    // Always cover the first mutations (bootstrap/config writes) and the
    // last one (completion record); fill the rest with seeded picks.
    let mut indices = vec![0, 1, out.mutations / 2, out.mutations - 1];
    while indices.len() < samples.max(4).min(out.mutations as usize) {
        indices.push(rng.gen_range(0..out.mutations));
    }
    indices.sort_unstable();
    indices.dedup();

    for (i, &k) in indices.iter().enumerate() {
        let effect = match i % 3 {
            0 => CrashEffect::Drop,
            1 => CrashEffect::AfterApply,
            _ => CrashEffect::Torn {
                keep: rng.gen_range(1..64u64),
            },
        };
        out.cases += 1;
        let tag = format!("HARNESS_SEED={seed} runtime crash-index={k} effect={effect:?}");
        run_case(&mut out.violations, tag, || {
            runtime_case(&s, &oracle, k, effect, None)
        });
    }

    for _ in 0..recovery_samples {
        let k = rng.gen_range(0..out.mutations);
        let r = rng.gen_range(0..8u64);
        let effect = CrashEffect::Torn {
            keep: rng.gen_range(1..64u64),
        };
        out.recovery_cases += 1;
        let tag = format!(
            "HARNESS_SEED={seed} runtime crash-index={k} effect={effect:?} recovery-crash={r}"
        );
        run_case(&mut out.violations, tag, || {
            runtime_case(&s, &oracle, k, effect, Some(r))
        });
    }

    out
}

fn run_case(violations: &mut Vec<String>, tag: String, case: impl FnOnce() -> Result<(), String>) {
    match catch_unwind(AssertUnwindSafe(case)) {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => violations.push(format!("{tag}: {msg}")),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".into());
            violations.push(format!("{tag}: PANICKED: {msg}"));
        }
    }
}
