//! Store-level crash-point enumeration.
//!
//! A scripted batch workload (puts, deletes, compactions and retention
//! advances across all four spaces) is first executed crash-free to obtain
//! the oracle state and the exact number of disk mutations.  Every mutation index is then re-run as
//! a crash point under each [`CrashEffect`], optionally with a *second*
//! crash injected during the recovery replay, plus a pass of at-rest
//! bit-flip corruption of the persisted WAL (and, in tiered mode, of the
//! sorted-run files).
//!
//! The pass runs in three configurations: the untiered snapshot + WAL
//! engine ([`run_store_torture`]), the tiered engine under a deliberately
//! tiny memtable budget ([`run_store_torture_tiered`]), whose probe trace
//! pulls every spill and run-merge disk write — run-file writes, manifest
//! commits, stale WAL/snapshot/run deletions — into the enumeration, and
//! the leveled engine under squeezed level budgets
//! ([`run_store_torture_leveled`]), which adds level-merge commits,
//! multi-run splits, retention-watermark advances and victim GC to the
//! enumerated mutation trace.
//!
//! After every injected fault the invariants are:
//!
//! * reopening the store never panics;
//! * every **acknowledged** batch is fully present after recovery;
//! * the in-flight batch is all-or-nothing — the recovered state is a
//!   whole-batch prefix of the script, never a partial batch;
//! * resuming the script from the recovered prefix converges on a state
//!   byte-identical to the crash-free oracle, and that state survives one
//!   further clean reopen;
//! * a bit flip in the persisted log yields either a whole-batch prefix
//!   (torn tail) or a typed corruption error — never a panic, never a
//!   partial batch.

use bioopera_store::{
    Batch, CrashEffect, Disk, FaultPlan, MemDisk, Space, Store, StoreError, TieredPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Reference model of the logical store contents: `(space, key) -> value`.
type Model = BTreeMap<(u8, String), Vec<u8>>;

/// Tiny tiered policy for the tiered torture pass: the memtable budget is
/// small enough that the scripted workload spills every few batches, and
/// the merge threshold low enough that run compactions fire repeatedly —
/// so run-file writes, manifest updates and stale-file deletions all land
/// inside the crash-point enumeration.
pub fn tiny_tiered_policy() -> TieredPolicy {
    TieredPolicy {
        memtable_budget_bytes: 512,
        run_merge_threshold: 2,
        ..TieredPolicy::default()
    }
}

/// Tiny *leveled* policy for the leveled torture pass: on top of the
/// tiny memtable budget, the L1 byte budget is squeezed so push-downs
/// cascade into L2+ — level-merge commits, multi-run splits and victim
/// GC all land inside the crash-point enumeration.
pub fn tiny_leveled_policy() -> TieredPolicy {
    TieredPolicy {
        memtable_budget_bytes: 512,
        run_merge_threshold: 2,
        level_base_bytes: 1024,
        level_growth: 2,
        level_run_bytes: 768,
        ..TieredPolicy::default()
    }
}

/// One scripted operation.
#[derive(Debug, Clone)]
pub enum ScriptOp {
    /// Insert/replace a key.
    Put {
        /// Space tag (0..=3).
        space: u8,
        /// Key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// Space tag (0..=3).
        space: u8,
        /// Key.
        key: String,
    },
}

/// One scripted step.
#[derive(Debug, Clone)]
pub enum Step {
    /// Apply one atomic batch; counts as acknowledged only on `Ok`.
    Apply(Vec<ScriptOp>),
    /// Snapshot the state and truncate the WAL.
    Compact,
    /// Advance the retention watermark: retire every record of `space`
    /// with `start <= key < below` and drop all future writes below the
    /// watermark.  Commits through a single manifest mutation.
    Retain {
        /// Space tag (0..=3).
        space: u8,
        /// Inclusive lower bound of the retired window.
        start: String,
        /// Exclusive upper bound of the retired window.
        below: String,
    },
}

/// Outcome of the store torture pass.
pub struct StoreTortureOutcome {
    /// Disk mutations of the crash-free probe run (= enumerable crash points).
    pub mutations: u64,
    /// Single-crash cases executed.
    pub cases: usize,
    /// Crash-during-recovery (double-crash) cases executed.
    pub recovery_cases: usize,
    /// At-rest bit-flip cases executed.
    pub bitflip_cases: usize,
    /// Invariant violations; empty on success.  Every entry embeds the
    /// `HARNESS_SEED` and crash index needed to reproduce it.
    pub violations: Vec<String>,
}

/// Deterministic scripted workload: ~24 batches of 1–4 operations over a
/// small key universe in all four spaces, with two compactions and two
/// retention advances landing mid-script so crash points inside
/// `compact()` and `retain_below()` — including the widening of an
/// existing watermark hull — are part of the enumeration.
pub fn scripted_workload(seed: u64) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<String> = (0..12).map(|i| format!("torture/k{i:02}")).collect();
    let mut steps = Vec::new();
    for b in 0..24u64 {
        let n_ops = rng.gen_range(1..=4usize);
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let space = rng.gen_range(0..4u64) as u8;
            let key = keys[rng.gen_range(0..keys.len())].clone();
            if rng.gen_range(0..10u64) < 8 {
                let len = rng.gen_range(0..32usize);
                let value: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
                ops.push(ScriptOp::Put { space, key, value });
            } else {
                ops.push(ScriptOp::Delete { space, key });
            }
        }
        steps.push(Step::Apply(ops));
        if b == 7 || b == 15 {
            steps.push(Step::Compact);
        }
        if b == 11 {
            steps.push(Step::Retain {
                space: 3,
                start: "torture/k00".into(),
                below: "torture/k03".into(),
            });
        }
        if b == 19 {
            // Widens the existing hull: subsequent batches keep writing
            // keys below the watermark, which must stay invisible.
            steps.push(Step::Retain {
                space: 3,
                start: "torture/k02".into(),
                below: "torture/k05".into(),
            });
        }
    }
    steps
}

fn to_batch(ops: &[ScriptOp]) -> Batch {
    let mut b = Batch::new();
    for op in ops {
        match op {
            ScriptOp::Put { space, key, value } => {
                b.put(
                    Space::from_u8(*space).expect("script space tag"),
                    key.clone(),
                    value.clone(),
                );
            }
            ScriptOp::Delete { space, key } => {
                b.delete(
                    Space::from_u8(*space).expect("script space tag"),
                    key.clone(),
                );
            }
        }
    }
    b
}

/// Per-space retention watermark hulls, mirrored from the engine.
type Retain = [Option<(String, String)>; 4];

fn retained(retain: &Retain, space: u8, key: &str) -> bool {
    match &retain[space as usize] {
        Some((start, below)) => start.as_str() <= key && key < below.as_str(),
        None => false,
    }
}

/// Reference interpreter for the script: the logical contents plus the
/// retention watermark, with writes below the watermark dropped exactly as
/// the engine drops them at apply (and at WAL replay).
#[derive(Clone, Default)]
struct ScriptState {
    data: Model,
    retain: Retain,
}

impl ScriptState {
    fn apply(&mut self, ops: &[ScriptOp]) {
        for op in ops {
            match op {
                ScriptOp::Put { space, key, value } => {
                    if !retained(&self.retain, *space, key) {
                        self.data.insert((*space, key.clone()), value.clone());
                    }
                }
                ScriptOp::Delete { space, key } => {
                    self.data.remove(&(*space, key.clone()));
                }
            }
        }
    }

    fn retain_below(&mut self, space: u8, start: &str, below: &str) {
        if below <= start {
            return;
        }
        let hull = match &self.retain[space as usize] {
            Some((s, b)) => (
                s.as_str().min(start).to_string(),
                b.as_str().max(below).to_string(),
            ),
            None => (start.to_string(), below.to_string()),
        };
        let doomed: Vec<(u8, String)> = self
            .data
            .range((space, hull.0.clone())..(space, hull.1.clone()))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            self.data.remove(k);
        }
        self.retain[space as usize] = Some(hull);
    }

    /// The contents with every record covered by `retain` removed — the
    /// state a WAL-truncated replay converges on when a *later* retention
    /// watermark already sits in the durable manifest.
    fn filtered(&self, retain: &Retain) -> Model {
        self.data
            .iter()
            .filter(|((space, key), _)| !retained(retain, *space, key))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Model states after every script step, tagged with the number of batches
/// acknowledged by that point.  Compactions are state-identities; retention
/// steps change state *without* advancing the batch count, so a crash
/// inside `retain_below` legitimately recovers to either the entry before
/// or after the retention at the same acknowledged count.
fn script_states(steps: &[Step]) -> Vec<(usize, ScriptState)> {
    let mut states = vec![(0usize, ScriptState::default())];
    let mut cur = ScriptState::default();
    let mut acked = 0usize;
    for step in steps {
        match step {
            Step::Apply(ops) => {
                cur.apply(ops);
                acked += 1;
                states.push((acked, cur.clone()));
            }
            Step::Compact => {}
            Step::Retain {
                space,
                start,
                below,
            } => {
                cur.retain_below(*space, start, below);
                states.push((acked, cur.clone()));
            }
        }
    }
    states
}

fn dump(store: &Store<MemDisk>) -> Result<Model, String> {
    let mut m = Model::new();
    for space in Space::ALL {
        for (k, v) in store
            .scan_prefix(space, "")
            .map_err(|e| format!("scan failed: {e}"))?
        {
            m.insert((space as u8, k), v.to_vec());
        }
    }
    Ok(m)
}

/// Crash-free probe: runs the script and returns the mutation count.
fn probe(steps: &[Step], tiered: Option<TieredPolicy>) -> u64 {
    let disk = MemDisk::new();
    let store = Store::open_with(disk.clone(), tiered).expect("probe open");
    for step in steps {
        match step {
            Step::Apply(ops) => store.apply(to_batch(ops)).expect("probe apply"),
            Step::Compact => store.compact().expect("probe compact"),
            Step::Retain {
                space,
                start,
                below,
            } => {
                store
                    .retain_below(
                        Space::from_u8(*space).expect("script space tag"),
                        start,
                        below,
                    )
                    .map(|_| ())
                    .expect("probe retain");
            }
        }
    }
    disk.mutation_count()
}

/// One crash case: crash at `crash_index` with `effect`, optionally crash
/// again at recovery mutation `recovery_crash`, then verify every
/// durability invariant.  Returns `Err(description)` on the first
/// violation.
fn store_case(
    steps: &[Step],
    states: &[(usize, ScriptState)],
    crash_index: u64,
    effect: CrashEffect,
    recovery_crash: Option<u64>,
    tiered: Option<TieredPolicy>,
) -> Result<(), String> {
    let disk = MemDisk::new();
    disk.set_fault_plan(Some(FaultPlan::at_mutation(crash_index, effect)));

    let mut acked = 0usize;
    let mut crashed = false;
    match Store::open_with(disk.clone(), tiered) {
        Ok(store) => {
            for step in steps {
                let res = match step {
                    Step::Apply(ops) => store.apply(to_batch(ops)).map(|()| true),
                    Step::Compact => store.compact().map(|()| false),
                    Step::Retain {
                        space,
                        start,
                        below,
                    } => store
                        .retain_below(
                            Space::from_u8(*space).expect("script space tag"),
                            start,
                            below,
                        )
                        .map(|_| false),
                };
                match res {
                    Ok(true) => acked += 1,
                    Ok(false) => {}
                    Err(_) => {
                        crashed = true;
                        break;
                    }
                }
            }
            if crashed {
                // The surviving handle must be poisoned and refuse all work.
                if !store.is_poisoned() {
                    return Err("store handle not poisoned after crash".into());
                }
                if !matches!(
                    store.get(Space::Instance, "torture/k00"),
                    Err(StoreError::Poisoned)
                ) {
                    return Err("poisoned store served a read".into());
                }
            }
        }
        // Crash during the very first manifest write: nothing acknowledged.
        Err(_) => crashed = true,
    }
    if !crashed {
        return Err("fault plan never fired — crash index beyond workload mutations".into());
    }

    disk.reboot();

    // Optionally crash a second time while recovery itself is mutating the
    // disk (torn-tail truncation, stale-file GC).  Either recovery finishes
    // before the armed index (then disarm), or it crashes and a second
    // reboot + reopen must still succeed.
    if let Some(r) = recovery_crash {
        disk.set_fault_plan(Some(FaultPlan::at_mutation(r, CrashEffect::Drop)));
        match Store::open_with(disk.clone(), tiered) {
            Ok(_) => disk.set_fault_plan(None),
            Err(_) => disk.reboot(),
        }
    }

    let store = Store::open_with(disk.clone(), tiered)
        .map_err(|e| format!("reopen after crash failed: {e}"))?;
    let got = dump(&store)?;

    // Durability: all acknowledged batches present.  Atomicity: the state
    // is a whole-step prefix of the script at the acknowledged batch count
    // — only the single in-flight batch (write completed, ack lost) or the
    // in-flight retention advance (manifest committed, ack lost) may
    // appear beyond it.  Never a partial batch, never a partial retention.
    let recovered = states
        .iter()
        .filter(|(a, _)| *a == acked || *a == acked + 1)
        .find(|(_, s)| s.data == got)
        .map(|(a, _)| *a)
        .ok_or_else(|| {
            format!(
                "recovered state is no whole-step prefix at {acked} or {} acknowledged batches",
                acked + 1
            )
        })?;

    // Resume the script from the first batch the recovered state lacks;
    // compactions and retention advances re-run unconditionally (both are
    // idempotent on already-covered state), so the resumed run must
    // converge byte-identically on the oracle.
    let mut batch_no = 0usize;
    for step in steps {
        match step {
            Step::Apply(ops) => {
                batch_no += 1;
                if batch_no <= recovered {
                    continue;
                }
                store
                    .apply(to_batch(ops))
                    .map_err(|e| format!("resume apply of batch {batch_no} failed: {e}"))?;
            }
            Step::Compact => store
                .compact()
                .map_err(|e| format!("resume compact failed: {e}"))?,
            Step::Retain {
                space,
                start,
                below,
            } => {
                store
                    .retain_below(
                        Space::from_u8(*space).expect("script space tag"),
                        start,
                        below,
                    )
                    .map_err(|e| format!("resume retain failed: {e}"))?;
            }
        }
    }
    let oracle = &states.last().expect("non-empty states").1.data;
    if dump(&store)? != *oracle {
        return Err("resumed run diverged from the crash-free oracle".into());
    }

    // The converged state must survive one further clean reopen.
    drop(store);
    let store = Store::open_with(disk, tiered).map_err(|e| format!("final reopen failed: {e}"))?;
    if dump(&store)? != *oracle {
        return Err("converged state lost across a clean reopen".into());
    }
    Ok(())
}

/// One at-rest bit-flip case: run a crash-free prefix of the script, flip
/// one bit of the persisted WAL, and reopen.  The outcome must be a
/// whole-batch prefix (torn tail) or a typed corruption error.
fn bitflip_case(
    steps: &[Step],
    states: &[(usize, ScriptState)],
    prefix_steps: usize,
    offset_pick: u64,
    bit: u32,
    tiered: Option<TieredPolicy>,
) -> Result<(), String> {
    let disk = MemDisk::new();
    let store = Store::open_with(disk.clone(), tiered).map_err(|e| format!("open failed: {e}"))?;
    let mut batches_done = 0usize;
    let mut final_state = ScriptState::default();
    for step in steps.iter().take(prefix_steps) {
        match step {
            Step::Apply(ops) => {
                store
                    .apply(to_batch(ops))
                    .map_err(|e| format!("workload apply failed: {e}"))?;
                batches_done += 1;
                final_state.apply(ops);
            }
            Step::Compact => store
                .compact()
                .map_err(|e| format!("workload compact failed: {e}"))?,
            Step::Retain {
                space,
                start,
                below,
            } => {
                store
                    .retain_below(
                        Space::from_u8(*space).expect("script space tag"),
                        start,
                        below,
                    )
                    .map_err(|e| format!("workload retain failed: {e}"))?;
                final_state.retain_below(*space, start, below);
            }
        }
    }
    drop(store);

    // Corruptible files: the live WAL and (in tiered mode) sorted runs.
    // Right after a compaction the new WAL does not exist yet (it is
    // created lazily by the next append) — the run files are then the only
    // persisted payload.
    let mut candidates: Vec<String> = disk
        .list()
        .map_err(|e| format!("list failed: {e}"))?
        .into_iter()
        .filter(|n| n.starts_with("wal-") || n.starts_with("run-"))
        .collect();
    candidates.sort();
    candidates.retain(|n| disk.file_len(n).unwrap_or(0) > 0);
    if candidates.is_empty() {
        return Ok(());
    }
    let victim = &candidates[(offset_pick % candidates.len() as u64) as usize];
    let len = disk.file_len(victim).unwrap_or(0);
    let offset = ((offset_pick / candidates.len() as u64) % len as u64) as usize;
    if !disk.corrupt_byte(victim, offset, 1u8 << (bit % 8)) {
        return Err(format!("corrupt_byte refused offset {offset} of {victim}"));
    }

    match Store::open_with(disk.clone(), tiered) {
        Ok(store) => {
            // A flipped run data block is only read lazily, so the
            // corruption may surface as a typed error at scan time rather
            // than at open; both are acceptable, a panic or a silently
            // wrong state is not.
            let mut got = Model::new();
            let mut typed_corruption = false;
            'spaces: for space in Space::ALL {
                match store.scan_prefix(space, "") {
                    Ok(kvs) => {
                        for (k, v) in kvs {
                            got.insert((space as u8, k), v.to_vec());
                        }
                    }
                    Err(StoreError::Corruption(_)) => {
                        typed_corruption = true;
                        break 'spaces;
                    }
                    Err(e) => {
                        return Err(format!(
                            "unexpected scan error after flipping bit {bit} at byte {offset} \
                             of {victim}: {e}"
                        ))
                    }
                }
            }
            // A WAL flip may truncate batches, but the retention watermark
            // lives in the (uncorrupted) manifest and keeps filtering the
            // replay — so acceptable states are whole-step prefixes viewed
            // through the *final* committed watermark.
            let acceptable = states
                .iter()
                .filter(|(a, _)| *a <= batches_done)
                .any(|(_, s)| s.filtered(&final_state.retain) == got);
            if !typed_corruption && !acceptable {
                return Err(format!(
                    "state after flipping bit {bit} at byte {offset} of {victim} \
                     is not a whole-batch prefix"
                ));
            }
        }
        Err(StoreError::Corruption(_)) => {} // typed, acceptable
        Err(e) => {
            return Err(format!(
                "unexpected error kind after flipping bit {bit} at byte {offset} of {victim}: {e}"
            ))
        }
    }
    Ok(())
}

/// Run a case through `catch_unwind` so a panicking recovery path becomes
/// a reported violation (with its reproduction tag) instead of aborting
/// the whole enumeration.
fn run_case(violations: &mut Vec<String>, tag: String, case: impl FnOnce() -> Result<(), String>) {
    match catch_unwind(AssertUnwindSafe(case)) {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => violations.push(format!("{tag}: {msg}")),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".into());
            violations.push(format!("{tag}: PANICKED: {msg}"));
        }
    }
}

/// Full store torture pass over the untiered (snapshot + WAL) engine.
///
/// With `limit == None` every mutation index of the probe run becomes a
/// crash point; otherwise a seeded sample of `limit` indices (always
/// including the first and last) is used.
pub fn run_store_torture(seed: u64, limit: Option<usize>) -> StoreTortureOutcome {
    run_store_torture_with(seed, limit, None)
}

/// Full store torture pass over the **tiered** engine.
///
/// Same scripted workload and invariants as [`run_store_torture`], but the
/// store runs under [`tiny_tiered_policy`], so the crash-free probe's
/// mutation trace — and therefore the enumerated crash points — includes
/// every disk write of memtable spills (run write, manifest commit,
/// stale WAL/snapshot deletion) and of run merge compactions (merged-run
/// write, manifest rewrite, input-run deletions).  Bit-flip cases corrupt
/// sorted-run files as well as the WAL.
pub fn run_store_torture_tiered(seed: u64, limit: Option<usize>) -> StoreTortureOutcome {
    run_store_torture_with(seed, limit, Some(tiny_tiered_policy()))
}

/// Full store torture pass over the **leveled** engine.
///
/// Same scripted workload and invariants again, but under
/// [`tiny_leveled_policy`]: level byte budgets are squeezed so L0 floods
/// push runs into L1 and beyond during the script, adding level-merge run
/// writes, manifest commits with `lrun` lines, input-run GC and
/// retention-watermark advances to the enumerated crash points.
pub fn run_store_torture_leveled(seed: u64, limit: Option<usize>) -> StoreTortureOutcome {
    run_store_torture_with(seed, limit, Some(tiny_leveled_policy()))
}

fn run_store_torture_with(
    seed: u64,
    limit: Option<usize>,
    tiered: Option<TieredPolicy>,
) -> StoreTortureOutcome {
    let steps = scripted_workload(seed);
    let states = script_states(&steps);
    let mutations = probe(&steps, tiered);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);

    let crash_indices: Vec<u64> = match limit {
        None => (0..mutations).collect(),
        Some(n) => {
            let mut picked = vec![0, mutations.saturating_sub(1)];
            while picked.len() < n.min(mutations as usize) {
                picked.push(rng.gen_range(0..mutations));
            }
            picked.sort_unstable();
            picked.dedup();
            picked
        }
    };

    let mut out = StoreTortureOutcome {
        mutations,
        cases: 0,
        recovery_cases: 0,
        bitflip_cases: 0,
        violations: Vec::new(),
    };

    for &k in &crash_indices {
        let torn_keep = rng.gen_range(2..48u64);
        let effects = [
            CrashEffect::Drop,
            CrashEffect::Torn { keep: 1 },
            CrashEffect::Torn { keep: torn_keep },
            CrashEffect::AfterApply,
        ];
        for effect in effects {
            out.cases += 1;
            run_case(
                &mut out.violations,
                format!(
                    "HARNESS_SEED={seed} tiered={} crash-index={k} effect={effect:?}",
                    tiered.is_some()
                ),
                || store_case(&steps, &states, k, effect, None, tiered),
            );
        }
        // Second crash during the recovery replay/GC of the torn-write image.
        for r in 0..3u64 {
            out.recovery_cases += 1;
            let effect = CrashEffect::Torn { keep: torn_keep };
            run_case(
                &mut out.violations,
                format!(
                    "HARNESS_SEED={seed} tiered={} crash-index={k} effect={effect:?} \
                     recovery-crash={r}",
                    tiered.is_some()
                ),
                || store_case(&steps, &states, k, effect, Some(r), tiered),
            );
        }
    }

    let n_flips = match limit {
        None => 48,
        Some(n) => n.max(8),
    };
    for _ in 0..n_flips {
        out.bitflip_cases += 1;
        let prefix_steps = rng.gen_range(1..=steps.len());
        let offset_pick = rng.gen_range(0..u64::MAX);
        let bit = rng.gen_range(0..8u64) as u32;
        run_case(
            &mut out.violations,
            format!(
                "HARNESS_SEED={seed} tiered={} bit-flip prefix-steps={prefix_steps} \
                 offset-pick={offset_pick} bit={bit}",
                tiered.is_some()
            ),
            || bitflip_case(&steps, &states, prefix_steps, offset_pick, bit, tiered),
        );
    }

    out
}
