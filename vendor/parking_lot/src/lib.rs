//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no poison
//! `Result`).  Poisoned std locks are recovered into their inner guards —
//! matching `parking_lot`'s behavior of not propagating panics.

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose lock methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
