//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! **generate-only** property harness: strategies are sampling functions,
//! cases are driven by a deterministic per-test RNG (seeded from the test
//! name, so CI failures reproduce locally), and failures report the inputs
//! of the failing case.  There is **no shrinking** — a failing case prints
//! the raw inputs that triggered it.
//!
//! Covered surface: `proptest!` with optional `#![proptest_config(...)]`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!` (plain and weighted), `Just`, `any::<T>()`, integer and
//! float range strategies, regex-literal string strategies (char classes
//! with `{m,n}` quantifiers), tuple strategies, `prop::collection::{vec,
//! btree_map}`, `prop::sample::{select, Index}`, `prop::bool::weighted`,
//! and the `Strategy` combinators `prop_map`, `prop_flat_map`,
//! `prop_filter`, `prop_recursive`, `boxed`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

// ---------------------------------------------------------------------------
// Core strategy machinery
// ---------------------------------------------------------------------------

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| f(self.generate(rng))))
    }

    /// Build a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized + 'static,
        S: Strategy + 'static,
        F: Fn(Self::Value) -> S + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| f(self.generate(rng)).generate(rng)))
    }

    /// Discard generated values failing `pred` (regenerates; panics if the
    /// predicate looks unsatisfiable).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let whence = whence.into();
        BoxedStrategy(Arc::new(move |rng| {
            for _ in 0..10_000 {
                let v = self.generate(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter({whence}): predicate never satisfied after 10000 draws");
        }))
    }

    /// Recursive strategies: `self` is the leaf; `branch` builds one level
    /// from the strategy for the level below.  Depth is bounded eagerly.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = union(vec![(1, leaf.clone()), (2, branch(level).boxed())]);
        }
        level
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Weighted union of strategies (used by `prop_oneof!`).
#[doc(hidden)]
pub fn union<T: Debug + 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u32 = arms.iter().map(|(w, _)| *w).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy(Arc::new(move |rng| {
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!()
    }))
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary + 'static>() -> BoxedStrategy<A> {
    BoxedStrategy(Arc::new(|rng| A::arbitrary(rng)))
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced; exotic values are not needed here.
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

// ---------------------------------------------------------------------------
// Range / literal strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String strategies from a small regex subset: literal characters,
/// `[...]` character classes (with `a-z` ranges), and `{n}` / `{m,n}` /
/// `?` / `*` / `+` quantifiers.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen(self, rng)
    }
}

fn regex_gen(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in strategy regex {pattern:?}"))
                    + i;
                let body = &chars[i + 1..close];
                i = close + 1;
                expand_class(body, pattern)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling `\\` in strategy regex {pattern:?}"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in strategy regex {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().unwrap_or(0),
                        hi.trim().parse::<usize>().unwrap_or(8),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "bad range in strategy regex {pattern:?}");
            for c in lo..=hi {
                set.push(char::from_u32(c).unwrap());
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(
        !set.is_empty(),
        "empty char class in strategy regex {pattern:?}"
    );
    set
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Accepted size arguments for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// `Vec` strategy with element strategy and size.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
        where
            S: Strategy + 'static,
        {
            let size = size.into();
            BoxedStrategy(Arc::new(move |rng| {
                let n = rng.gen_range(size.min..=size.max);
                (0..n).map(|_| element.generate(rng)).collect()
            }))
        }

        /// `BTreeMap` strategy (duplicate keys collapse, as upstream).
        pub fn btree_map<K, V>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BoxedStrategy<std::collections::BTreeMap<K::Value, V::Value>>
        where
            K: Strategy + 'static,
            V: Strategy + 'static,
            K::Value: Ord,
        {
            let size = size.into();
            BoxedStrategy(Arc::new(move |rng| {
                let n = rng.gen_range(size.min..=size.max);
                (0..n)
                    .map(|_| (key.generate(rng), value.generate(rng)))
                    .collect()
            }))
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Uniformly select one of the given values.
        pub fn select<T: Clone + Debug + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
            assert!(!options.is_empty(), "prop::sample::select on empty vec");
            BoxedStrategy(Arc::new(move |rng| {
                options[rng.gen_range(0..options.len())].clone()
            }))
        }

        /// An index usable against any slice length (`any::<Index>()`).
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete length.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.gen())
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::*;

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> BoxedStrategy<bool> {
            BoxedStrategy(Arc::new(move |rng| rng.gen_bool(p)))
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
    /// Unused (no shrinking); kept for struct-update compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; draw again.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Debug-format helper used by the `proptest!` macro.
#[doc(hidden)]
pub fn __debug_ref<T: Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// FNV-1a over the test name: a stable per-test seed, so failures
/// reproduce across runs and machines.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: used by the expansion of `proptest!`.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, case: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {passed} passing cases:\n{msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let __inputs: String = [
                    $(format!(concat!(stringify!($arg), " = {}"),
                              $crate::__debug_ref(&$arg))),*
                ].join(", ");
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome.map_err(|e| match e {
                    $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                        format!("{msg}\n  inputs: {}", __inputs)),
                    other => other,
                })
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left:  {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left:  {:?}\n  right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Reject the current inputs and draw again.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[A-Za-z][A-Za-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples(a in 0usize..10, pair in (0i64..5, 0.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 5 && pair.1 < 1.0);
        }

        #[test]
        fn collections_and_oneof(
            v in prop::collection::vec(0u8..4, 0..6usize),
            pick in prop_oneof![1 => Just(1u32), 3 => Just(2u32)],
            flag in prop::bool::weighted(0.5),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(pick == 1 || pick == 2);
            prop_assume!(v.len() < 32);
            let _ = flag;
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn combinators_compose(
            s in prop::sample::select(vec!["a", "bb", "ccc"])
                .prop_map(|s| s.len())
                .prop_filter("nonzero", |n| *n > 0),
        ) {
            prop_assert!((1..=3).contains(&s));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let strat = prop::collection::vec(0u32..1000, 5usize);
        let mut a = crate::TestRng::seed_from_u64(99);
        let mut b = crate::TestRng::seed_from_u64(99);
        assert_eq!(
            crate::Strategy::generate(&strat, &mut a),
            crate::Strategy::generate(&strat, &mut b)
        );
    }
}
