//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls targeting the
//! stand-in serde's `Content` tree.  The input is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote` — those are unavailable
//! offline) and the impls are emitted as source text.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, tuple and struct variants
//!
//! `#[serde(...)]` attributes are accepted and ignored — the encoding is
//! internally consistent, not upstream-wire-compatible.  Generic types are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Shape {
    /// No payload (`struct S;` / `Variant`).
    Unit,
    /// Parenthesised payload with this many fields.
    Tuple(usize),
    /// Braced payload with these field names.
    Named(Vec<String>),
}

/// Parsed derive input.
enum TypeDef {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, ser_impl)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, de_impl)
}

fn expand(input: TokenStream, gen: fn(&TypeDef) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(def) => gen(&def)
            .parse()
            .unwrap_or_else(|e| error(&format!("generated impl failed to parse: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut Tokens) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens until a comma at angle-bracket depth zero (consumes the
/// comma).  Groups are atomic in a token stream, so only `<`/`>` puncts
/// need depth tracking (e.g. `BTreeMap<String, Value>`).
fn skip_type_until_comma(iter: &mut Tokens) {
    let mut depth: i32 = 0;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count the fields of a tuple payload, honouring generics and a possible
/// trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut count = 0;
    let mut in_field = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    in_field = true;
                }
                '>' => {
                    depth -= 1;
                    in_field = true;
                }
                ',' if depth == 0 => {
                    count += 1;
                    in_field = false;
                }
                _ => in_field = true,
            },
            _ => in_field = true,
        }
    }
    if in_field {
        count += 1;
    }
    count
}

/// Collect the field names of a braced (named-field) payload.
fn named_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => {
                names.push(name.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field name, found {other:?}")),
                }
                skip_type_until_comma(&mut iter);
            }
            None => return Ok(names),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
}

/// Parse the variants of an enum body.
fn enum_variants(stream: TokenStream) -> Result<Vec<(String, Shape)>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => return Ok(variants),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = named_field_names(g.stream())?;
                iter.next();
                Shape::Named(names)
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        // Skip to the separating comma (also skips `= discriminant`).
        skip_type_until_comma(&mut iter);
    }
}

fn parse_input(input: TokenStream) -> Result<TypeDef, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize/Deserialize) on generic type `{name}` is not supported \
                 by the offline serde stand-in"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(named_field_names(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(TypeDef::Struct { name, shape })
        }
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(TypeDef::Enum {
                name,
                variants: enum_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_variables, unreachable_patterns, clippy::all)]\n";

fn ser_impl(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", pairs.join(", "))
                }
            };
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ {body} }}\n}}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => {
                        format!("{name}::{v} => ::serde::Content::Str({v:?}.to_string()),")
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Seq(vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_content({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {fields} }} => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Map(vec![{pairs}]))]),",
                            fields = fields.join(", "),
                            pairs = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ match self {{ {arms} }} }}\n}}",
                arms = arms.join("\n")
            )
        }
    }
}

fn de_impl(def: &TypeDef) -> String {
    let body = match def {
        TypeDef::Struct { name, shape } => match shape {
            Shape::Unit => format!("let _ = c; Ok({name})"),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_content(items.get({i}).ok_or_else(|| \
                             ::serde::DeError::custom(\"sequence too short for `{name}`\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match c {{\n\
                     ::serde::Content::Seq(items) => Ok({name}({items})),\n\
                     other => Err(::serde::DeError::custom(format!(\
                     \"expected sequence for `{name}`, found {{other:?}}\"))),\n}}",
                    items = items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__field(entries, {f:?})?"))
                    .collect();
                format!(
                    "match c {{\n\
                     ::serde::Content::Map(entries) => Ok({name} {{ {inits} }}),\n\
                     other => Err(::serde::DeError::custom(format!(\
                     \"expected map for `{name}`, found {{other:?}}\"))),\n}}",
                    inits = inits.join(", ")
                )
            }
        },
        TypeDef::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_content(items.get({i}).ok_or_else(|| \
                                     ::serde::DeError::custom(\"sequence too short for `{name}::{v}`\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => match payload {{\n\
                             ::serde::Content::Seq(items) => Ok({name}::{v}({items})),\n\
                             other => Err(::serde::DeError::custom(format!(\
                             \"expected sequence payload for `{name}::{v}`, found {{other:?}}\"))),\n}},",
                            items = items.join(", ")
                        ))
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__field(fields, {f:?})?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match payload {{\n\
                             ::serde::Content::Map(fields) => Ok({name}::{v} {{ {inits} }}),\n\
                             other => Err(::serde::DeError::custom(format!(\
                             \"expected map payload for `{name}::{v}`, found {{other:?}}\"))),\n}},",
                            inits = inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown unit variant `{{other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {payload_arms}\n\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{other}}` of `{name}`\"))),\n}}\n}},\n\
                 other => Err(::serde::DeError::custom(format!(\
                 \"expected variant encoding for `{name}`, found {{other:?}}\"))),\n}}",
                unit_arms = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n")
            )
        }
    };
    let name = match def {
        TypeDef::Struct { name, .. } | TypeDef::Enum { name, .. } => name,
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}"
    )
}
