//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte buffers ([`Bytes`]), a growable builder ([`BytesMut`]), and the
//! [`Buf`]/[`BufMut`] cursor traits — covering exactly the surface the
//! storage engine uses (little-endian frame encoding and decoding).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Wrap a static slice (copied; cheapness is not required here).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range of the remaining bytes as a new `Bytes` (zero-copy).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

impl std::ops::Index<std::ops::RangeTo<usize>> for Bytes {
    type Output = [u8];
    fn index(&self, r: std::ops::RangeTo<usize>) -> &[u8] {
        &self.as_slice()[r]
    }
}

impl std::ops::Index<std::ops::RangeFrom<usize>> for Bytes {
    type Output = [u8];
    fn index(&self, r: std::ops::RangeFrom<usize>) -> &[u8] {
        &self.as_slice()[r]
    }
}

impl std::ops::Index<std::ops::Range<usize>> for Bytes {
    type Output = [u8];
    fn index(&self, r: std::ops::Range<usize>) -> &[u8] {
        &self.as_slice()[r]
    }
}

impl std::ops::Index<usize> for Bytes {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.as_slice()[i]
    }
}

/// Read-cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// True while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(buf)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(buf)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write-cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_frames() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(&r[..3], b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_slice_is_zero_copy_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }
}
