//! Offline stand-in for `criterion`: a small wall-clock benchmarking
//! harness exposing the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `Bencher::iter` and
//! `Bencher::iter_batched`).
//!
//! Each benchmark is calibrated to a target measurement time, then the
//! median of several samples is reported as ns/iter (plus derived
//! throughput).  No statistical analysis, plots or HTML reports.

use std::time::{Duration, Instant};

/// How batched setup cost is amortized (accepted, not differentiated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run on every iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Harness entry point; holds the measurement configuration.
pub struct Criterion {
    measurement_time: Duration,
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            samples: 5,
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self, id, None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with units per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: start at one iteration, grow until a sample takes a
    // meaningful slice of the budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let per_sample = c.measurement_time / c.samples;
    loop {
        f(&mut bencher);
        if bencher.elapsed >= per_sample / 4 || bencher.iters >= 1 << 30 {
            break;
        }
        let est = bencher.elapsed.as_nanos().max(1) as u64;
        let target = per_sample.as_nanos() as u64;
        let scale = (target / est).clamp(2, 1 << 10);
        bencher.iters = bencher.iters.saturating_mul(scale);
    }
    // Measure: median of the samples.
    let mut per_iter: Vec<f64> = (0..c.samples)
        .map(|_| {
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = |units: u64| {
        let per_sec = units as f64 * 1.0e9 / median;
        if per_sec >= 1.0e9 {
            format!("{:.3} G", per_sec / 1.0e9)
        } else if per_sec >= 1.0e6 {
            format!("{:.3} M", per_sec / 1.0e6)
        } else {
            format!("{:.1} ", per_sec)
        }
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({}elem/s)", rate(n)),
        Some(Throughput::Bytes(n)) => format!("  ({}B/s)", rate(n)),
        None => String::new(),
    };
    println!("bench {id:<44} {median:>14.1} ns/iter{extra}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
            samples: 3,
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
            samples: 3,
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3, 4],
                |v| v.iter().sum::<u8>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
