//! Offline stand-in for `serde`.
//!
//! Instead of the visitor-based `Serializer`/`Deserializer` machinery,
//! values convert to and from a small self-describing [`Content`] tree;
//! `serde_json` renders that tree as JSON text.  The derive macros (behind
//! the `derive` feature, from the sibling `serde_derive` crate) generate
//! `to_content`/`from_content` implementations for structs and enums.
//!
//! The encoding is internally consistent (serialize → deserialize is the
//! identity on every type in this workspace) but is *not* wire-compatible
//! with upstream serde — nothing outside this repository reads the bytes.

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / `None` / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, tuple structs/variants).
    Seq(Vec<Content>),
    /// String-keyed map (structs, maps, enum wrappers).
    Map(Vec<(String, Content)>),
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Content`] tree.
pub trait Serialize {
    /// Convert to content.
    fn to_content(&self) -> Content;
}

/// Deserialize from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Convert from content.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Serialization-side namespace mirror.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization-side namespace mirror.
pub mod de {
    pub use crate::Deserialize;

    /// Owned deserialization (all deserialization here is owned).
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Derive-internal: look up a struct field by name.
pub fn __field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        // Tolerate absent fields that can decode from Null (e.g. Option).
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(DeError::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if *self <= i64::MAX as u64 {
            Content::I64(*self as i64)
        } else {
            Content::U64(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::I64(v) if *v >= 0 => Ok(*v as u64),
            Content::U64(v) => Ok(*v),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            other => Err(DeError::custom(format!("expected u64, found {other:?}"))),
        }
    }
}

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected float, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, found {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            Content::Null => Ok(Vec::new()),
            other => Err(DeError::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            Content::Null => Ok(BTreeMap::new()),
            other => Err(DeError::custom(format!("expected map, found {other:?}"))),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => Ok(($($t::from_content(
                        items.get($n).ok_or_else(|| DeError::custom("tuple too short"))?
                    )?,)+)),
                    other => Err(DeError::custom(format!(
                        "expected tuple sequence, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        assert_eq!(
            BTreeMap::<String, i64>::from_content(&m.to_content()).unwrap(),
            m
        );
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_content(&o.to_content()).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_content(&Some(9u8).to_content()).unwrap(),
            Some(9)
        );
    }
}
