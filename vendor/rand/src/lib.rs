//! Offline stand-in for `rand` 0.8 covering the workspace's usage:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen`, `gen_bool` and `gen_range` over
//! integer and float ranges.
//!
//! The core generator is **xoshiro256++** seeded through SplitMix64 —
//! statistically strong for simulation purposes and fully deterministic,
//! which is all the workspace's seeded tests and dataset generators need.
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`; no
//! test in this repository depends on upstream byte streams.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy — here derived from the system clock, only
    /// suitable for non-reproducible uses.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping (negligible bias for
                // the small spans used here; spans are < 2^64).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Sample a value over the type's full domain (`bool`, floats in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four lanes.
            let mut x = seed;
            let mut lane = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [lane(), lane(), lane(), lane()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// A clock-seeded generator for non-reproducible sampling.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
            let v = rng.gen_range(5..=8u32);
            assert!((5..=8).contains(&v));
            let f = rng.gen_range(-1.5..1.5f64);
            assert!((-1.5..1.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
    }
}
