//! Offline stand-in for `serde_json`: renders the stand-in serde's
//! [`Content`] tree as JSON text and parses JSON text back into it.
//!
//! Covers the workspace surface: [`to_string`], [`to_vec`], [`from_str`],
//! [`from_slice`] and an [`Error`] type implementing `std::error::Error`.

use serde::de::DeserializeOwned;
use serde::{Content, Serialize};

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    Ok(T::from_content(&content)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{}` prints the shortest round-trippable representation.
                out.push_str(&v.to_string());
            } else {
                // JSON has no NaN/Infinity; null decodes back to NaN.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing data at byte {}", self.pos)));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_literal("null")?;
                Ok(Content::Null)
            }
            b't' => {
                self.eat_literal("true")?;
                Ok(Content::Bool(true))
            }
            b'f' => {
                self.eat_literal("false")?;
                Ok(Content::Bool(false))
            }
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` in array, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` in object, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                self.eat_literal("\\u")?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input was validated as UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Content::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Content::U64(u))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Plain {
        id: u64,
        name: String,
        ratio: f64,
        tags: Vec<String>,
        opt: Option<i32>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Pair(String, i64);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    #[serde(tag = "t", content = "v")]
    enum Shape {
        Empty,
        Dot(f64),
        Line(f64, f64),
        Rect { w: f64, h: f64 },
        Nested(Box<Shape>),
        Labels(BTreeMap<String, String>),
    }

    fn roundtrip<T: Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
        let json = to_string(v).unwrap();
        let back: T = from_str(&json).unwrap();
        assert_eq!(&back, v, "through {json}");
        let bytes = to_vec(v).unwrap();
        let back2: T = from_slice(&bytes).unwrap();
        assert_eq!(&back2, v);
    }

    #[test]
    fn named_struct_roundtrips() {
        roundtrip(&Plain {
            id: 42,
            name: "hello \"world\"\nline2 \\ tab\t".to_string(),
            ratio: -0.125,
            tags: vec!["a".into(), "b".into()],
            opt: None,
        });
        roundtrip(&Plain {
            id: u64::MAX,
            name: "ünïcødé ✓".to_string(),
            ratio: 1e300,
            tags: vec![],
            opt: Some(-7),
        });
    }

    #[test]
    fn tuple_struct_roundtrips() {
        roundtrip(&Pair("x".to_string(), -9));
    }

    #[test]
    fn enum_variants_roundtrip() {
        let mut labels = BTreeMap::new();
        labels.insert("k".to_string(), "v".to_string());
        for shape in [
            Shape::Empty,
            Shape::Dot(3.5),
            Shape::Line(1.0, 2.0),
            Shape::Rect { w: 4.0, h: 5.5 },
            Shape::Nested(Box::new(Shape::Rect { w: 0.0, h: -1.0 })),
            Shape::Labels(labels),
        ] {
            roundtrip(&shape);
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\u0041\" , \"\\u00e9\" ] ").unwrap();
        assert_eq!(v, vec!["aA".to_string(), "é".to_string()]);
        let n: i64 = from_str(" -12 ").unwrap();
        assert_eq!(n, -12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("12 x").is_err());
        assert!(from_str::<Vec<i64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
