//! The **tower of information** (paper §1, Fig. 1): "starting with the raw
//! DNA", locate genes, translate them, align the proteins, build a
//! phylogenetic tree, compute a multiple alignment and ancestral sequence,
//! and predict secondary structure — all as one BioOpera process with two
//! parallel blocks.
//!
//! ```sh
//! cargo run --release --example tower_of_information
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime};
use bioopera::darwin::{CostModel, PamFamily};
use bioopera::engine::{Runtime, RuntimeConfig};
use bioopera::ocr::Value;
use bioopera::store::MemDisk;
use bioopera::workloads::tower::{make_input_dna, tower_library, tower_template};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // Synthesize "raw DNA" carrying three protein families of three genes
    // each, separated by junk.
    let dna = make_input_dna(3, 3, 2024);
    println!("raw DNA: {} bases (genes hidden inside)", dna.len());

    let pam = Arc::new(PamFamily::default());
    let lib = tower_library(Arc::clone(&pam), CostModel::default());
    let cluster = Cluster::new(
        "lab",
        (0..4)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    );
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(5),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).unwrap();
    rt.register_template(&tower_template()).unwrap();

    let mut init = BTreeMap::new();
    init.insert("dna".to_string(), Value::from(dna));
    let id = rt.submit("TowerOfInformation", init).unwrap();
    rt.run_to_completion().unwrap();

    println!(
        "status: {:?}   virtual wall: {}",
        rt.instance_status(id).unwrap(),
        rt.now()
    );
    let wb = rt.whiteboard(id).unwrap();

    println!("\n--- storey 4: phylogenetic tree (neighbor joining, Newick) ---");
    println!("{}", wb["tree"].as_str().unwrap());

    println!("\n--- top storey: structure & function report ---");
    let report = wb["report"].as_map().unwrap();
    for (k, v) in report {
        println!("  {k:<14} {v}");
    }

    println!("\n--- per-gene secondary structure (Chou-Fasman) ---");
    let structures = rt
        .task_record(id, "StructurePrediction")
        .unwrap()
        .outputs
        .get("structures")
        .and_then(|v| v.as_list())
        .unwrap()
        .to_vec();
    for s in structures.iter().take(4) {
        let idx = s.get_path(&["index"]).unwrap();
        let pred = s
            .get_path(&["prediction"])
            .and_then(|v| v.as_str())
            .unwrap_or("");
        let short: String = pred.chars().take(60).collect();
        println!(
            "  gene {idx}: {short}{}",
            if pred.len() > 60 { "..." } else { "" }
        );
    }
    println!("\n(the whole tower ran as one dependable BioOpera process — every");
    println!(" intermediate dataset is in the instance space, ready for reuse");
    println!(" when an algorithm or input changes, as the paper's §1 demands)");
}
