//! Planning and dealing with outages (paper §3.5): ask the running system
//! "which processes will be affected if a node or set of nodes is taken
//! off-line?" — the planner reports affected jobs, re-schedulability under
//! placement constraints, and per-process progress.
//!
//! ```sh
//! cargo run --example whatif_planning
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime};
use bioopera::engine::{ActivityLibrary, Planner, ProgramOutput, Runtime, RuntimeConfig};
use bioopera::ocr::{ExternalBinding, ParallelBody, ProcessBuilder, TypeTag, Value};
use bioopera::store::MemDisk;
use std::collections::BTreeMap;

fn main() {
    // A cluster with one Solaris node; one activity is pinned to Solaris.
    let cluster = Cluster::new(
        "lab",
        vec![
            NodeSpec::new("pc1", 2, 500, "linux"),
            NodeSpec::new("pc2", 2, 500, "linux"),
            NodeSpec::new("sun1", 1, 360, "solaris"),
        ],
    );
    let template = ProcessBuilder::new("Pinned")
        .activity("Gen", "gen", |t| t.output("items", TypeTag::List))
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work")),
            "results",
            |t| t,
        )
        .activity("SunOnly", "work.sun", |t| t.on_os("solaris"))
        .connect("Gen", "Fan")
        .connect("Gen", "SunOnly")
        .flow_to_task("Gen", "items", "Fan", "items")
        .build()
        .unwrap();
    let mut lib = ActivityLibrary::new();
    lib.register("gen", |_| {
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..6))],
            1_000.0,
        ))
    });
    lib.register("work", |_| {
        Ok(ProgramOutput::from_fields(
            [("ok", Value::Bool(true))],
            3_600_000.0,
        ))
    });
    lib.register("work.sun", |_| {
        Ok(ProgramOutput::from_fields(
            [("ok", Value::Bool(true))],
            3_600_000.0,
        ))
    });

    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(5),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).unwrap();
    rt.register_template(&template).unwrap();
    let _id = rt.submit("Pinned", BTreeMap::new()).unwrap();

    // Step the simulation until the hour-long TEUs are on nodes.
    while rt.in_flight_jobs().is_empty() || rt.now() < SimTime::from_secs(30) {
        if !rt.step().unwrap() {
            break;
        }
    }
    println!("at virtual time {}, in-flight jobs:", rt.now());
    for (inst, task, node) in rt.in_flight_jobs() {
        println!("  instance {inst} task {task:<10} on {node}");
    }

    // What if we take pc1 down for maintenance?
    println!("\n=== what-if: take pc1 off-line ===");
    print!("{}", Planner::what_if_offline(&rt, &["pc1"]).report());

    // What if we take the only Solaris node down?  SunOnly cannot move.
    println!("=== what-if: take sun1 off-line ===");
    print!("{}", Planner::what_if_offline(&rt, &["sun1"]).report());

    // What if the whole cluster goes?
    println!("=== what-if: take everything off-line ===");
    print!(
        "{}",
        Planner::what_if_offline(&rt, &["pc1", "pc2", "sun1"]).report()
    );

    // Finish the run regardless.
    rt.run_to_completion().unwrap();
    println!(
        "\nrun completed at {} despite our hypotheticals (they were only queries)",
        rt.now()
    );
}
