//! The paper's flagship workload with the paper's failure classes: a
//! real-compute all-vs-all over a synthetic protein database, run once on
//! a calm cluster and once through node crashes, a network outage and a
//! BioOpera **server crash** — then proves both runs produced the
//! **identical** match set ("resume execution ... without losing already
//! completed work").
//!
//! ```sh
//! cargo run --release --example all_vs_all_recovery
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera::darwin::dataset::DatasetConfig;
use bioopera::darwin::{PamFamily, SequenceDb};
use bioopera::engine::{Runtime, RuntimeConfig};
use bioopera::store::MemDisk;
use bioopera::workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::sync::Arc;

fn cluster() -> Cluster {
    Cluster::new(
        "mini-linneus",
        (0..5)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    )
}

fn run(setup: &AllVsAllSetup, trace: &Trace, label: &str) -> (String, i64, String) {
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(10),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster(), setup.library.clone(), cfg).unwrap();
    rt.register_template(&setup.chunk_template).unwrap();
    rt.register_template(&setup.template).unwrap();
    rt.install_trace(trace);
    let id = rt.submit("AllVsAll", setup.initial()).unwrap();
    rt.run_to_completion().unwrap();
    let wb = rt.whiteboard(id).unwrap();
    let digest = wb["digest"].as_str().unwrap().to_string();
    let matches = wb["match_count"].as_int().unwrap();
    let masked = rt
        .awareness()
        .of_kind(rt.store(), "task.systemfail")
        .map(|v| v.len())
        .unwrap_or(0);
    println!("[{label}]");
    println!("  status        : {:?}", rt.instance_status(id).unwrap());
    println!("  wall (virtual): {}", rt.stats(id).unwrap().wall);
    println!("  matches found : {matches}");
    println!("  digest        : {digest}");
    println!("  failures masked: {masked}");
    for (at, msg) in rt.event_log() {
        println!("    {at}  {msg}");
    }
    (digest, matches, label.to_string())
}

fn main() {
    // A 60-entry synthetic protein database with real families, aligned
    // for real (Smith-Waterman + PAM refinement run in-process).
    println!("generating synthetic protein database and PAM family...");
    let pam = Arc::new(PamFamily::default());
    let db = Arc::new(SequenceDb::generate(&DatasetConfig::small(60, 17), &pam));
    let setup = AllVsAllSetup::real(
        Arc::clone(&db),
        Arc::clone(&pam),
        AllVsAllConfig {
            teus: 8,
            ..Default::default()
        },
    );

    // Run 1: calm cluster.
    let clean = run(&setup, &Trace::empty(), "clean run");

    // Run 2: the everyday chaos of §5 — node crash, network outage, and a
    // full BioOpera server crash while TEUs are in flight.
    let mut chaos = Trace::empty();
    chaos.push_labeled(
        SimTime::from_secs(6),
        TraceEventKind::NodeDown("n1".into()),
        "node n1 crashes (its TEUs are re-queued)",
    );
    chaos.push(SimTime::from_secs(30), TraceEventKind::NodeUp("n1".into()));
    chaos.push_labeled(
        SimTime::from_secs(8),
        TraceEventKind::NetworkDown,
        "network outage (PECs buffer results)",
    );
    chaos.push(SimTime::from_secs(12), TraceEventKind::NetworkUp);
    chaos.push_labeled(
        SimTime::from_secs(16),
        TraceEventKind::ServerCrash,
        "BioOpera server crashes (volatile state lost)",
    );
    chaos.push(SimTime::from_secs(20), TraceEventKind::ServerRecover);
    let chaotic = run(&setup, &chaos, "run with injected failures");

    println!();
    assert_eq!(clean.0, chaotic.0, "digests must match");
    assert_eq!(clean.1, chaotic.1, "match counts must match");
    println!(
        "SUCCESS: both runs produced the identical match set ({} matches, digest {})",
        clean.1, clean.0
    );
    println!("dependability held: crashes re-ran only unfinished TEUs; completed work survived.");
}
