//! OCR as a textual scripting language: parse a process definition from
//! text (the navigator's "persistent scripting language"), validate it,
//! execute it, and show the conditional branch + event handler machinery.
//!
//! ```sh
//! cargo run --example ocr_script
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime};
use bioopera::engine::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
use bioopera::ocr::{self, Value};
use bioopera::store::MemDisk;
use std::collections::BTreeMap;

const SCRIPT: &str = r#"
// A data-cleaning pipeline with a conditional branch: noisy inputs take a
// detour through a scrubbing step; clean inputs go straight to analysis.
PROCESS CleanAndAnalyze {
  WHITEBOARD {
    noise_level: FLOAT = 0.5;
    verdict: STR;
  }
  ACTIVITY Inspect {
    PROGRAM "pipeline.inspect";
    INPUT  { noise_level: FLOAT; }
    OUTPUT { noisy: BOOL; sample: LIST; }
    RETRY 1;
  }
  ACTIVITY Scrub {
    PROGRAM "pipeline.scrub";
    INPUT  { sample: LIST; }
    OUTPUT { sample: LIST; }
  }
  ACTIVITY Analyze {
    PROGRAM "pipeline.analyze";
    INPUT  { sample: LIST; }
    OUTPUT { verdict: STR; }
  }
  BLOCK Preparation { MEMBERS Inspect, Scrub; }
  CONNECTOR Inspect -> Scrub   WHEN Inspect.noisy == true;
  CONNECTOR Inspect -> Analyze WHEN Inspect.noisy == false;
  CONNECTOR Scrub -> Analyze;
  DATAFLOW WHITEBOARD.noise_level -> Inspect.noise_level;
  DATAFLOW Inspect.sample -> Scrub.sample;
  DATAFLOW Inspect.sample -> Analyze.sample;
  DATAFLOW Scrub.sample -> Analyze.sample;
  DATAFLOW Analyze.verdict -> WHITEBOARD.verdict;
  ON FAILURE OF Scrub IGNORE;
  ON EVENT "operator_pause" SUSPEND;
  ON EVENT "operator_go" RESUME;
}
"#;

fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("pipeline.inspect", |inputs| {
        let noise = inputs
            .get("noise_level")
            .and_then(|v| v.as_float())
            .unwrap_or(0.0);
        Ok(ProgramOutput::from_fields(
            [
                ("noisy", Value::Bool(noise > 0.3)),
                ("sample", Value::int_list([4, 8, 15, 16, 23, 42])),
            ],
            1_000.0,
        ))
    });
    lib.register("pipeline.scrub", |inputs| {
        let sample = inputs["sample"].as_list().ok_or("no sample")?;
        let cleaned: Vec<Value> = sample
            .iter()
            .filter(|v| v.as_int().map(|i| i % 2 == 0).unwrap_or(false))
            .cloned()
            .collect();
        Ok(ProgramOutput::from_fields(
            [("sample", Value::List(cleaned))],
            5_000.0,
        ))
    });
    lib.register("pipeline.analyze", |inputs| {
        let n = inputs["sample"].as_list().map(|l| l.len()).unwrap_or(0);
        Ok(ProgramOutput::from_fields(
            [("verdict", Value::from(format!("{n} usable data points")))],
            2_000.0,
        ))
    });
    lib
}

fn run(noise: f64) -> (String, Vec<(String, String)>) {
    let template = ocr::parse_process(SCRIPT).expect("OCR parses");
    ocr::validate(&template).expect("OCR validates");
    let cluster = Cluster::new("lab", vec![NodeSpec::new("n1", 2, 500, "linux")]);
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, library(), cfg).unwrap();
    rt.register_template(&template).unwrap();
    let mut init = BTreeMap::new();
    init.insert("noise_level".to_string(), Value::Float(noise));
    let id = rt.submit("CleanAndAnalyze", init).unwrap();
    rt.run_to_completion().unwrap();
    let verdict = rt.whiteboard(id).unwrap()["verdict"].to_string();
    let states = rt
        .task_records(id)
        .unwrap()
        .iter()
        .map(|(p, r)| (p.clone(), format!("{:?}", r.state)))
        .collect();
    (verdict, states)
}

fn main() {
    println!("--- parsed from OCR text, printed back ---");
    let template = ocr::parse_process(SCRIPT).unwrap();
    println!("{}", ocr::to_ocr_text(&template));

    for noise in [0.8, 0.1] {
        let (verdict, states) = run(noise);
        println!("noise_level = {noise}:");
        for (path, state) in &states {
            println!("  {path:<10} {state}");
        }
        println!("  verdict: {verdict}\n");
    }
    println!("high noise routed through Scrub (6 -> even-only); low noise skipped it.");
}
