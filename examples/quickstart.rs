//! Quickstart: define a small process with the builder API, run it on a
//! simulated 3-node cluster, inspect results and the persistent history.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime};
use bioopera::engine::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
use bioopera::ocr::{self, ProcessBuilder, TypeTag, Value};
use bioopera::store::MemDisk;
use std::collections::BTreeMap;

fn main() {
    // 1. A process template: fetch a dataset, analyze each shard in
    //    parallel, summarize.
    let template = ProcessBuilder::new("Quickstart")
        .whiteboard_default("shards", TypeTag::Int, Value::Int(6))
        .whiteboard_field("summary", TypeTag::Map)
        .activity("Fetch", "demo.fetch", |t| {
            t.input("shards", TypeTag::Int)
                .output("parts", TypeTag::List)
        })
        .parallel(
            "Analyze",
            "parts",
            ocr::ParallelBody::Activity(ocr::ExternalBinding::program("demo.analyze")),
            "results",
            |t| t.retries(2),
        )
        .activity("Summarize", "demo.summarize", |t| {
            t.input("results", TypeTag::List)
                .output("summary", TypeTag::Map)
        })
        .connect("Fetch", "Analyze")
        .connect("Analyze", "Summarize")
        .flow_from_whiteboard("shards", "Fetch", "shards")
        .flow_to_task("Fetch", "parts", "Analyze", "parts")
        .flow_to_task("Analyze", "results", "Summarize", "results")
        .flow_to_whiteboard("Summarize", "summary", "summary")
        .build()
        .expect("template validates");

    // The template is also expressible as OCR text:
    println!("--- OCR text of the template ---");
    println!("{}", ocr::to_ocr_text(&template));

    // 2. Programs behind the activities.  Each returns outputs plus the
    //    amount of (virtual) CPU the job represents.
    let mut lib = ActivityLibrary::new();
    lib.register("demo.fetch", |inputs| {
        let n = inputs.get("shards").and_then(|v| v.as_int()).unwrap_or(4);
        Ok(ProgramOutput::from_fields(
            [("parts", Value::int_list(0..n))],
            2_000.0, // 2 s of reference CPU
        ))
    });
    lib.register("demo.analyze", |inputs| {
        let shard = inputs["item"].as_int().ok_or("no shard")?;
        Ok(ProgramOutput::from_fields(
            [("score", Value::Float((shard as f64 + 1.0).sqrt()))],
            60_000.0, // 1 minute per shard
        ))
    });
    lib.register("demo.summarize", |inputs| {
        let results = inputs["results"].as_list().ok_or("no results")?;
        let total: f64 = results
            .iter()
            .filter_map(|r| r.get_path(&["score"]).and_then(|v| v.as_float()))
            .sum();
        Ok(ProgramOutput::from_fields(
            [(
                "summary",
                Value::map_from([
                    ("shards", Value::Int(results.len() as i64)),
                    ("total_score", Value::Float(total)),
                ]),
            )],
            1_000.0,
        ))
    });

    // 3. A cluster and the runtime.
    let cluster = Cluster::new(
        "lab",
        vec![
            NodeSpec::new("node-a", 2, 500, "linux"),
            NodeSpec::new("node-b", 2, 500, "linux"),
            NodeSpec::new("node-c", 1, 1000, "solaris"),
        ],
    );
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).expect("runtime");
    rt.register_template(&template).expect("register");

    // 4. Run.
    let id = rt.submit("Quickstart", BTreeMap::new()).expect("submit");
    rt.run_to_completion().expect("run");

    println!("--- results ---");
    println!("status        : {:?}", rt.instance_status(id).unwrap());
    println!("virtual wall  : {}", rt.now());
    println!("summary       : {}", rt.whiteboard(id).unwrap()["summary"]);
    let stats = rt.stats(id).expect("stats");
    println!("activities    : {}", stats.activities);
    println!("CPU(P)        : {}", stats.cpu);

    println!("--- per-task placement (from the instance space) ---");
    for (path, rec) in rt.task_records(id).unwrap() {
        if let Some(node) = &rec.node {
            println!("  {path:<12} -> {node} ({:?})", rec.state);
        }
    }

    println!("--- persistent history (awareness model) ---");
    for (kind, n) in rt.awareness().counts_by_kind(rt.store()).unwrap() {
        println!("  {kind:<22} {n}");
    }
}
