//! Awareness queries: the §3.4 monitoring surface on a live run.
//!
//! Runs a fan-out process on a small cluster with a mid-run node crash,
//! then answers the operator's questions from the awareness model: event
//! counts by kind, typed per-task timings, latency histograms, gauges,
//! and the consolidated JSON run report.
//!
//! ```sh
//! cargo run --example awareness_queries
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera::engine::{ActivityLibrary, EventKind, ProgramOutput, Runtime, RuntimeConfig};
use bioopera::ocr::{self, ProcessBuilder, TypeTag, Value};
use bioopera::store::MemDisk;
use std::collections::BTreeMap;

fn main() {
    // A fetch → parallel-analyze → summarize pipeline, as in quickstart.
    let template = ProcessBuilder::new("Survey")
        .whiteboard_default("shards", TypeTag::Int, Value::Int(12))
        .whiteboard_field("summary", TypeTag::Map)
        .activity("Fetch", "demo.fetch", |t| {
            t.input("shards", TypeTag::Int)
                .output("parts", TypeTag::List)
        })
        .parallel(
            "Analyze",
            "parts",
            ocr::ParallelBody::Activity(ocr::ExternalBinding::program("demo.analyze")),
            "results",
            |t| t.retries(2),
        )
        .activity("Summarize", "demo.summarize", |t| {
            t.input("results", TypeTag::List)
                .output("summary", TypeTag::Map)
        })
        .connect("Fetch", "Analyze")
        .connect("Analyze", "Summarize")
        .flow_from_whiteboard("shards", "Fetch", "shards")
        .flow_to_task("Fetch", "parts", "Analyze", "parts")
        .flow_to_task("Analyze", "results", "Summarize", "results")
        .flow_to_whiteboard("Summarize", "summary", "summary")
        .build()
        .expect("template validates");

    let mut lib = ActivityLibrary::new();
    lib.register("demo.fetch", |inputs| {
        let n = inputs.get("shards").and_then(|v| v.as_int()).unwrap_or(4);
        Ok(ProgramOutput::from_fields(
            [("parts", Value::int_list(0..n))],
            2_000.0,
        ))
    });
    lib.register("demo.analyze", |inputs| {
        let shard = inputs["item"].as_int().ok_or("no shard")?;
        Ok(ProgramOutput::from_fields(
            [("score", Value::Float((shard as f64 + 1.0).sqrt()))],
            300_000.0, // 5 minutes per shard
        ))
    });
    lib.register("demo.summarize", |inputs| {
        let results = inputs["results"].as_list().ok_or("no results")?;
        let total: f64 = results
            .iter()
            .filter_map(|r| r.get_path(&["score"]).and_then(|v| v.as_float()))
            .sum();
        Ok(ProgramOutput::from_fields(
            [(
                "summary",
                Value::map_from([("total_score", Value::Float(total))]),
            )],
            1_000.0,
        ))
    });

    let cluster = Cluster::new(
        "lab",
        vec![
            NodeSpec::new("node-a", 2, 500, "linux"),
            NodeSpec::new("node-b", 2, 500, "linux"),
            NodeSpec::new("node-c", 1, 1000, "solaris"),
        ],
    );
    // node-b dies mid-run and comes back later: the engine masks the
    // failure, and the awareness model remembers every step of it.
    let mut trace = Trace::empty();
    trace
        .push(
            SimTime::from_mins(6),
            TraceEventKind::NodeDown("node-b".into()),
        )
        .push(
            SimTime::from_mins(30),
            TraceEventKind::NodeUp("node-b".into()),
        );

    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).expect("runtime");
    rt.register_template(&template).expect("register");
    rt.install_trace(&trace);
    let id = rt.submit("Survey", BTreeMap::new()).expect("submit");
    rt.run_to_completion().expect("run");
    println!(
        "run done: {:?} at {}",
        rt.instance_status(id).unwrap(),
        rt.now()
    );

    // 1. The summary query: how many of what happened?
    println!("\n--- event counts by kind (indexed, no store scan) ---");
    for (kind, n) in rt.awareness().index().counts_by_kind() {
        println!("  {kind:<22} {n}");
    }

    // 2. Typed queries: which tasks did the crash take down, and where
    //    did each analysis shard actually run?
    println!("\n--- system failures (typed) ---");
    for ev in rt
        .awareness()
        .of_kind(rt.store(), "task.systemfail")
        .unwrap()
    {
        if let EventKind::TaskSystemFail { path, reason, .. } = &ev.kind {
            println!("  day {:>6.3}  {path:<12} {reason}", ev.at.as_days_f64());
        }
    }
    println!("\n--- task ends on node-a ---");
    for ev in rt.awareness().index().for_node("node-a") {
        if let EventKind::TaskEnd { path, run_ms, .. } = &ev.kind {
            println!("  {path:<12} ran {:>6.1} min", *run_ms as f64 / 60_000.0);
        }
    }

    // 3. Latency distributions and gauges.
    let idx = rt.awareness().index();
    println!("\n--- latency and load ---");
    println!(
        "  task run    mean {:>7.1}s  p50 <= {:>5}s  max {:>5}s ({} tasks)",
        idx.run_ms().mean_ms() / 1_000.0,
        idx.run_ms().quantile_ms(0.5) / 1_000,
        idx.run_ms().max_ms() / 1_000,
        idx.run_ms().count()
    );
    println!(
        "  queue wait  mean {:>7.1}s  p90 <= {:>5}s",
        idx.queue_ms().mean_ms() / 1_000.0,
        idx.queue_ms().quantile_ms(0.9) / 1_000
    );
    println!(
        "  peak in-flight {}   total CPU {:.0}s   nodes down now: {:?}",
        idx.peak_in_flight(),
        idx.total_cpu_ms() / 1_000.0,
        idx.nodes_down()
    );

    // 4. Everything at once, machine-readable.
    let report = rt.run_report(SimTime::from_mins(10));
    println!("\n--- run report (JSON, first 200 chars) ---");
    let json = serde_json::to_string(&report).expect("serialize");
    println!("  {}...", &json[..json.len().min(200)]);
}
