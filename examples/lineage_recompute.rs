//! Lineage tracking and selective recomputation (§6): "lineage tracking is
//! done automatically and all dependencies are persistently recorded.
//! This makes it possible for the system to recompute processes as data
//! inputs or algorithms change."
//!
//! A tower-of-information run is completed once; we then pretend the
//! alignment algorithm improved and ask BioOpera what must be recomputed —
//! and run exactly that, reusing the recorded gene-finding and translation
//! outputs.
//!
//! ```sh
//! cargo run --release --example lineage_recompute
//! ```

use bioopera::cluster::{Cluster, NodeSpec, SimTime};
use bioopera::darwin::{CostModel, PamFamily};
use bioopera::engine::{Lineage, Runtime, RuntimeConfig};
use bioopera::ocr::Value;
use bioopera::store::MemDisk;
use bioopera::workloads::tower::{make_input_dna, tower_library, tower_template};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let template = tower_template();

    // 1. The lineage graph is derivable from the persistent template alone.
    let lineage = Lineage::derive(&template);
    println!("--- lineage queries (from the template's recorded dependencies) ---");
    for task in [
        "GeneFinding",
        "Translation",
        "PairwiseAlignments",
        "MultipleAlignment",
    ] {
        let closure = lineage.invalidation_closure([task]);
        println!(
            "if `{task}` changes, recompute: {}",
            closure.iter().cloned().collect::<Vec<_>>().join(", ")
        );
    }
    println!(
        "provenance of `PhylogeneticTree`: {}",
        lineage
            .provenance_closure("PhylogeneticTree")
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 2. Run the tower once.
    let pam = Arc::new(PamFamily::default());
    let lib = tower_library(Arc::clone(&pam), CostModel::default());
    let cluster = Cluster::new(
        "lab",
        (0..4)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    );
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(5),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).unwrap();
    rt.register_template(&template).unwrap();
    let mut init = BTreeMap::new();
    init.insert("dna".to_string(), Value::from(make_input_dna(2, 3, 7)));
    let id1 = rt.submit("TowerOfInformation", init).unwrap();
    rt.run_to_completion().unwrap();
    let ends_before = rt
        .awareness()
        .of_kind(rt.store(), "task.end")
        .unwrap()
        .len();
    println!(
        "\n--- first run complete: {} task executions ---",
        ends_before
    );

    // 3. "The alignment algorithm changed": selectively recompute.
    let id2 = rt.recompute(id1, &["PairwiseAlignments"]).unwrap();
    rt.run_to_completion().unwrap();
    let ends_after = rt
        .awareness()
        .of_kind(rt.store(), "task.end")
        .unwrap()
        .len();
    println!("--- recompute complete: instance {id2} ---");
    println!(
        "additional task executions: {} (first run: {})",
        ends_after - ends_before,
        ends_before
    );
    println!("gene finding / translation / MSA / structure storeys were REUSED;");
    println!("only the alignments and the tree re-ran.");
    let t1 = rt.whiteboard(id1).unwrap()["tree"].clone();
    let t2 = rt.whiteboard(id2).unwrap()["tree"].clone();
    println!("\ntree (run 1) == tree (run 2): {}", t1 == t2);
    for (at, msg) in rt.event_log() {
        if msg.contains("recomputation") {
            println!("event log: {at}  {msg}");
        }
    }
}
