//! # BioOpera
//!
//! A reproduction of **"Dependable Computing in Virtual Laboratories"**
//! (Alonso, Bausch, Pautasso, Hallett, Kahn — ETH Zürich, ICDE 2001):
//! a process-support system that dependably runs month-long scientific
//! computations on a cluster, with persistent execution state, automatic
//! failure masking and recovery, pluggable scheduling, monitoring, and
//! what-if planning.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`ocr`] — the Opera Canonical Representation: process model, textual
//!   parser/printer, guard expressions, validation;
//! * [`store`] — the embedded WAL + snapshot storage engine behind the
//!   persistent template/instance/configuration/history spaces;
//! * [`cluster`] — the deterministic discrete-event cluster simulator
//!   (nodes, failures, network outages, external users, adaptive load
//!   monitoring);
//! * [`engine`] — the BioOpera server: navigator, dispatcher, recovery
//!   manager, awareness model, planner, runtime;
//! * [`darwin`] — the bioinformatics substrate (PAM matrices,
//!   Smith–Waterman/Gotoh, synthetic SwissProt-like datasets);
//! * [`workloads`] — the paper's workloads: the all-vs-all process, the
//!   tower of information, and the manual-script baseline.
//!
//! ## Quickstart
//!
//! ```
//! use bioopera::engine::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
//! use bioopera::cluster::{Cluster, NodeSpec};
//! use bioopera::ocr::{ProcessBuilder, TypeTag, Value};
//! use bioopera::store::MemDisk;
//! use std::collections::BTreeMap;
//!
//! // A process: generate a number, double it.
//! let template = ProcessBuilder::new("Demo")
//!     .whiteboard_field("result", TypeTag::Int)
//!     .activity("Gen", "demo.gen", |t| t.output("x", TypeTag::Int))
//!     .activity("Double", "demo.double", |t| {
//!         t.input("x", TypeTag::Int).output("y", TypeTag::Int)
//!     })
//!     .connect("Gen", "Double")
//!     .flow_to_task("Gen", "x", "Double", "x")
//!     .flow_to_whiteboard("Double", "y", "result")
//!     .build()
//!     .unwrap();
//!
//! let mut lib = ActivityLibrary::new();
//! lib.register("demo.gen", |_| Ok(ProgramOutput::from_fields([("x", Value::Int(21))], 1000.0)));
//! lib.register("demo.double", |inputs| {
//!     let x = inputs["x"].as_int().unwrap();
//!     Ok(ProgramOutput::from_fields([("y", Value::Int(2 * x))], 1000.0))
//! });
//!
//! let cluster = Cluster::new("lab", vec![NodeSpec::new("n1", 2, 500, "linux")]);
//! let mut rt = Runtime::new(MemDisk::new(), cluster, lib, RuntimeConfig::default()).unwrap();
//! rt.register_template(&template).unwrap();
//! let id = rt.submit("Demo", BTreeMap::new()).unwrap();
//! rt.run_to_completion().unwrap();
//! assert_eq!(rt.whiteboard(id).unwrap()["result"], Value::Int(42));
//! ```

pub use bioopera_cluster as cluster;
pub use bioopera_core as engine;
pub use bioopera_darwin as darwin;
pub use bioopera_ocr as ocr;
pub use bioopera_store as store;
pub use bioopera_workloads as workloads;
