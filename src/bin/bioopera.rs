//! `bioopera` — command-line front end to the engine.
//!
//! ```text
//! bioopera validate <file.ocr>        parse + statically validate
//! bioopera fmt <file.ocr>             parse + pretty-print canonical OCR
//! bioopera run <file.ocr> [options]   execute a process file
//!     --entry NAME       process to start (default: last in the file)
//!     --set key=value    initial whiteboard data (repeatable; int/float/
//!                        bool/string auto-detected)
//!     --cluster NAME     small | linneus | ik-sun | ik-linux (default small)
//!     --trace NAME       none | shared | nonshared (default none)
//! bioopera demo allvsall|tower        run a built-in workload
//! ```
//!
//! `run` executes activities with a generic built-in library: a program
//! named `sleep:<ms>` consumes `<ms>` reference-CPU milliseconds and echoes
//! its inputs as outputs (plus `done = true`); any other name costs 1 s and
//! just echoes.  This is enough to experiment with process *structure* —
//! branches, parallel tasks, failure handlers — straight from OCR text.

use bioopera::cluster::{Cluster, NodeSpec, SimTime, Trace};
use bioopera::engine::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
use bioopera::ocr::{self, Value};
use bioopera::store::MemDisk;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]),
        Some("fmt") => cmd_fmt(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        _ => {
            eprintln!(
                "usage: bioopera validate|fmt|run|demo ... (see --help in the source header)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_library_file(path: &str) -> Result<Vec<ocr::ProcessTemplate>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let templates = ocr::parser::parse_library(&text).map_err(|e| e.to_string())?;
    if templates.is_empty() {
        return Err(format!("{path} contains no PROCESS definitions"));
    }
    Ok(templates)
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("validate needs a file")?;
    let templates = load_library_file(path)?;
    for t in &templates {
        ocr::validate(t).map_err(|e| format!("{}: {e}", t.name))?;
        println!(
            "{}: OK ({} tasks, {} connectors, {} dataflows, {} handlers)",
            t.name,
            t.tasks.len(),
            t.connectors.len(),
            t.dataflows.len(),
            t.on_failure.len() + t.on_event.len()
        );
    }
    Ok(())
}

fn cmd_fmt(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("fmt needs a file")?;
    for t in load_library_file(path)? {
        print!("{}", ocr::to_ocr_text(&t));
        println!();
    }
    Ok(())
}

fn echo_program(
    cost_ms: f64,
) -> impl Fn(&BTreeMap<String, Value>) -> Result<ProgramOutput, String> + Send + Sync {
    move |inputs: &BTreeMap<String, Value>| {
        let mut outputs = inputs.clone();
        outputs.insert("done".to_string(), Value::Bool(true));
        Ok(ProgramOutput {
            outputs,
            cost_ref_ms: cost_ms,
        })
    }
}

fn program_names(t: &ocr::ProcessTemplate) -> Vec<String> {
    use ocr::model::{ParallelBody, TaskKind};
    let mut names = Vec::new();
    for task in &t.tasks {
        match &task.kind {
            TaskKind::Activity { binding } => names.push(binding.program.clone()),
            TaskKind::Parallel {
                body: ParallelBody::Activity(b),
                ..
            } => names.push(b.program.clone()),
            _ => {}
        }
    }
    for s in &t.spheres {
        for (_, prog) in &s.compensations {
            names.push(prog.clone());
        }
    }
    names
}

fn parse_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        "null" => Value::Null,
        other => Value::from(other),
    }
}

fn make_cluster(name: &str) -> Result<Cluster, String> {
    Ok(match name {
        "small" => Cluster::new(
            "small",
            (0..4)
                .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
                .collect(),
        ),
        "linneus" => Cluster::linneus(),
        "ik-sun" => Cluster::ik_sun(),
        "ik-linux" => Cluster::ik_linux(),
        other => return Err(format!("unknown cluster `{other}`")),
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run needs a file")?;
    let mut entry: Option<String> = None;
    let mut initial: BTreeMap<String, Value> = BTreeMap::new();
    let mut cluster_name = "small".to_string();
    let mut trace_name = "none".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--entry" => {
                entry = Some(args.get(i + 1).ok_or("--entry needs a name")?.clone());
                i += 2;
            }
            "--set" => {
                let kv = args.get(i + 1).ok_or("--set needs key=value")?;
                let (k, v) = kv.split_once('=').ok_or("--set needs key=value")?;
                initial.insert(k.to_string(), parse_value(v));
                i += 2;
            }
            "--cluster" => {
                cluster_name = args.get(i + 1).ok_or("--cluster needs a name")?.clone();
                i += 2;
            }
            "--trace" => {
                trace_name = args.get(i + 1).ok_or("--trace needs a name")?.clone();
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let templates = load_library_file(path)?;
    let entry_name = entry.unwrap_or_else(|| templates.last().expect("non-empty").name.clone());

    // Register every program name the file references as a sleep/echo
    // body (the runtime errors on unknown programs, so we pre-register).
    let mut lib = ActivityLibrary::new();
    for t in &templates {
        for name in program_names(t) {
            let cost = name
                .strip_prefix("sleep:")
                .and_then(|ms| ms.parse::<f64>().ok())
                .unwrap_or(1_000.0);
            lib.register(name, echo_program(cost));
        }
    }

    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(10),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), make_cluster(&cluster_name)?, lib, cfg)
        .map_err(|e| e.to_string())?;
    for t in &templates {
        rt.register_template(t)
            .map_err(|e| format!("{}: {e}", t.name))?;
    }
    match trace_name.as_str() {
        "none" => {}
        "shared" => rt.install_trace(&Trace::shared_run()),
        "nonshared" => rt.install_trace(&Trace::nonshared_run()),
        other => return Err(format!("unknown trace `{other}`")),
    }
    let id = rt.submit(&entry_name, initial).map_err(|e| e.to_string())?;
    rt.run_to_completion().map_err(|e| e.to_string())?;

    println!(
        "instance {id} ({entry_name}): {:?}",
        rt.instance_status(id).unwrap()
    );
    println!("virtual wall time: {}", rt.now());
    let stats = rt.stats(id).map_err(|e| e.to_string())?;
    println!("CPU(P) = {}   activities = {}", stats.cpu, stats.activities);
    println!("--- whiteboard ---");
    for (k, v) in rt.whiteboard(id).unwrap() {
        println!("  {k} = {v}");
    }
    println!("--- task states ---");
    for (p, r) in rt.task_records(id).unwrap() {
        println!(
            "  {p:<24} {:?}{}",
            r.state,
            r.node
                .as_deref()
                .map(|n| format!(" on {n}"))
                .unwrap_or_default()
        );
    }
    if !rt.event_log().is_empty() {
        println!("--- events ---");
        for (at, msg) in rt.event_log() {
            println!("  {at}  {msg}");
        }
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("allvsall") => {
            use bioopera::workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
            let setup = AllVsAllSetup::synthetic(
                5_000,
                370,
                38,
                AllVsAllConfig {
                    teus: 25,
                    ..Default::default()
                },
            );
            let cfg = RuntimeConfig {
                heartbeat: SimTime::from_hours(1),
                ..Default::default()
            };
            let mut rt = Runtime::new(
                MemDisk::new(),
                make_cluster("small")?,
                setup.library.clone(),
                cfg,
            )
            .map_err(|e| e.to_string())?;
            rt.register_template(&setup.chunk_template)
                .map_err(|e| e.to_string())?;
            rt.register_template(&setup.template)
                .map_err(|e| e.to_string())?;
            let id = rt
                .submit("AllVsAll", setup.initial())
                .map_err(|e| e.to_string())?;
            rt.run_to_completion().map_err(|e| e.to_string())?;
            let stats = rt.stats(id).map_err(|e| e.to_string())?;
            println!(
                "all-vs-all over 5 000 entries: {:?} in {} wall, {} CPU, {} matches",
                rt.instance_status(id).unwrap(),
                stats.wall,
                stats.cpu,
                rt.whiteboard(id).unwrap()["match_count"]
            );
            Ok(())
        }
        Some("tower") => {
            use bioopera::darwin::{CostModel, PamFamily};
            use bioopera::workloads::tower::{make_input_dna, tower_library, tower_template};
            use std::sync::Arc;
            let pam = Arc::new(PamFamily::default());
            let lib = tower_library(Arc::clone(&pam), CostModel::default());
            let cfg = RuntimeConfig {
                heartbeat: SimTime::from_mins(10),
                ..Default::default()
            };
            let mut rt = Runtime::new(MemDisk::new(), make_cluster("small")?, lib, cfg)
                .map_err(|e| e.to_string())?;
            rt.register_template(&tower_template())
                .map_err(|e| e.to_string())?;
            let mut init = BTreeMap::new();
            init.insert("dna".to_string(), Value::from(make_input_dna(2, 3, 1)));
            let id = rt
                .submit("TowerOfInformation", init)
                .map_err(|e| e.to_string())?;
            rt.run_to_completion().map_err(|e| e.to_string())?;
            println!(
                "tower: {:?} in {}",
                rt.instance_status(id).unwrap(),
                rt.now()
            );
            println!("tree: {}", rt.whiteboard(id).unwrap()["tree"]);
            Ok(())
        }
        _ => Err("demo needs `allvsall` or `tower`".to_string()),
    }
}
